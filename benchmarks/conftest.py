"""Shared fixtures for the benchmark suite.

Each benchmark module regenerates one table or figure of the paper at
reproduction scale (n in the tens of thousands instead of billions; see
DESIGN.md for the substitution argument).  Results are printed as
aligned tables and, when ``REPRO_WRITE_RESULTS=1`` is set, persisted
under ``results/`` so a full ``pytest benchmarks/ --benchmark-only``
run leaves a complete record.  Without the variable the committed
``results/*.txt`` files are left untouched (no diff churn from plain
test runs).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.core.topk_oracle import TopKOracle
from repro.datasets.registry import DATASETS
from repro.suffix.suffix_array import SuffixArray

#: Scaled dataset lengths for benchmarking (kept below the library's
#: example scale so the full figure sweeps stay in CI-sized time).
BENCH_N = {"ADV": 8_000, "IOT": 8_000, "XML": 8_000, "HUM": 10_000, "ECOLI": 10_000}

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def save_report(name: str, text: str) -> None:
    """Print a result table; persist it only when explicitly asked.

    Writing is gated on ``REPRO_WRITE_RESULTS=1`` so ordinary test and
    benchmark runs do not perpetually rewrite the committed
    ``results/*.txt`` timing files.
    """
    if os.environ.get("REPRO_WRITE_RESULTS") == "1":
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


class DatasetBundle:
    """A generated dataset plus its shared index and oracle."""

    def __init__(self, name: str, n: int, seed: int = 0) -> None:
        self.name = name
        self.spec = DATASETS[name]
        self.ws = self.spec.make(n, seed=seed)
        self.index = SuffixArray(self.ws.codes)
        self.oracle = TopKOracle(self.index)
        self.default_k = self.spec.default_k(n)

    @property
    def n(self) -> int:
        return self.ws.length


@pytest.fixture(scope="session")
def bundles() -> dict[str, DatasetBundle]:
    """All five benchmark datasets with shared indexes (built once)."""
    return {name: DatasetBundle(name, n) for name, n in BENCH_N.items()}


@pytest.fixture(scope="session")
def xml_bundle(bundles) -> DatasetBundle:
    return bundles["XML"]


@pytest.fixture(scope="session")
def hum_bundle(bundles) -> DatasetBundle:
    return bundles["HUM"]
