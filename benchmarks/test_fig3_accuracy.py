"""Fig. 3: top-K estimation accuracy of AT vs TT vs SH.

Regenerates: (a-e) Accuracy vs K per dataset, (f-i) Accuracy vs n,
(j) Accuracy vs s, plus the Section-VII adversarial counterexample.
Expected shape: AT highly accurate everywhere; TT and SH far behind,
catastrophically so on IOT-like data with long frequent substrings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.approximate import ApproximateTopK
from repro.datasets.registry import DATASETS
from repro.eval.plotting import ascii_chart
from repro.eval.metrics import evaluate_miner
from repro.eval.reporting import format_table
from repro.streaming.substring_hk import SubstringHK
from repro.streaming.topk_trie import TopKTrie
from repro.suffix.suffix_array import SuffixArray

from benchmarks.conftest import save_report


def _score(miner_results, index, k):
    return evaluate_miner(miner_results, index, k).accuracy_percent


def _run_all(ws, index, k, s, seed=0):
    at = _score(ApproximateTopK(ws, k=k, s=s, seed=seed).mine(), index, k)
    tt = _score(TopKTrie(ws, k=k).mine(), index, k)
    sh = _score(SubstringHK(ws, k=k, seed=seed).mine(), index, k)
    return at, tt, sh


def _run_all_re(ws, index, k, s, seed=0):
    """Relative error per miner (the measure the paper records as
    'analogous to Accuracy' and omits from its plots)."""
    at = evaluate_miner(ApproximateTopK(ws, k=k, s=s, seed=seed).mine(), index, k)
    tt = evaluate_miner(TopKTrie(ws, k=k).mine(), index, k)
    sh = evaluate_miner(SubstringHK(ws, k=k, seed=seed).mine(), index, k)
    return at.relative_error, tt.relative_error, sh.relative_error


def test_fig3_accuracy_vs_k(bundles, benchmark):
    """Figs 3a-3e: accuracy for K sweeping around the default."""

    def sweep():
        rows = []
        for name, bundle in bundles.items():
            base_k = max(20, bundle.default_k)
            for factor in (0.5, 1.0, 2.0, 4.0):
                k = max(5, int(base_k * factor))
                at, tt, sh = _run_all(bundle.ws, bundle.index, k, bundle.spec.default_s)
                rows.append((name, k, round(at, 1), round(tt, 1), round(sh, 1)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    iot_rows_chart = [r for r in rows if r[0] == "IOT"]
    chart = ascii_chart(
        {
            "AT": [(r[1], r[2]) for r in iot_rows_chart],
            "TT": [(r[1], r[3]) for r in iot_rows_chart],
            "SH": [(r[1], r[4]) for r in iot_rows_chart],
        },
        title="IOT accuracy vs K", x_label="K", y_label="acc%",
    )
    save_report(
        "fig3_accuracy_vs_k",
        format_table(["dataset", "K", "AT %", "TT %", "SH %"], rows,
                     title="Fig 3a-e (analogue): Accuracy vs K")
        + "\n\n" + chart,
    )
    at_scores = [r[2] for r in rows]
    tt_scores = [r[3] for r in rows]
    sh_scores = [r[4] for r in rows]
    # The paper's shape: AT accurate (94.9% avg there), TT/SH far worse.
    assert np.mean(at_scores) >= 70.0
    assert np.mean(at_scores) > np.mean(tt_scores) + 20
    assert np.mean(at_scores) > np.mean(sh_scores) + 20
    # On the long-repeat dataset the competitors collapse.
    iot_rows = [r for r in rows if r[0] == "IOT"]
    assert np.mean([r[3] for r in iot_rows]) < 40
    assert np.mean([r[4] for r in iot_rows]) < 40


def test_relative_error_analogous(bundles, benchmark):
    """The omitted RE measure: AT's relative error is the smallest."""

    def sweep():
        rows = []
        for name, bundle in bundles.items():
            k = max(20, bundle.default_k)
            at, tt, sh = _run_all_re(
                bundle.ws, bundle.index, k, bundle.spec.default_s
            )
            rows.append((name, round(at, 4), round(tt, 4), round(sh, 4)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_report(
        "fig3_relative_error",
        format_table(["dataset", "AT RE", "TT RE", "SH RE"], rows,
                     title="Relative Error at default K (paper: analogous to Accuracy)"),
    )
    for name, at, tt, sh in rows:
        # RE only judges the reported *set* (by true frequency mass), so
        # SH — whose sets are fine but counts are wrong — can tie AT
        # here; allow sub-percent ties.
        assert at <= tt + 0.005, name
        assert at <= sh + 0.005, name
        assert at <= 0.05, name  # AT's reported sets are near-exact


def test_fig3_accuracy_vs_n(bundles, benchmark):
    """Figs 3f-3i: accuracy as the text grows (fixed s, K = ratio * n)."""

    def sweep():
        rows = []
        for name in ("IOT", "XML", "HUM", "ECOLI"):
            spec = DATASETS[name]
            for n in (2_500, 5_000, 10_000):
                ws = spec.make(n, seed=0)
                index = SuffixArray(ws.codes)
                k = max(10, spec.default_k(n))
                at, tt, sh = _run_all(ws, index, k, spec.default_s)
                rows.append((name, n, k, round(at, 1), round(tt, 1), round(sh, 1)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_report(
        "fig3_accuracy_vs_n",
        format_table(["dataset", "n", "K", "AT %", "TT %", "SH %"], rows,
                     title="Fig 3f-i (analogue): Accuracy vs n"),
    )
    assert np.mean([r[3] for r in rows]) >= 70.0
    assert np.mean([r[3] for r in rows]) > np.mean([r[4] for r in rows])
    assert np.mean([r[3] for r in rows]) > np.mean([r[5] for r in rows])


def test_fig3_accuracy_vs_s(bundles, benchmark):
    """Fig 3j: AT accuracy vs the number of sampling rounds (IOT)."""
    bundle = bundles["IOT"]
    k = max(20, bundle.default_k)

    def sweep():
        rows = []
        for s in (2, 5, 10, 20, 40):
            accuracy = _score(
                ApproximateTopK(bundle.ws, k=k, s=s).mine(), bundle.index, k
            )
            rows.append((s, round(accuracy, 1)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_report(
        "fig3_accuracy_vs_s",
        format_table(["s", "AT accuracy %"], rows,
                     title="Fig 3j (analogue): AT accuracy vs s on IOT"),
    )
    # Smaller s -> more accurate (weak monotonicity: first vs last).
    assert rows[0][1] >= rows[-1][1] - 5
    assert rows[0][1] >= 70.0


def test_adversarial_ab_failure(benchmark):
    """Section VII: (AB)^(n/2) defeats the item-mining adaptations."""
    text = "AB" * 400
    k = 16
    index = SuffixArray(np.asarray([0 if c == "A" else 1 for c in text]))

    def run():
        at = _score(ApproximateTopK(text, k=k, s=4).mine(), index, k)
        tt = _score(TopKTrie(text, k=k).mine(), index, k)
        sh = _score(SubstringHK(text, k=k, seed=0).mine(), index, k)
        return at, tt, sh

    at, tt, sh = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "fig3_adversarial_ab",
        format_table(
            ["method", "accuracy %"],
            [("AT", round(at, 1)), ("TT", round(tt, 1)), ("SH", round(sh, 1))],
            title="Section VII counterexample: (AB)^400, K=16",
        ),
    )
    assert at >= 90.0
    assert tt <= 50.0
    assert sh <= 50.0
