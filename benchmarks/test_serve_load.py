"""Serve-load benchmark: threaded server vs asyncio gateway, same bundle.

Closed-loop load generation: a few client threads with persistent
HTTP connections fire a Zipf-skewed query stream (hot patterns repeat,
like real traffic) at each serving mode over the *same* v3 bundle, and
every response is checked against the single-process reference engine,
so the throughput numbers only count correct answers.

Reports sustained QPS and p50/p95/p99 client-side latency per mode.
Emits ``results/BENCH_serve.json`` under ``REPRO_WRITE_RESULTS=1``.
The async-beats-threaded assertion only applies on >= 4-core hosts
(on one or two cores a worker pool has nothing to win); the QPS floor
and p95 ceiling gate both modes everywhere.
"""

from __future__ import annotations

import http.client
import json
import os
import pathlib
import threading
import time

import numpy as np
import pytest

from repro.api import build, open_index
from repro.gateway import AsyncGateway
from repro.io import save_index
from repro.service.engine import QueryEngine
from repro.service.registry import IndexRegistry
from repro.service.server import UsiServer

RNG = np.random.default_rng(2026)
TEXT_N = 30_000
#: Large vocabulary + mild skew: most patterns miss the result caches,
#: so each request costs real engine work — the regime where the
#: worker pool's process parallelism can actually pay for its IPC.
VOCABULARY = 2_048
PATTERNS_PER_REQUEST = 16
CLIENTS = 4
REQUESTS_PER_CLIENT = 100
WORKERS = max(2, min(4, os.cpu_count() or 1))

#: Loose local gates — CI calibrates against the committed JSON.
QPS_FLOOR = 25.0
P95_CEILING_MS = 400.0


@pytest.fixture(scope="module")
def bundle(tmp_path_factory):
    letters = np.array(list("abcdefgh"))
    text = "".join(RNG.choice(letters, size=TEXT_N))
    path = tmp_path_factory.mktemp("serve_load") / "load.npz"
    save_index(build(text, k=256), path, container="v3")
    return path, text


@pytest.fixture(scope="module")
def stream(bundle):
    """Zipf-skewed *batch* requests drawn from text substrings."""
    _, text = bundle
    vocabulary = []
    for _ in range(VOCABULARY):
        length = int(RNG.integers(3, 9))
        start = int(RNG.integers(0, TEXT_N - length))
        vocabulary.append(text[start : start + length])
    ranks = np.arange(1, VOCABULARY + 1, dtype=np.float64)
    weights = (1.0 / ranks**0.5) / (1.0 / ranks**0.5).sum()  # mild skew
    total = CLIENTS * REQUESTS_PER_CLIENT
    picks = RNG.choice(
        VOCABULARY, size=(total, PATTERNS_PER_REQUEST), p=weights
    )
    return [[vocabulary[i] for i in row] for row in picks]


@pytest.fixture(scope="module")
def reference(bundle, stream):
    engine = QueryEngine(open_index(bundle[0], mmap=True))
    return [engine.query_batch(batch) for batch in stream]


def _drive(host: str, port: int, stream, reference) -> dict:
    """Closed-loop load; returns QPS + latency percentiles."""
    per_client = len(stream) // CLIENTS
    latencies: "list[list[float]]" = [[] for _ in range(CLIENTS)]
    failures: "list[str]" = []

    def client(slot: int) -> None:
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            for offset in range(slot * per_client, (slot + 1) * per_client):
                body = json.dumps({"patterns": stream[offset]})
                t0 = time.perf_counter()
                connection.request(
                    "POST", "/query", body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                payload = json.loads(response.read())
                latencies[slot].append(time.perf_counter() - t0)
                if response.status != 200:
                    failures.append(payload.get("error", "?"))
                else:
                    answers = [row["utility"] for row in payload["results"]]
                    if answers != list(reference[offset]):
                        failures.append(f"wrong answers for request {offset}")
        finally:
            connection.close()

    threads = [
        threading.Thread(target=client, args=(slot,)) for slot in range(CLIENTS)
    ]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - t0

    assert not failures, failures[:5]
    flat = np.sort(np.concatenate([np.asarray(l) for l in latencies]))
    total = len(flat)
    return {
        "requests": total,
        "clients": CLIENTS,
        "qps": round(total / wall, 1),
        "p50_ms": round(float(np.percentile(flat, 50)) * 1e3, 3),
        "p95_ms": round(float(np.percentile(flat, 95)) * 1e3, 3),
        "p99_ms": round(float(np.percentile(flat, 99)) * 1e3, 3),
        "wall_seconds": round(wall, 3),
    }


def _fetch_mode(host: str, port: int) -> dict:
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        connection.request("GET", "/stats")
        stats = json.loads(connection.getresponse().read())
        return {"mode": stats["mode"], "workers": stats["workers"]}
    finally:
        connection.close()


def test_serve_load_both_modes(bundle, stream, reference):
    path, _ = bundle
    report: dict = {
        "text_n": TEXT_N,
        "vocabulary": VOCABULARY,
        "patterns_per_request": PATTERNS_PER_REQUEST,
        "clients": CLIENTS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "qps_floor": QPS_FLOOR,
        "p95_ceiling_ms": P95_CEILING_MS,
    }

    registry = IndexRegistry(cache_size=4096)
    registry.register_path("load", path)
    registry.get("load")  # preload: measure serving, not first-open
    with UsiServer(registry, port=0) as server:
        label = _fetch_mode(server.host, server.port)
        assert label == {"mode": "threaded", "workers": 0}
        report["threaded"] = _drive(server.host, server.port, stream, reference)

    gateway = AsyncGateway(paths={"load": path}, workers=WORKERS, port=0)
    with gateway.start_in_thread() as handle:
        label = _fetch_mode(gateway.host, gateway.port)
        assert label == {"mode": "async", "workers": WORKERS}
        report["async"] = _drive(gateway.host, gateway.port, stream, reference)
        report["async"]["coalesced"] = gateway.coalescer.stats()["followers"]

    for mode in ("threaded", "async"):
        numbers = report[mode]
        assert numbers["qps"] >= QPS_FLOOR, (
            f"{mode} sustained only {numbers['qps']} QPS "
            f"(floor {QPS_FLOOR})"
        )
        assert numbers["p95_ms"] <= P95_CEILING_MS, (
            f"{mode} p95 {numbers['p95_ms']} ms "
            f"(ceiling {P95_CEILING_MS} ms)"
        )

    # The pool only pays off with cores to spread over; on the 1-2
    # core fallback the fork + IPC overhead legitimately loses.
    if (os.cpu_count() or 1) >= 4:
        assert report["async"]["qps"] >= report["threaded"]["qps"], (
            f"async {report['async']['qps']} QPS did not beat "
            f"threaded {report['threaded']['qps']} QPS on a "
            f"{os.cpu_count()}-core host"
        )

    print("\nBENCH_serve: " + json.dumps(report, indent=2))
    if os.environ.get("REPRO_WRITE_RESULTS") == "1":
        results = pathlib.Path(__file__).resolve().parent.parent / "results"
        results.mkdir(exist_ok=True)
        (results / "BENCH_serve.json").write_text(
            json.dumps(report, indent=2) + "\n"
        )
