"""Chaos benchmark: availability and recovery under seeded fault storms.

Drives the asyncio gateway through the seeded chaos schedules of
:mod:`repro.faults.schedule` — worker hangs, crashes, crash-loops,
slow IPC — and measures what the failure-hardening actually buys:

* **availability**: the fraction of requests answered 200 while the
  storm rages (inline degraded mode keeps this near 1.0);
* **exactness**: every 200 is checked byte-identical to a
  single-process reference engine — a wrong answer fails the run;
* **worst-case latency**: no request may outlive the gateway deadline
  plus scheduler slack (a hang that escapes the deadline machinery
  fails the run);
* **recovery seconds**: how long after the storm ends until
  ``/healthz`` reports ``ok`` again.

Emits ``results/BENCH_chaos.json`` under ``REPRO_WRITE_RESULTS=1``
(uploaded as a CI artifact), one row per seed plus the scenario names
each seed drew — so every CI run records which storms it survived.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
import urllib.error
import urllib.request

import pytest

from repro import faults
from repro.api import build, open_index
from repro.faults import chaos_plan
from repro.gateway import AsyncGateway
from repro.io import save_index
from repro.service.engine import QueryEngine

TEXT = "abracadabra banana cabana abracadabra bandana " * 40
PATTERNS = ["abra", "banana", "cab", "a", "zzz", "bandana", "br", "ana"]

SEEDS = (1, 2, 3)
REQUESTS_PER_SEED = 24
WORKERS = 2
CALL_TIMEOUT = 0.5
REQUEST_TIMEOUT = 5.0
LATENCY_CEILING_S = REQUEST_TIMEOUT + 5.0
RECOVERY_DEADLINE_S = 60.0

#: Inline degraded mode must keep at least this fraction answering.
AVAILABILITY_FLOOR = 0.5

GATEWAY_SCENARIOS = (
    "worker_hang",
    "worker_crash",
    "worker_crash_loop",
    "slow_ipc",
)


def _post(url: str, payload: dict, timeout: float):
    request = urllib.request.Request(
        url + "/query",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def _expected_body(engine, pattern: str) -> bytes:
    rows = [{"pattern": pattern, "utility": engine.query_batch([pattern])[0]}]
    return json.dumps({"index": "demo", "results": rows}).encode()


def _run_seed(seed: int, bundle, reference) -> dict:
    plan, scenarios = chaos_plan(
        seed, scenarios=GATEWAY_SCENARIOS, hang_seconds=30.0
    )
    faults.install(plan)
    gateway = AsyncGateway(
        paths={"demo": bundle},
        workers=WORKERS,
        port=0,
        call_timeout=CALL_TIMEOUT,
        request_timeout=REQUEST_TIMEOUT,
        degraded_mode="inline",
    )
    ok = 0
    worst_latency = 0.0
    try:
        with gateway.start_in_thread() as handle:
            for i in range(REQUESTS_PER_SEED):
                pattern = PATTERNS[i % len(PATTERNS)]
                t0 = time.perf_counter()
                status, body = _post(
                    handle.url, {"pattern": pattern},
                    timeout=LATENCY_CEILING_S + 5,
                )
                elapsed = time.perf_counter() - t0
                worst_latency = max(worst_latency, elapsed)
                assert elapsed < LATENCY_CEILING_S, (
                    f"seed {seed}: request {i} took {elapsed:.1f}s"
                )
                if status == 200:
                    assert body == _expected_body(reference, pattern), (
                        f"seed {seed}: wrong answer for {pattern!r}"
                    )
                    ok += 1

            faults.clear()
            healed_at = None
            t0 = time.monotonic()
            while time.monotonic() - t0 < RECOVERY_DEADLINE_S:
                _post(handle.url, {"pattern": "abra"},
                      timeout=LATENCY_CEILING_S)
                with urllib.request.urlopen(
                    handle.url + "/healthz", timeout=10
                ) as response:
                    if json.loads(response.read())["status"] == "ok":
                        healed_at = time.monotonic() - t0
                        break
                time.sleep(0.2)
            assert healed_at is not None, f"seed {seed}: never recovered"
            pool_stats = gateway.pool.stats()
    finally:
        faults.clear()

    availability = ok / REQUESTS_PER_SEED
    assert availability >= AVAILABILITY_FLOOR, (
        f"seed {seed}: only {availability:.0%} answered under chaos"
    )
    return {
        "seed": seed,
        "scenarios": scenarios,
        "requests": REQUESTS_PER_SEED,
        "ok": ok,
        "availability": round(availability, 3),
        "worst_latency_ms": round(worst_latency * 1000, 1),
        "recovery_seconds": round(healed_at, 2),
        "degraded_queries": gateway.degraded_queries,
        "pool_retries": gateway.pool_retries,
        "worker_restarts": pool_stats["restarts"],
        "deadline_kills": pool_stats["timeouts"],
        "breaker_trips": pool_stats["breaker"]["trips"],
    }


def test_chaos_availability_and_recovery(tmp_path):
    bundle = tmp_path / "demo.npz"
    save_index(build(TEXT, k=16), bundle, container="v3")
    reference = QueryEngine(open_index(bundle, mmap=True))

    rows = [_run_seed(seed, bundle, reference) for seed in SEEDS]
    report = {
        "workers": WORKERS,
        "call_timeout_s": CALL_TIMEOUT,
        "request_timeout_s": REQUEST_TIMEOUT,
        "availability_floor": AVAILABILITY_FLOOR,
        "cpu_count": os.cpu_count(),
        "seeds": rows,
    }

    print("\nBENCH_chaos: " + json.dumps(report, indent=2))
    if os.environ.get("REPRO_WRITE_RESULTS") == "1":
        results = pathlib.Path(__file__).resolve().parent.parent / "results"
        results.mkdir(exist_ok=True)
        (results / "BENCH_chaos.json").write_text(
            json.dumps(report, indent=2) + "\n"
        )
