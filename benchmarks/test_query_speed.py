"""Query-path micro-benchmark (the PR-8 acceptance gate).

Measures the fused batch query path — ``index.query_batch`` over the
USI backend — against the *seed* query path on 10k patterns over a
1M-char synthetic text, and asserts the fused path holds a >= 5x
end-to-end speedup.  The seed path is the retained per-pattern
fallback, exactly as the protocol still runs it for batch-less
backends (:meth:`repro.api.protocol.UtilityIndexBase.query_batch`):
one ``index.query(pattern)`` call per pattern, each paying its own
encode, fingerprint probe, suffix-array descent, and utility gather.

Also times the sharded serving index — serial fan-out vs the
persistent process pool — and records both in the JSON payload
*without* gating them (worker scaling depends on the runner's cores).

Emits ``results/BENCH_query.json`` (machine-readable seconds for every
path) under ``REPRO_WRITE_RESULTS=1``, which CI uploads as the
query-speed trajectory artifact; the speedup assertion makes the CI
job fail if the floor regresses.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

import repro
from repro.strings.collection import WeightedStringCollection
from repro.strings.weighted import WeightedString

BENCH_N = 1_000_000
BENCH_K = 2_000
BENCH_PATTERNS = 10_000
SPEEDUP_FLOOR = 5.0


def _sample_patterns(rng, text: str, count: int) -> list[str]:
    """Substrings of the indexed text, so every pattern has occurrences.

    Lengths 4..11 mirror the paper's query workloads: short enough
    that the frequent ones hit the top-K table, long enough that most
    miss it (the expensive uncached path dominates).  Eight distinct
    lengths keep warm batches inside the per-length key caches.
    """
    lengths = rng.integers(4, 12, size=count)
    starts = rng.integers(0, len(text) - 11, size=count)
    return [text[s : s + m] for s, m in zip(starts.tolist(), lengths.tolist())]


def test_query_batch_fused_speedup():
    """1M chars, 10k patterns: fused batch >= 5x the per-pattern seed path."""
    rng = np.random.default_rng(11)
    codes = rng.integers(0, 4, size=BENCH_N, dtype=np.int64)
    text = np.frombuffer(b"acgt", dtype=np.uint8)[codes].tobytes().decode("ascii")
    ws = WeightedString(text, rng.uniform(0.5, 1.5, size=BENCH_N))
    patterns = _sample_patterns(rng, text, BENCH_PATTERNS)

    index = repro.build(ws, backend="usi", k=BENCH_K)

    # The seed path: the retained per-pattern protocol fallback.  Runs
    # once — scheduler noise there only relaxes the gate.
    t0 = time.perf_counter()
    legacy_answers = [index.query(p) for p in patterns]
    legacy_seconds = time.perf_counter() - t0

    # Best-of-2 on the fast side: noise only ever inflates a single
    # run, and this gate must hold on loaded CI runners.  The second
    # run also exercises the warm path (scratch buffers + SA-order
    # window cache reused across batches).
    batch_seconds = float("inf")
    for _ in range(2):
        t0 = time.perf_counter()
        batch_answers = index.query_batch(patterns)
        batch_seconds = min(batch_seconds, time.perf_counter() - t0)

    # Same answers out of both paths (scalar vs batch may differ by
    # float accumulation order only).
    assert np.allclose(batch_answers, legacy_answers, rtol=1e-9, atol=0.0)

    speedup = legacy_seconds / batch_seconds
    assert speedup >= SPEEDUP_FLOOR, (
        f"fused batch query is only {speedup:.1f}x the seed per-pattern "
        f"path ({batch_seconds:.3f} s vs {legacy_seconds:.3f} s)"
    )

    # Vectorised count_batch vs the retained scalar count loop — same
    # exactness contract (counts are integers, compared ==).
    t0 = time.perf_counter()
    legacy_counts = [index.count(p) for p in patterns]
    count_legacy_seconds = time.perf_counter() - t0
    count_batch_seconds = float("inf")
    for _ in range(2):
        t0 = time.perf_counter()
        batch_counts = index.count_batch(patterns)
        count_batch_seconds = min(count_batch_seconds, time.perf_counter() - t0)
    assert batch_counts == legacy_counts

    # Sharded fan-out: serial vs the persistent process pool, recorded
    # but not gated (scaling depends on the runner's cores).  Answers
    # must stay byte-identical to the serial merge.
    docs = 8
    chunk = BENCH_N // docs
    collection = WeightedStringCollection(
        [
            WeightedString(
                text[i * chunk : (i + 1) * chunk],
                rng.uniform(0.5, 1.5, size=chunk),
            )
            for i in range(docs)
        ]
    )
    from repro.service.sharding import ShardedUsiIndex

    sharded = ShardedUsiIndex.build(collection, 4, k=BENCH_K // docs)
    shard_patterns = patterns[:2_000]
    shard_serial_seconds = float("inf")
    for _ in range(2):
        t0 = time.perf_counter()
        serial_answers = sharded.query_batch(shard_patterns)
        shard_serial_seconds = min(shard_serial_seconds, time.perf_counter() - t0)
    shard_pool_seconds = None
    pool_workers = 0
    if sharded.start_query_pool():
        pool_workers = sharded.query_pool_workers
        shard_pool_seconds = float("inf")
        for _ in range(2):
            t0 = time.perf_counter()
            pooled_answers = sharded.query_batch(shard_patterns)
            shard_pool_seconds = min(shard_pool_seconds, time.perf_counter() - t0)
        assert pooled_answers == serial_answers
        sharded.stop_query_pool()

    bench = {
        "n": BENCH_N,
        "k": BENCH_K,
        "patterns": BENCH_PATTERNS,
        "legacy_seconds": round(legacy_seconds, 6),
        "batch_seconds": round(batch_seconds, 6),
        "speedup": round(speedup, 2),
        "speedup_floor": SPEEDUP_FLOOR,
        "patterns_per_second": round(BENCH_PATTERNS / batch_seconds),
        "count_legacy_seconds": round(count_legacy_seconds, 6),
        "count_batch_seconds": round(count_batch_seconds, 6),
        "count_speedup": round(count_legacy_seconds / count_batch_seconds, 2),
        "shard_patterns": len(shard_patterns),
        "shard_serial_seconds": round(shard_serial_seconds, 6),
        "shard_pool_seconds": (
            round(shard_pool_seconds, 6) if shard_pool_seconds is not None else None
        ),
        "shard_pool_workers": pool_workers,
    }
    print("\nBENCH_query: " + json.dumps(bench, indent=2))
    if os.environ.get("REPRO_WRITE_RESULTS") == "1":
        results = pathlib.Path(__file__).resolve().parent.parent / "results"
        results.mkdir(exist_ok=True)
        (results / "BENCH_query.json").write_text(json.dumps(bench, indent=2) + "\n")
