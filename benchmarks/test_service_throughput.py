"""Serving throughput: batched+cached engine vs a naive per-query loop.

The workload models real serving traffic: a Zipf-skewed stream over a
modest distinct-pattern vocabulary (most queries repeat a few hot
patterns).  The naive baseline calls ``UsiIndex.query`` once per
pattern; the engine answers the same stream through
``QueryEngine.query_batch`` with a warm LRU cache.  The acceptance bar
for this subsystem is a >= 2x throughput win on the warm-cache run.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import save_report
from repro.core.usi import UsiIndex
from repro.service.engine import QueryEngine
from repro.strings.weighted import WeightedString

RNG = np.random.default_rng(2025)
TEXT_N = 20_000
VOCABULARY = 200
STREAM = 4_000
BATCH = 250


@pytest.fixture(scope="module")
def index() -> UsiIndex:
    codes = RNG.integers(0, 4, size=TEXT_N, dtype=np.int32)
    utilities = RNG.uniform(0.5, 1.5, size=TEXT_N)
    return UsiIndex.build(WeightedString(codes, utilities), k=500)


@pytest.fixture(scope="module")
def stream(index) -> list[np.ndarray]:
    """A skewed query stream drawn from text substrings (all lengths 4-12)."""
    codes = index.weighted_string.codes
    vocabulary = []
    for _ in range(VOCABULARY):
        length = int(RNG.integers(4, 13))
        start = int(RNG.integers(0, TEXT_N - length))
        vocabulary.append(codes[start : start + length].astype(np.int64))
    ranks = np.arange(1, VOCABULARY + 1, dtype=np.float64)
    weights = (1.0 / ranks) / (1.0 / ranks).sum()
    picks = RNG.choice(VOCABULARY, size=STREAM, p=weights)
    return [vocabulary[i] for i in picks]


def test_batched_engine_beats_naive_loop(index, stream):
    # Naive baseline: one index.query call per stream element.
    t0 = time.perf_counter()
    naive = [index.query(p) for p in stream]
    naive_seconds = time.perf_counter() - t0

    engine = QueryEngine(index, cache_size=4096)
    batches = [stream[i : i + BATCH] for i in range(0, STREAM, BATCH)]
    engine.query_batch(stream[:VOCABULARY])  # warm the cache
    t0 = time.perf_counter()
    served: list[float] = []
    for batch in batches:
        served.extend(engine.query_batch(batch))
    engine_seconds = time.perf_counter() - t0

    assert served == naive  # same answers, to the bit

    naive_qps = STREAM / naive_seconds
    engine_qps = STREAM / engine_seconds
    speedup = engine_qps / naive_qps
    stats = engine.stats()
    save_report(
        "service_throughput",
        "\n".join(
            [
                "serving throughput: naive loop vs batched warm-cache engine",
                f"stream={STREAM} queries, vocabulary={VOCABULARY}, "
                f"batch={BATCH}, text n={TEXT_N}",
                f"{'mode':<24}{'QPS':>14}{'seconds':>12}",
                f"{'naive per-query loop':<24}{naive_qps:>14.0f}{naive_seconds:>12.4f}",
                f"{'batched engine (warm)':<24}{engine_qps:>14.0f}{engine_seconds:>12.4f}",
                f"speedup: {speedup:.1f}x   "
                f"cache hit rate: {stats['hit_rate']:.3f}",
            ]
        ),
    )
    assert speedup >= 2.0, f"batched engine only {speedup:.2f}x over naive"


def test_engine_cold_cache_still_correct(index, stream):
    """Cold engine = same answers; speed is not asserted (miss path)."""
    engine = QueryEngine(index, cache_size=4096)
    assert engine.query_batch(stream[:300]) == [
        index.query(p) for p in stream[:300]
    ]
    assert engine.stats()["cache_misses"] <= VOCABULARY
