"""Ablations: design choices called out in DESIGN.md.

Not paper figures — these quantify the reproduction's own engineering
decisions so a downstream user can revisit them:

* suffix-array construction: numpy prefix doubling vs pure-Python SA-IS;
* locate backend: suffix-array binary search vs suffix-tree descent;
* the full USI locate backend triple: SA vs FM-index vs suffix tree;
* top-K oracle with vs without leaf edges;
* LCE oracle: fingerprint binary search vs exact SA+LCP+RMQ;
* Approximate-Top-K round-capacity factor (accuracy knob).
"""

from __future__ import annotations

import numpy as np

from repro.core.approximate import ApproximateTopK
from repro.core.topk_oracle import TopKOracle
from repro.eval.harness import measure_call
from repro.eval.metrics import evaluate_miner
from repro.eval.reporting import format_table
from repro.suffix.lce import FingerprintLce, SuffixArrayLce
from repro.suffix.suffix_array import SuffixArray
from repro.suffix_tree.navigation import SuffixTreeNavigator
from repro.suffix_tree.ukkonen import SuffixTree

from benchmarks.conftest import save_report


def test_ablation_sa_construction(hum_bundle, benchmark):
    """Prefix doubling (vectorised) vs SA-IS (pure Python, O(n))."""
    codes = hum_bundle.ws.codes

    def run():
        doubling = measure_call(
            lambda: SuffixArray(codes, algorithm="doubling", with_lcp=False),
            trace_memory=False,
        )
        sais = measure_call(
            lambda: SuffixArray(codes, algorithm="sais", with_lcp=False),
            trace_memory=False,
        )
        return doubling, sais

    (doubling_index, doubling_s, _), (sais_index, sais_s, _) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    np.testing.assert_array_equal(doubling_index.sa, sais_index.sa)
    save_report(
        "ablation_sa_construction",
        format_table(
            ["algorithm", "seconds"],
            [("doubling (numpy)", round(doubling_s, 3)),
             ("SA-IS (pure python)", round(sais_s, 3))],
            title="Ablation: suffix array construction backend (HUM)",
        ),
    )
    assert doubling_s < sais_s  # the reason doubling is the default


def test_ablation_locate_backend(hum_bundle, benchmark):
    """SA binary search vs suffix-tree descent for locate queries."""
    ws = hum_bundle.ws
    tree = SuffixTree.from_codes(ws.codes)
    navigator = SuffixTreeNavigator(tree)
    index = hum_bundle.index
    rng = np.random.default_rng(1)
    patterns = []
    for _ in range(300):
        length = int(rng.integers(3, 12))
        start = int(rng.integers(0, ws.length - length))
        patterns.append(ws.codes[start : start + length].astype(np.int64))

    def run():
        _, sa_seconds, _ = measure_call(
            lambda: [index.occurrences(p) for p in patterns], trace_memory=False
        )
        _, st_seconds, _ = measure_call(
            lambda: [navigator.occurrences(p) for p in patterns], trace_memory=False
        )
        return sa_seconds, st_seconds

    sa_seconds, st_seconds = benchmark.pedantic(run, rounds=1, iterations=1)
    for pattern in patterns[:40]:
        np.testing.assert_array_equal(
            np.sort(index.occurrences(pattern)), navigator.occurrences(pattern)
        )
    save_report(
        "ablation_locate_backend",
        format_table(
            ["backend", "seconds / 300 locates"],
            [("suffix array (binary search)", round(sa_seconds, 4)),
             ("suffix tree (descent)", round(st_seconds, 4))],
            title="Ablation: locate backend (identical occurrence sets)",
        ),
    )


def test_ablation_oracle_leaves(hum_bundle, benchmark):
    """Leaf edges in the oracle: required for K beyond repeated substrings."""
    index = hum_bundle.index

    def run():
        with_leaves = TopKOracle(index, include_leaves=True)
        without = TopKOracle(index, include_leaves=False)
        return with_leaves, without

    with_leaves, without = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ablation_oracle_leaves",
        format_table(
            ["variant", "triplets", "distinct substrings", "bytes"],
            [
                ("with leaves", with_leaves.triplet_count,
                 with_leaves.distinct_substring_count, with_leaves.nbytes()),
                ("internal only", without.triplet_count,
                 without.distinct_substring_count, without.nbytes()),
            ],
            title="Ablation: oracle leaf edges (coverage vs size)",
        ),
    )
    assert with_leaves.distinct_substring_count > without.distinct_substring_count
    # The frequent prefix is identical: leaves only add frequency-1 tails.
    k = 50
    assert [m.frequency for m in with_leaves.top_k(k)] == [
        m.frequency for m in without.top_k(k)
    ]


def test_ablation_lce_oracles(hum_bundle, benchmark):
    """Fingerprint LCE vs exact SA+LCP+RMQ LCE: same answers."""
    codes = hum_bundle.ws.codes.astype(np.int64)
    index = hum_bundle.index
    rng = np.random.default_rng(2)
    pairs = rng.integers(0, len(codes), size=(400, 2))

    def run():
        fp = FingerprintLce(codes)
        exact = SuffixArrayLce(codes, index.sa, index.lcp)
        _, fp_seconds, _ = measure_call(
            lambda: [fp.lce(int(i), int(j)) for i, j in pairs], trace_memory=False
        )
        _, sa_seconds, _ = measure_call(
            lambda: [exact.lce(int(i), int(j)) for i, j in pairs], trace_memory=False
        )
        return fp, exact, fp_seconds, sa_seconds

    fp, exact, fp_seconds, sa_seconds = benchmark.pedantic(run, rounds=1, iterations=1)
    for i, j in pairs[:100]:
        assert fp.lce(int(i), int(j)) == exact.lce(int(i), int(j))
    save_report(
        "ablation_lce_oracles",
        format_table(
            ["oracle", "seconds / 400 queries"],
            [("fingerprint (O(log n), no SA needed)", round(fp_seconds, 4)),
             ("SA+LCP+RMQ (O(1), needs full SA)", round(sa_seconds, 4))],
            title="Ablation: LCE oracle backends agree",
        ),
    )


def test_ablation_locate_backend_usi(hum_bundle, benchmark):
    """USI locate backends (SA / FM / ST): same answers, size/speed trade."""
    from repro.core.usi import UsiIndex
    from repro.datasets.workloads import build_w1

    bundle = hum_bundle
    k = max(20, bundle.default_k)
    queries = build_w1(bundle.ws, bundle.oracle, 200,
                       length_range=bundle.spec.query_length_range, seed=9)

    def run():
        sa_index = UsiIndex.build(bundle.ws, k=k)
        fm_index = UsiIndex.build(bundle.ws, k=k, locate_backend="fm")
        st_index = UsiIndex.build(bundle.ws, k=k, locate_backend="st")
        _, sa_seconds, _ = measure_call(
            lambda: [sa_index.query(q) for q in queries], trace_memory=False
        )
        _, fm_seconds, _ = measure_call(
            lambda: [fm_index.query(q) for q in queries], trace_memory=False
        )
        _, st_seconds, _ = measure_call(
            lambda: [st_index.query(q) for q in queries], trace_memory=False
        )
        return sa_index, fm_index, st_index, sa_seconds, fm_seconds, st_seconds

    sa_index, fm_index, st_index, sa_seconds, fm_seconds, st_seconds = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    for query in queries[:30]:
        assert abs(sa_index.query(query) - fm_index.query(query)) < 1e-6
        assert abs(sa_index.query(query) - st_index.query(query)) < 1e-6
    save_report(
        "ablation_usi_locate_backend",
        format_table(
            ["backend", "query seconds / 200", "index KiB"],
            [("suffix array", round(sa_seconds, 4), sa_index.nbytes() // 1024),
             ("FM-index", round(fm_seconds, 4), fm_index.nbytes() // 1024),
             ("suffix tree", round(st_seconds, 4), st_index.nbytes() // 1024)],
            title="Ablation: USI locate backend (identical answers)",
        ),
    )


def test_ablation_round_capacity(hum_bundle, benchmark):
    """The AT round-capacity knob: accuracy vs per-round work."""
    bundle = hum_bundle
    k = max(20, bundle.default_k)

    def sweep():
        rows = []
        for capacity in (1.0, 2.0, 4.0, 8.0):
            miner = ApproximateTopK(
                bundle.ws, k=k, s=bundle.spec.default_s, round_capacity=capacity
            )
            results, seconds, _ = measure_call(miner.mine, trace_memory=False)
            scores = evaluate_miner(results, bundle.index, k, oracle=bundle.oracle)
            rows.append(
                (capacity, round(scores.accuracy_percent, 1), round(seconds, 3))
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_report(
        "ablation_round_capacity",
        format_table(
            ["round capacity", "accuracy %", "seconds"], rows,
            title="Ablation: AT round-capacity factor on HUM",
        ),
    )
    # Larger capacity never hurts accuracy (and 4x is the default).
    assert rows[-1][1] >= rows[0][1] - 1e-9
