"""Substrate micro-benchmarks (classic pytest-benchmark usage).

Not paper figures: per-operation timings of the kernels every
experiment rests on, so performance regressions in the substrates are
caught where they happen rather than as noise in the figure suites.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing.karp_rabin import KarpRabinFingerprinter
from repro.succinct.fm_index import FmIndex
from repro.succinct.wavelet import WaveletTree
from repro.suffix.doubling import suffix_array_doubling
from repro.suffix.lcp import lcp_array_kasai
from repro.suffix.suffix_array import SuffixArray


@pytest.fixture(scope="module")
def dna_codes():
    rng = np.random.default_rng(0)
    return rng.integers(0, 4, size=20_000, dtype=np.int64)


@pytest.fixture(scope="module")
def dna_index(dna_codes):
    return SuffixArray(dna_codes)


def test_bench_suffix_array_doubling(dna_codes, benchmark):
    sa = benchmark(lambda: suffix_array_doubling(dna_codes))
    assert len(sa) == len(dna_codes)


def test_bench_lcp_kasai(dna_codes, dna_index, benchmark):
    lcp = benchmark(lambda: lcp_array_kasai(dna_codes, dna_index.sa))
    assert len(lcp) == len(dna_codes)


def test_bench_sa_locate(dna_index, benchmark):
    pattern = dna_index.codes[100:108]

    def run():
        return dna_index.occurrences(pattern)

    occurrences = benchmark(run)
    assert occurrences.size >= 1


def test_bench_kr_window_fingerprints(dna_codes, benchmark):
    fp = KarpRabinFingerprinter(dna_codes)
    windows = benchmark(lambda: fp.all_windows(8))
    assert len(windows) == len(dna_codes) - 7


def test_bench_kr_pattern_fingerprint(dna_codes, benchmark):
    fp = KarpRabinFingerprinter(dna_codes)
    pattern = dna_codes[50:58]
    key = benchmark(lambda: fp.of_codes(pattern))
    assert key == fp.fragment(50, 8)


def test_bench_wavelet_rank(dna_codes, benchmark):
    wt = WaveletTree(dna_codes[:5_000], sigma=4)

    def run():
        total = 0
        for i in range(0, 5_000, 50):
            total += wt.rank(2, i)
        return total

    assert benchmark(run) >= 0


def test_bench_fm_count(benchmark):
    rng = np.random.default_rng(1)
    codes = rng.integers(0, 4, size=5_000, dtype=np.int64)
    fm = FmIndex(codes)
    pattern = codes[200:208]
    count = benchmark(lambda: fm.count(pattern))
    assert count >= 1


# ----------------------------------------------------------------------
# The kernel batch-locate path (the PR-3 acceptance benchmark)
# ----------------------------------------------------------------------
def _best_of(runs: int, fn):
    """Best wall-clock of *runs* executions (noise-robust timing)."""
    import time

    best = float("inf")
    result = None
    for _ in range(runs):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return result, best


def test_bench_batch_locate_vectorised_speedup():
    """1,000 patterns on a 100k-char text: batch kernel >= 5x the loop.

    The per-pattern loop is the pre-kernel query path (one pure-Python
    binary search per pattern); the vectorised kernel rank-encodes the
    length bucket once and answers every interval with two
    ``np.searchsorted`` calls.  Also emits ``BENCH_kernel.json``
    (machine-readable build/QPS/size figures) under ``results/`` when
    ``REPRO_WRITE_RESULTS=1``, which CI uploads as an artifact.
    """
    import json
    import os
    import pathlib
    import time

    import repro
    from repro import TextKernel, WeightedString

    rng = np.random.default_rng(7)
    n, batch, length = 100_000, 1_000, 8
    codes = rng.integers(0, 4, size=n, dtype=np.int64)
    ws = WeightedString(codes, rng.uniform(0.5, 1.5, size=n))

    t0 = time.perf_counter()
    kernel = TextKernel.build(ws)
    kernel_build_seconds = time.perf_counter() - t0

    starts = rng.integers(0, n - length + 1, size=batch)
    patterns = [codes[s : s + length] for s in starts]
    matrix = np.vstack(patterns)
    suffix = kernel.suffix

    def locate_loop():
        return [suffix.interval(pattern) for pattern in patterns]

    def locate_batch():
        suffix._key_cache.clear()  # cold every run: key build included
        return suffix.interval_batch(matrix)

    loop_answers, loop_seconds = _best_of(3, locate_loop)
    (lb, rb), batch_seconds = _best_of(3, locate_batch)

    assert [(int(a), int(b)) for a, b in zip(lb, rb)] == loop_answers
    speedup = loop_seconds / batch_seconds
    assert speedup >= 5.0, (
        f"batch locate is only {speedup:.1f}x the per-pattern loop "
        f"({batch_seconds * 1e3:.1f} ms vs {loop_seconds * 1e3:.1f} ms)"
    )

    # Warm batch-utility QPS through the full kernel path.
    kernel.batch_utilities([p for p in matrix], "sum")  # prime key cache
    t0 = time.perf_counter()
    kernel.batch_utilities([p for p in matrix], "sum")
    warm_seconds = time.perf_counter() - t0
    batch_qps = batch / warm_seconds if warm_seconds else float("inf")

    # Per-backend incremental build cost and size over the shared kernel.
    backends = {}
    for name in ("usi", "oracle", "bsl1"):
        t0 = time.perf_counter()
        index = repro.build(ws, k=50, backend=name, kernel=kernel)
        backends[name] = {
            "build_seconds": round(time.perf_counter() - t0, 6),
            "nbytes": index.nbytes(),
        }

    report = {
        "n": n,
        "batch": batch,
        "pattern_length": length,
        "kernel_build_seconds": round(kernel_build_seconds, 6),
        "locate_loop_seconds": round(loop_seconds, 6),
        "locate_batch_seconds": round(batch_seconds, 6),
        "locate_speedup": round(speedup, 2),
        "warm_batch_qps": round(batch_qps, 1),
        "kernel_nbytes": kernel.nbytes(),
        "backends": backends,
    }
    print("\nBENCH_kernel: " + json.dumps(report, indent=2))
    if os.environ.get("REPRO_WRITE_RESULTS") == "1":
        results = pathlib.Path(__file__).resolve().parent.parent / "results"
        results.mkdir(exist_ok=True)
        (results / "BENCH_kernel.json").write_text(json.dumps(report, indent=2) + "\n")
