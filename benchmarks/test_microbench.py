"""Substrate micro-benchmarks (classic pytest-benchmark usage).

Not paper figures: per-operation timings of the kernels every
experiment rests on, so performance regressions in the substrates are
caught where they happen rather than as noise in the figure suites.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing.karp_rabin import KarpRabinFingerprinter
from repro.succinct.fm_index import FmIndex
from repro.succinct.wavelet import WaveletTree
from repro.suffix.doubling import suffix_array_doubling
from repro.suffix.lcp import lcp_array_kasai
from repro.suffix.suffix_array import SuffixArray


@pytest.fixture(scope="module")
def dna_codes():
    rng = np.random.default_rng(0)
    return rng.integers(0, 4, size=20_000, dtype=np.int64)


@pytest.fixture(scope="module")
def dna_index(dna_codes):
    return SuffixArray(dna_codes)


def test_bench_suffix_array_doubling(dna_codes, benchmark):
    sa = benchmark(lambda: suffix_array_doubling(dna_codes))
    assert len(sa) == len(dna_codes)


def test_bench_lcp_kasai(dna_codes, dna_index, benchmark):
    lcp = benchmark(lambda: lcp_array_kasai(dna_codes, dna_index.sa))
    assert len(lcp) == len(dna_codes)


def test_bench_sa_locate(dna_index, benchmark):
    pattern = dna_index.codes[100:108]

    def run():
        return dna_index.occurrences(pattern)

    occurrences = benchmark(run)
    assert occurrences.size >= 1


def test_bench_kr_window_fingerprints(dna_codes, benchmark):
    fp = KarpRabinFingerprinter(dna_codes)
    windows = benchmark(lambda: fp.all_windows(8))
    assert len(windows) == len(dna_codes) - 7


def test_bench_kr_pattern_fingerprint(dna_codes, benchmark):
    fp = KarpRabinFingerprinter(dna_codes)
    pattern = dna_codes[50:58]
    key = benchmark(lambda: fp.of_codes(pattern))
    assert key == fp.fragment(50, 8)


def test_bench_wavelet_rank(dna_codes, benchmark):
    wt = WaveletTree(dna_codes[:5_000], sigma=4)

    def run():
        total = 0
        for i in range(0, 5_000, 50):
            total += wt.rank(2, i)
        return total

    assert benchmark(run) >= 0


def test_bench_fm_count(benchmark):
    rng = np.random.default_rng(1)
    codes = rng.integers(0, 4, size=5_000, dtype=np.int64)
    fm = FmIndex(codes)
    pattern = codes[200:208]
    count = benchmark(lambda: fm.count(pattern))
    assert count >= 1
