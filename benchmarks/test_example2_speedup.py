"""Example 2: the headline query-time speedup on genomic data.

The paper's Example 2: querying frequent DNA patterns through the USI
hash table is orders of magnitude faster than the suffix-array +
prefix-sums approach, while the index is barely larger.  At our scale
the occurrence counts (and hence the gap) are thousands of times
smaller, but the direction and the size parity must reproduce.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import Bsl1NoCache
from repro.core.usi import UsiIndex
from repro.eval.harness import average_query_seconds
from repro.eval.reporting import format_table

from benchmarks.conftest import save_report


def test_example2_frequent_pattern_speedup(hum_bundle, benchmark):
    bundle = hum_bundle
    ws = bundle.ws
    # Frequent query pool: the top-(n/50) substrings, as in Example 2.
    pool = [
        ws.codes[m.position : m.position + m.length].astype(np.int64)
        for m in bundle.oracle.top_k(bundle.n // 50)
    ]
    rng = np.random.default_rng(0)
    queries = [pool[int(i)] for i in rng.integers(0, len(pool), size=2_000)]

    index = UsiIndex.build(ws, k=bundle.n // 50)
    baseline = Bsl1NoCache(ws)

    def run():
        usi_seconds = average_query_seconds(index.query, queries)
        bsl_seconds = average_query_seconds(baseline.query, queries)
        return usi_seconds, bsl_seconds

    usi_seconds, bsl_seconds = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = bsl_seconds / max(usi_seconds, 1e-12)
    size_ratio = index.nbytes() / baseline.nbytes()

    save_report(
        "example2_speedup",
        format_table(
            ["method", "avg query (us)", "index size (KiB)"],
            [
                ("USI top-K", round(usi_seconds * 1e6, 2), index.nbytes() // 1024),
                ("SA + PSW", round(bsl_seconds * 1e6, 2), baseline.nbytes() // 1024),
            ],
            title=(
                f"Example 2 (analogue): {speedup:.1f}x query speedup, "
                f"index {size_ratio:.3f}x the baseline size"
            ),
        ),
    )

    # Answers agree exactly.
    for query in queries[:50]:
        assert abs(index.query(query) - baseline.query(query)) < 1e-6
    # Shape: clear speedup (paper: ~140x at 2.9e9 letters; the gap
    # scales with occurrence counts, so expect >= 4x at 1e4 letters)
    # with near-identical index size (paper: +1.3%).
    assert speedup >= 4.0
    assert size_ratio <= 1.25
