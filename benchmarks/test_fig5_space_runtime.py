"""Fig. 5: peak memory and runtime of the four miners (ET, AT, TT, SH).

Regenerates: (a, b) peak memory vs n, (c, d) peak memory vs s,
(e, f) runtime vs K, (g, h) runtime vs n, (i, j) runtime vs s — on XML
and HUM, as in the paper.  Expected shapes: ET and AT memory grow
linearly with n with AT substantially below ET; TT/SH memory flat in n
(O(K)); ET faster than AT; AT memory and time fall as s grows.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.approximate import ApproximateTopK
from repro.core.exact_topk import exact_top_k
from repro.core.topk_oracle import TopKOracle
from repro.datasets.registry import DATASETS
from repro.eval.harness import run_miner
from repro.eval.reporting import format_table
from repro.streaming.substring_hk import SubstringHK
from repro.streaming.topk_trie import TopKTrie
from repro.suffix.suffix_array import SuffixArray

from benchmarks.conftest import save_report


def _measure_all(ws, k, s):
    """(name -> MinerRun) for the four miners on one configuration."""
    runs = {
        "ET": run_miner("ET", lambda: exact_top_k(ws, k)),
        "AT": run_miner("AT", lambda: ApproximateTopK(ws, k=k, s=s).mine()),
        "TT": run_miner("TT", lambda: TopKTrie(ws, k=k).mine()),
        "SH": run_miner("SH", lambda: SubstringHK(ws, k=k, seed=0).mine()),
    }
    return runs


@pytest.mark.parametrize("dataset", ["XML", "HUM"])
def test_fig5_space_and_runtime_vs_n(bundles, benchmark, dataset):
    """Figs 5a-b (space) and 5g-h (runtime): scaling with n."""
    spec = DATASETS[dataset]

    # K is held fixed across the n sweep (the paper's protocol: the
    # dataset's default K), so TT/SH space stays O(K)-flat while the
    # index-based miners grow with n.
    k = max(10, spec.default_k(10_000))

    def sweep():
        rows = []
        for n in (2_500, 5_000, 10_000):
            ws = spec.make(n, seed=0)
            runs = _measure_all(ws, k, spec.default_s)
            rows.append(
                (
                    n,
                    *(round(runs[m].seconds, 3) for m in ("ET", "AT", "TT", "SH")),
                    *(runs[m].peak_bytes // 1024 for m in ("ET", "AT", "TT", "SH")),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_report(
        f"fig5_vs_n_{dataset.lower()}",
        format_table(
            ["n", "ET s", "AT s", "TT s", "SH s",
             "ET KiB", "AT KiB", "TT KiB", "SH KiB"],
            rows,
            title=f"Fig 5 (analogue): runtime and peak memory vs n on {dataset}",
        ),
    )
    # Memory scaling: ET and AT grow with n; AT stays below ET.
    et_mem = [r[5] for r in rows]
    at_mem = [r[6] for r in rows]
    assert et_mem[-1] > et_mem[0]
    assert at_mem[-1] < et_mem[-1]
    # TT memory roughly flat in n at fixed K (O(K) space).
    tt_mem = [r[7] for r in rows]
    assert tt_mem[-1] <= 2.5 * max(tt_mem[0], 1) + 256
    # Runtime scaling: every miner grows with n; ET faster than AT.
    et_time = [r[1] for r in rows]
    at_time = [r[2] for r in rows]
    assert et_time[-1] < at_time[-1]


@pytest.mark.parametrize("dataset", ["XML", "HUM"])
def test_fig5_runtime_vs_k(bundles, benchmark, dataset):
    """Figs 5e-f: runtime vs K (small for all but SH)."""
    bundle = bundles[dataset]

    def sweep():
        rows = []
        base_k = max(20, bundle.default_k)
        for factor in (0.5, 1.0, 2.0, 4.0):
            k = max(5, int(base_k * factor))
            runs = _measure_all(bundle.ws, k, bundle.spec.default_s)
            rows.append(
                (k, *(round(runs[m].seconds, 3) for m in ("ET", "AT", "TT", "SH")))
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_report(
        f"fig5_runtime_vs_k_{dataset.lower()}",
        format_table(
            ["K", "ET s", "AT s", "TT s", "SH s"], rows,
            title=f"Fig 5e/f (analogue): runtime vs K on {dataset}",
        ),
    )
    # SH's work (z) grows with K much faster than ET's.
    sh_growth = rows[-1][4] / max(rows[0][4], 1e-9)
    et_growth = rows[-1][1] / max(rows[0][1], 1e-9)
    assert sh_growth >= et_growth * 0.8  # SH never scales better
    # ET stays cheap across the sweep (K term is additive).
    assert rows[-1][1] < 5 * max(rows[0][1], 1e-3)


def test_fig5_space_runtime_vs_s(bundles, benchmark):
    """Figs 5c-d, 5i-j: AT's space falls and work shifts as s grows."""
    bundle = bundles["HUM"]
    k = max(20, bundle.default_k)

    def sweep():
        rows = []
        for s in (2, 4, 8, 16, 32):
            miner = ApproximateTopK(bundle.ws, k=k, s=s)
            run = run_miner(f"AT s={s}", miner.mine)
            rows.append(
                (
                    s,
                    round(run.seconds, 3),
                    run.peak_bytes // 1024,
                    miner.stats.peak_auxiliary_bytes // 1024,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_report(
        "fig5_at_vs_s",
        format_table(
            ["s", "seconds", "peak KiB (traced)", "aux KiB (analytic)"], rows,
            title="Fig 5c-d/i-j (analogue): AT space and runtime vs s on HUM",
        ),
    )
    aux = [r[3] for r in rows]
    assert aux[-1] < aux[0]  # the Section-VI space guarantee O(n/s + K)
    traced = [r[2] for r in rows]
    assert traced[-1] <= traced[0]
