"""Fig. 6: USI (UET/UAT) vs the four baselines.

Regenerates: (a-e) average query time vs K on W1, (f-j) average query
time vs p on W2,p, (k-p) index size vs K and vs n, (q-t) construction
time vs K and vs n.  Expected shapes: UET/UAT clearly faster than
BSL1-4 on frequent-heavy workloads, improving with K and p; index
sizes within a few percent of each other (SA + PSW dominate);
baselines constructed faster; everything ~linear in n.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import Bsl1NoCache, Bsl2LruCache, Bsl3TopKSeen, Bsl4SketchTopKSeen
from repro.core.usi import UsiIndex
from repro.datasets.registry import DATASETS
from repro.datasets.workloads import build_w1, build_w2p
from repro.eval.harness import average_query_seconds, measure_call
from repro.eval.plotting import ascii_chart
from repro.eval.reporting import format_table

from benchmarks.conftest import save_report

#: Queries are scaled to keep the paper's queries-to-pool ratio
#: (~1.5-2 queries per distinct frequent pattern): with heavy repeats
#: at toy scale, the recency/frequency caches of BSL2-4 would amortise
#: everything, which is not the regime the paper evaluates.
def _num_queries(pool_size: int) -> int:
    return max(300, int(1.7 * pool_size))


def _build_all(ws, k, s):
    """UET, UAT, and the four baselines over one weighted string."""
    return {
        "UET": UsiIndex.build(ws, k=k, miner="exact"),
        "UAT": UsiIndex.build(ws, k=k, miner="approximate", s=s),
        "BSL1": Bsl1NoCache(ws),
        "BSL2": Bsl2LruCache(ws, capacity=k),
        "BSL3": Bsl3TopKSeen(ws, capacity=k),
        # The sketch is scaled with the cache capacity: BSL4's fixed
        # 2048x4 default is negligible at paper scale but would dwarf a
        # toy-scale index.
        "BSL4": Bsl4SketchTopKSeen(
            ws, capacity=k, sketch_width=max(256, 2 * k), sketch_depth=2
        ),
    }


METHODS = ("UET", "UAT", "BSL1", "BSL2", "BSL3", "BSL4")


@pytest.mark.parametrize("dataset", ["XML", "HUM"])
def test_fig6_query_time_vs_k(bundles, benchmark, dataset):
    """Figs 6a-6e: average W1 query time, sweeping K."""
    bundle = bundles[dataset]
    queries = build_w1(
        bundle.ws, bundle.oracle, _num_queries(bundle.n // 50),
        length_range=bundle.spec.query_length_range, seed=0,
    )

    def sweep():
        rows = []
        base_k = max(20, bundle.default_k)
        for factor in (0.5, 1.0, 2.0, 4.0):
            k = max(5, int(base_k * factor))
            indexes = _build_all(bundle.ws, k, bundle.spec.default_s)
            row = [k]
            for method in METHODS:
                index = indexes[method]
                # Best of three cold-cache passes: at tens of
                # microseconds per query, single-pass timings jitter.
                best = np.inf
                for _ in range(3):
                    reset = getattr(index, "reset_cache", None)
                    if reset is not None:
                        reset()
                    best = min(best, average_query_seconds(index.query, queries))
                row.append(round(best * 1e6, 1))
            rows.append(tuple(row))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    chart = ascii_chart(
        {
            method: [(row[0], row[1 + idx]) for row in rows]
            for idx, method in enumerate(METHODS)
        },
        title=f"query time (us) vs K on {dataset}", x_label="K", y_label="us",
    )
    save_report(
        f"fig6_query_vs_k_{dataset.lower()}",
        format_table(
            ["K"] + [f"{m} us" for m in METHODS], rows,
            title=f"Fig 6a-e (analogue): avg W1 query time vs K on {dataset}",
        )
        + "\n\n" + chart,
    )
    # UET and UAT beat every baseline from the default K up (a small
    # tolerance at the default point: at toy scale the per-query costs
    # are tens of microseconds and near-ties occur).
    for i, row in enumerate(rows[1:], start=1):
        k, uet, uat, bsl1, bsl2, bsl3, bsl4 = row
        best_baseline = min(bsl1, bsl2, bsl3, bsl4)
        slack = 1.1 if i == 1 else 1.0
        assert uet < best_baseline * slack, row
        assert uat < best_baseline * 1.25, row
    # UET's query time falls (or stays flat) as K grows.
    assert rows[-1][1] <= rows[0][1] * 1.2


@pytest.mark.parametrize("dataset", ["XML", "HUM"])
def test_fig6_query_time_vs_p(bundles, benchmark, dataset):
    """Figs 6f-6j: average W2,p query time, sweeping p."""
    bundle = bundles[dataset]
    k = max(20, bundle.default_k)
    indexes = _build_all(bundle.ws, k, bundle.spec.default_s)

    def sweep():
        rows = []
        for p in (20, 40, 60, 80):
            queries = build_w2p(
                bundle.ws, bundle.oracle, _num_queries(bundle.n // 100), p=p,
                length_range=bundle.spec.query_length_range, seed=p,
            )
            row = [p]
            for method in METHODS:
                index = indexes[method]
                # Each (method, p) point is measured with a cold cache
                # and the best of three passes (reduces timer jitter at
                # microsecond scale); every pass starts cold, exactly
                # like a fresh workload run.
                best = np.inf
                for _ in range(3):
                    reset = getattr(index, "reset_cache", None)
                    if reset is not None:
                        reset()
                    best = min(best, average_query_seconds(index.query, queries))
                row.append(round(best * 1e6, 1))
            rows.append(tuple(row))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_report(
        f"fig6_query_vs_p_{dataset.lower()}",
        format_table(
            ["p %"] + [f"{m} us" for m in METHODS], rows,
            title=f"Fig 6f-j (analogue): avg W2,p query time vs p on {dataset}",
        ),
    )
    for row in rows:
        p, uet, uat, bsl1, bsl2, bsl3, bsl4 = row
        assert uet < min(bsl1, bsl2, bsl3, bsl4) * 1.1, row
    # Our indexes get faster as p grows; BSL1 does not benefit.
    assert rows[-1][1] < rows[0][1] * 1.1
    assert rows[-1][3] > rows[-1][1]


@pytest.mark.parametrize("dataset", ["XML", "HUM", "ADV"])
def test_fig6_index_size_vs_k(bundles, benchmark, dataset):
    """Figs 6k-6m: index sizes are dominated by SA + PSW (similar)."""
    bundle = bundles[dataset]

    def sweep():
        rows = []
        base_k = max(20, bundle.default_k)
        for factor in (0.5, 1.0, 2.0, 4.0):
            k = max(5, int(base_k * factor))
            indexes = _build_all(bundle.ws, k, bundle.spec.default_s)
            rows.append(
                (k, *(indexes[m].nbytes() // 1024 for m in METHODS))
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_report(
        f"fig6_size_vs_k_{dataset.lower()}",
        format_table(
            ["K"] + [f"{m} KiB" for m in METHODS], rows,
            title=f"Fig 6k-m (analogue): index size vs K on {dataset}",
        ),
    )
    for row in rows:
        sizes = np.asarray(row[1:], dtype=np.float64)
        # All six indexes within ~30% of each other (paper: within 4%
        # at billion-letter scale where SA dominates even more).
        assert sizes.max() <= 1.3 * sizes.min(), row
        # BSL1 (no hash table) is the smallest or tied.
        assert row[3] <= min(row[1], row[2]) + 1


def test_fig6_index_size_vs_n(bundles, benchmark):
    """Figs 6n-6p: index size scales linearly with n."""
    spec = DATASETS["XML"]
    k = max(10, spec.default_k(10_000))

    def sweep():
        rows = []
        for n in (2_500, 5_000, 10_000):
            ws = spec.make(n, seed=0)
            indexes = _build_all(ws, k, spec.default_s)
            rows.append((n, *(indexes[m].nbytes() // 1024 for m in METHODS)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_report(
        "fig6_size_vs_n",
        format_table(
            ["n"] + [f"{m} KiB" for m in METHODS], rows,
            title="Fig 6n-p (analogue): index size vs n on XML",
        ),
    )
    for column in range(1, 7):
        sizes = [row[column] for row in rows]
        ratio = sizes[-1] / max(sizes[0], 1)
        assert 2.0 <= ratio <= 8.0  # ~linear for a 4x n growth


@pytest.mark.parametrize("dataset", ["XML", "HUM"])
def test_fig6_construction_time_vs_k(bundles, benchmark, dataset):
    """Figs 6q-6r: baselines build faster; UET faster than UAT."""
    bundle = bundles[dataset]

    def sweep():
        rows = []
        base_k = max(20, bundle.default_k)
        for factor in (1.0, 4.0):
            k = max(5, int(base_k * factor))
            row = [k]
            for method, build in (
                ("UET", lambda: UsiIndex.build(bundle.ws, k=k, miner="exact")),
                ("UAT", lambda: UsiIndex.build(
                    bundle.ws, k=k, miner="approximate", s=bundle.spec.default_s)),
                ("BSL1", lambda: Bsl1NoCache(bundle.ws)),
                ("BSL2", lambda: Bsl2LruCache(bundle.ws, capacity=k)),
                ("BSL3", lambda: Bsl3TopKSeen(bundle.ws, capacity=k)),
                ("BSL4", lambda: Bsl4SketchTopKSeen(bundle.ws, capacity=k)),
            ):
                _, seconds, _ = measure_call(build, trace_memory=False)
                row.append(round(seconds, 3))
            rows.append(tuple(row))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_report(
        f"fig6_construction_vs_k_{dataset.lower()}",
        format_table(
            ["K"] + [f"{m} s" for m in METHODS], rows,
            title=f"Fig 6q-r (analogue): construction time vs K on {dataset}",
        ),
    )
    for row in rows:
        k, uet, uat, bsl1, bsl2, bsl3, bsl4 = row
        assert uet <= uat * 1.2, row          # UET builds faster than UAT
        assert max(bsl1, bsl2, bsl3, bsl4) <= uat, row  # baselines simpler


def test_fig6_construction_time_vs_n(bundles, benchmark):
    """Figs 6s-6t: construction scales near-linearly with n."""
    spec = DATASETS["HUM"]
    k = max(10, spec.default_k(10_000))

    def sweep():
        rows = []
        for n in (2_500, 5_000, 10_000):
            ws = spec.make(n, seed=0)
            _, uet_s, _ = measure_call(
                lambda: UsiIndex.build(ws, k=k, miner="exact"), trace_memory=False
            )
            _, uat_s, _ = measure_call(
                lambda: UsiIndex.build(ws, k=k, miner="approximate",
                                       s=spec.default_s),
                trace_memory=False,
            )
            _, bsl_s, _ = measure_call(lambda: Bsl1NoCache(ws), trace_memory=False)
            rows.append((n, round(uet_s, 3), round(uat_s, 3), round(bsl_s, 3)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_report(
        "fig6_construction_vs_n",
        format_table(
            ["n", "UET s", "UAT s", "BSL1 s"], rows,
            title="Fig 6s-t (analogue): construction time vs n on HUM",
        ),
    )
    for column, bound in ((1, 10), (2, 16), (3, 10)):
        times = [row[column] for row in rows]
        # Near-linear: a 4x n growth costs at most ~bound x (UAT gets
        # extra slack: its LCE binary searches deepen on DNA as n grows).
        assert times[-1] <= bound * max(times[0], 1e-3)
    for row in rows:
        assert row[3] <= row[1] * 1.2 + 0.05  # BSL1 never clearly slower
