"""Table II: dataset properties and default parameters.

Regenerates the dataset-property table (length, alphabet, default K and
s) for the five scaled analogues, alongside the paper-scale originals.
"""

from __future__ import annotations

from repro.datasets.registry import DATASETS, table2_rows
from repro.eval.reporting import format_table

from benchmarks.conftest import BENCH_N, save_report


def test_table2_properties(bundles, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for name, bundle in bundles.items():
        spec = DATASETS[name]
        sigma = len(set(bundle.ws.codes.tolist()))
        rows.append(
            (
                name,
                bundle.n,
                sigma,
                bundle.default_k,
                spec.default_s,
                f"{spec.paper_n:.2g}",
                spec.paper_sigma,
            )
        )
        # Scaled sigma must stay at (or below, for tiny n) the original.
        assert sigma <= spec.paper_sigma
        assert bundle.default_k >= 1

    report = format_table(
        ["dataset", "n", "sigma", "K", "s", "paper n", "paper sigma"],
        rows,
        title="Table II (analogue): dataset properties and default parameters",
    )
    save_report("table2_datasets", report)


def test_table2_generation_benchmark(benchmark):
    """Dataset generation itself is cheap (not a bottleneck)."""
    spec = DATASETS["HUM"]
    ws = benchmark(lambda: spec.make(BENCH_N["HUM"], seed=1))
    assert ws.length == BENCH_N["HUM"]
