"""Fig. 4: NDCG of the miners and the accuracy/NDCG-vs-s trade-off.

Regenerates: (a-c) AT accuracy vs s on XML/HUM/ECOLI, (d) NDCG of
AT/TT/SH on all datasets, (e) NDCG vs s.  Expected shape: AT's NDCG
near-optimal (>= 0.99 in the paper), TT/SH clearly below, IOT showing
the largest gap; accuracy and NDCG decrease only mildly with s.
"""

from __future__ import annotations

import numpy as np

from repro.core.approximate import ApproximateTopK
from repro.eval.metrics import evaluate_miner
from repro.eval.reporting import format_table
from repro.streaming.substring_hk import SubstringHK
from repro.streaming.topk_trie import TopKTrie

from benchmarks.conftest import save_report


def test_fig4_accuracy_vs_s(bundles, benchmark):
    """Figs 4a-4c: AT accuracy vs s on XML, HUM, ECOLI."""

    def sweep():
        rows = []
        for name in ("XML", "HUM", "ECOLI"):
            bundle = bundles[name]
            k = max(20, bundle.default_k)
            for s in (2, 4, 8, 16, 32):
                scores = evaluate_miner(
                    ApproximateTopK(bundle.ws, k=k, s=s).mine(), bundle.index, k,
                    oracle=bundle.oracle,
                )
                rows.append((name, s, round(scores.accuracy_percent, 1)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_report(
        "fig4_accuracy_vs_s",
        format_table(["dataset", "s", "AT accuracy %"], rows,
                     title="Fig 4a-c (analogue): AT accuracy vs s"),
    )
    for name in ("XML", "HUM", "ECOLI"):
        series = [r[2] for r in rows if r[0] == name]
        # Small s is at least as good as the largest s (mild decay).
        assert series[0] >= series[-1] - 10.0
        assert max(series) >= 60.0


def test_fig4_ndcg_all_datasets(bundles, benchmark):
    """Fig 4d: NDCG of AT/TT/SH on every dataset."""

    def sweep():
        rows = []
        for name, bundle in bundles.items():
            k = max(20, bundle.default_k)
            at = evaluate_miner(
                ApproximateTopK(bundle.ws, k=k, s=bundle.spec.default_s).mine(),
                bundle.index, k, oracle=bundle.oracle,
            ).ndcg
            tt = evaluate_miner(
                TopKTrie(bundle.ws, k=k).mine(), bundle.index, k,
                oracle=bundle.oracle,
            ).ndcg
            sh = evaluate_miner(
                SubstringHK(bundle.ws, k=k, seed=0).mine(), bundle.index, k,
                oracle=bundle.oracle,
            ).ndcg
            rows.append((name, round(at, 4), round(tt, 4), round(sh, 4)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_report(
        "fig4_ndcg_all_datasets",
        format_table(["dataset", "AT", "TT", "SH"], rows,
                     title="Fig 4d (analogue): NDCG per dataset"),
    )
    at_values = [r[1] for r in rows]
    assert min(at_values) >= 0.99  # the paper reports >= 0.9993
    for name, at, tt, sh in rows:
        # Near-ties happen at this scale; AT must never be clearly worse.
        assert at >= tt - 0.005, name
        assert at >= sh - 0.005, name
    # Note: the paper's IOT NDCG gap (>70% vs SH) relies on the real
    # trace's skew; our IOT analogue has a deliberately *flat* top-K
    # frequency spectrum (that is what plants the long repeats), so
    # linear-gain NDCG barely discriminates there — the discrimination
    # shows up in the Accuracy measure instead (Fig 3 benchmarks).
    assert np.mean(at_values) >= np.mean([r[2] for r in rows])


def test_fig4_ndcg_vs_s(bundles, benchmark):
    """Fig 4e: NDCG vs s on ECOLI — decreases very slightly."""
    bundle = bundles["ECOLI"]
    k = max(20, bundle.default_k)

    def sweep():
        rows = []
        for s in (2, 4, 8, 16, 32):
            ndcg = evaluate_miner(
                ApproximateTopK(bundle.ws, k=k, s=s).mine(), bundle.index, k,
                oracle=bundle.oracle,
            ).ndcg
            rows.append((s, round(ndcg, 5)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_report(
        "fig4_ndcg_vs_s",
        format_table(["s", "NDCG"], rows,
                     title="Fig 4e (analogue): AT NDCG vs s on ECOLI"),
    )
    assert min(r[1] for r in rows) >= 0.99  # paper: at least 0.993
