"""Construction-pipeline micro-benchmark (the PR-4 acceptance gate).

Measures the end-to-end vectorised build path — ``repro.build(...,
backend="usi")`` — against the *seed* construction pipeline on a
1M-char synthetic text, and asserts the vectorisation holds a >= 5x
end-to-end speedup.  The seed path is composed here from the retained
reference implementations, stage by stage, exactly as the pre-PR code
ran them:

* Kasai's Python-loop LCP walk (still the cross-check fallback);
* the Python generator enumeration of suffix-tree nodes behind the
  Section-V oracle (``TopKOracle(..., enumeration="python")``);
* the per-position Python loop building the Karp-Rabin prefix tables;
* the per-substring Python expansion of top-K triplets and the
  per-item fragment hashing of the sliding-window table phase.

Also emits ``results/BENCH_build.json`` (machine-readable per-stage
seconds for both paths) under ``REPRO_WRITE_RESULTS=1``, which CI
uploads as the build-speed trajectory artifact; the speedup assertion
makes the CI job fail if the floor regresses.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

import repro
from repro.core.topk_oracle import TopKOracle
from repro.hashing.karp_rabin import _MOD1, _MOD2, KarpRabinFingerprinter
from repro.strings.weighted import WeightedString
from repro.suffix.doubling import suffix_array_doubling
from repro.suffix.lcp import lcp_array_kasai
from repro.suffix.sais import suffix_array_sais, suffix_array_sais_list
from repro.suffix.suffix_array import SuffixArray
from repro.utility.functions import make_global_utility, make_local_utility

BENCH_N = 1_000_000
BENCH_K = 2_000
SPEEDUP_FLOOR = 5.0


def _legacy_kr_tables(codes: np.ndarray, base: int, mod: int) -> tuple:
    """The seed fingerprinter table build: one Python mulmod per position."""
    n = len(codes)
    prefix = np.empty(n + 1, dtype=np.int64)
    powers = np.empty(n + 1, dtype=np.int64)
    prefix[0] = 0
    powers[0] = 1
    h, p = 0, 1
    for i, c in enumerate((codes + 1).tolist()):
        h = (h * base + c) % mod
        prefix[i + 1] = h
        p = (p * base) % mod
        powers[i + 1] = p
    return prefix, powers


def _legacy_table(mined, fingerprinter, psw, utility) -> dict:
    """The seed Phase-(ii) table build: per-item fragment hashing + isin."""
    by_length: dict[int, list] = {}
    for m in mined:
        by_length.setdefault(m.length, []).append(m)
    table: dict[int, float] = {}
    for length, group in sorted(by_length.items()):
        wanted = np.asarray(
            sorted({fingerprinter.fragment(m.position, m.length) for m in group}),
            dtype=np.int64,
        )
        window_fps = fingerprinter.all_windows(length)
        mask = np.isin(window_fps, wanted)
        positions = np.flatnonzero(mask)
        hits = window_fps[positions]
        locals_ = psw.local_utilities(positions, length)
        unique, inverse = np.unique(hits, return_inverse=True)
        aggregated = utility.grouped_aggregate(inverse, locals_, len(unique))
        for key, value in zip(unique.tolist(), aggregated.tolist()):
            table[int(key)] = float(value)
    return table


def _legacy_build(ws: WeightedString, k: int) -> dict:
    """Run the seed construction pipeline, returning per-stage seconds."""
    stages: dict[str, float] = {}
    t0 = time.perf_counter()
    sa = suffix_array_doubling(ws.codes)
    stages["suffix-array"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    lcp = lcp_array_kasai(ws.codes, sa)
    stages["lcp"] = time.perf_counter() - t0

    index = SuffixArray.from_parts(np.asarray(ws.codes, dtype=np.int64), sa, lcp)
    t0 = time.perf_counter()
    oracle = TopKOracle(index, enumeration="python")
    tuning = oracle.tune_by_k(k)
    mined = oracle.top_k(k)
    stages["mining"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    fp = KarpRabinFingerprinter.__new__(KarpRabinFingerprinter)
    reference = KarpRabinFingerprinter(np.asarray(ws.codes)[:1])
    fp._base1, fp._base2 = reference.bases
    fp._n = ws.length
    raw = np.asarray(ws.codes, dtype=np.int64)
    fp._prefix1, fp._pow1 = _legacy_kr_tables(raw, fp._base1, _MOD1)
    fp._prefix2, fp._pow2 = _legacy_kr_tables(raw, fp._base2, _MOD2)
    stages["fingerprint"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    psw = make_local_utility("sum", ws.utilities)
    table = _legacy_table(mined, fp, psw, make_global_utility("sum"))
    stages["table"] = time.perf_counter() - t0

    stages["total"] = sum(stages.values())
    stages["tau_k"] = tuning.tau
    stages["hash_entries"] = len(table)
    return stages


def test_build_pipeline_vectorised_speedup():
    """1M chars, K=2000: vectorised build >= 5x the seed pipeline."""
    rng = np.random.default_rng(11)
    codes = rng.integers(0, 4, size=BENCH_N, dtype=np.int64)
    ws = WeightedString(codes, rng.uniform(0.5, 1.5, size=BENCH_N))

    legacy = _legacy_build(ws, BENCH_K)

    # Best-of-2 on the fast side: scheduler noise only ever inflates a
    # single run, and this gate must hold on loaded CI runners.  (The
    # slow legacy side runs once — inflation there only relaxes the
    # gate.)
    new_total = float("inf")
    for _ in range(2):
        t0 = time.perf_counter()
        index = repro.build(ws, backend="usi", k=BENCH_K)
        new_total = min(new_total, time.perf_counter() - t0)
    report = index.inner.report

    # Same structure out of both pipelines: the tuning figures are
    # tie-insensitive, so they must agree exactly.
    assert report.tau_k == legacy["tau_k"]
    assert report.k == BENCH_K
    assert report.lcp_source == "ranks"

    speedup = legacy["total"] / new_total
    assert speedup >= SPEEDUP_FLOOR, (
        f"vectorised build is only {speedup:.1f}x the seed pipeline "
        f"({new_total:.2f} s vs {legacy['total']:.2f} s)"
    )

    # The O(n) guarantee path: numpy SA-IS must stay in the same
    # league as doubling (the seed list implementation was ~100x off);
    # measured on a slice to keep the reference run affordable.
    sais_codes = codes[:300_000]
    sais_numpy_seconds = float("inf")
    for _ in range(2):
        t0 = time.perf_counter()
        sa_numpy = suffix_array_sais(sais_codes)
        sais_numpy_seconds = min(sais_numpy_seconds, time.perf_counter() - t0)
    t0 = time.perf_counter()
    sa_list = suffix_array_sais_list(sais_codes)
    sais_list_seconds = time.perf_counter() - t0
    assert np.array_equal(sa_numpy, sa_list)
    assert sais_numpy_seconds < sais_list_seconds

    bench = {
        "n": BENCH_N,
        "k": BENCH_K,
        "legacy_seconds": {
            stage: round(value, 6)
            for stage, value in legacy.items()
            if stage not in ("tau_k", "hash_entries")
        },
        "vectorised_seconds": {
            stage: round(value, 6)
            for stage, value in report.stage_seconds().items()
        },
        "vectorised_total_seconds": round(new_total, 6),
        "speedup": round(speedup, 2),
        "speedup_floor": SPEEDUP_FLOOR,
        "sais_numpy_seconds_300k": round(sais_numpy_seconds, 6),
        "sais_list_seconds_300k": round(sais_list_seconds, 6),
        "sais_speedup_300k": round(sais_list_seconds / sais_numpy_seconds, 2),
    }
    print("\nBENCH_build: " + json.dumps(bench, indent=2))
    if os.environ.get("REPRO_WRITE_RESULTS") == "1":
        results = pathlib.Path(__file__).resolve().parent.parent / "results"
        results.mkdir(exist_ok=True)
        (results / "BENCH_build.json").write_text(json.dumps(bench, indent=2) + "\n")
