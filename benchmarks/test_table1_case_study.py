"""Table I + Section II case study: ADV utility vs frequency mining.

Regenerates: Table Ia (top-4 substrings by global utility, length >= 3),
Table Ib (top-4 frequent substrings and their utility ranks), and the
bulk-query timing headline ("187,883 patterns in 3.4 seconds" at paper
scale).
"""

from __future__ import annotations

import pytest

from repro.core.exact_topk import exact_top_k
from repro.core.mining import top_utility_substrings
from repro.core.usi import UsiIndex
from repro.eval.reporting import format_table

from benchmarks.conftest import save_report


@pytest.fixture(scope="module")
def adv(bundles):
    return bundles["ADV"]


@pytest.fixture(scope="module")
def adv_index(adv):
    return UsiIndex.build(adv.ws, k=adv.default_k)


def test_table1_utility_vs_frequency(adv, adv_index, benchmark):
    """Top-by-utility and top-by-frequency substrings must diverge."""
    ws = adv.ws
    by_utility = benchmark.pedantic(
        lambda: top_utility_substrings(ws, top=4, min_length=3, max_length=40),
        rounds=1, iterations=1,
    )
    utility_rows = [
        (ws.fragment_text(u.position, u.length), rank + 1, round(u.utility, 1))
        for rank, u in enumerate(by_utility)
    ]

    frequent = [m for m in exact_top_k(ws, 4000) if m.length >= 3][:4]
    # Rank each frequent substring within the utility ordering.
    all_ranked = top_utility_substrings(ws, top=5000, min_length=3, max_length=40)
    rank_of = {
        ws.fragment_text(u.position, u.length): rank + 1
        for rank, u in enumerate(all_ranked)
    }
    freq_rows = []
    for m in frequent:
        text = ws.fragment_text(m.position, m.length)
        freq_rows.append(
            (text, m.frequency, rank_of.get(text, ">5000"),
             round(adv_index.query(text), 1))
        )

    report = (
        format_table(["substring", "U-rank", "utility"], utility_rows,
                     title="Table Ia (analogue): top-4 by global utility, len>=3")
        + "\n\n"
        + format_table(["substring", "freq", "U-rank", "utility"], freq_rows,
                       title="Table Ib (analogue): top-4 frequent, len>=3")
    )
    save_report("table1_case_study", report)

    # The paper's observation: the most frequent substrings are NOT the
    # top-utility ones (the most frequent ranked 21st by utility there).
    top_utility_texts = {row[0] for row in utility_rows}
    top_freq_texts = {row[0] for row in freq_rows}
    assert top_utility_texts != top_freq_texts
    best_by_freq_rank = freq_rows[0][2]
    assert best_by_freq_rank == ">5000" or best_by_freq_rank > 1


def test_case_study_bulk_query_headline(adv, adv_index, benchmark):
    """All length-[3,20] substring patterns answered fast (3.4s headline)."""
    ws = adv.ws
    text = ws.text()
    patterns = [
        text[start : start + length]
        for length in range(3, 21)
        for start in range(0, ws.length - length, 53)
    ]

    def run():
        total = 0.0
        for pattern in patterns:
            total += adv_index.query(pattern)
        return total

    total = benchmark(run)
    assert total != 0.0
    save_report(
        "table1_bulk_query",
        f"case study bulk querying: {len(patterns)} patterns per round "
        f"(see pytest-benchmark table for the timing)",
    )
