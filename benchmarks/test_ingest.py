"""Live-ingest benchmark: appends/sec + query p95 during compaction.

Measures the two numbers the ingest subsystem trades between:

* **sustained ingest throughput** — WAL-less in-memory appends into
  the active memtable (documents/sec);
* **query tail latency while a compaction is in flight** — a
  :class:`~repro.service.metrics.LatencyRecorder` times queries
  through a :class:`~repro.service.engine.QueryEngine` while a
  background thread seals, rebuilds, and installs a shard.  The whole
  point of the LSM design is that the p95 stays flat through the
  rebuild (queries are served by the frozen memtable, never blocked
  by the build), and answers stay exact across the generation swap.

Emits ``results/BENCH_ingest.json`` under ``REPRO_WRITE_RESULTS=1``
(uploaded as a CI artifact).  Floors are deliberately loose — they
gate gross regressions (an accidental lock around the shard build, a
quadratic append path), not CI scheduler noise.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time

import numpy as np
import pytest

from repro.ingest import LiveIndex
from repro.service.engine import QueryEngine
from repro.service.metrics import LatencyRecorder
from repro.strings.alphabet import Alphabet
from repro.strings.collection import (
    CollectionUsiIndex,
    WeightedStringCollection,
)
from repro.strings.weighted import WeightedString

ALPHABET = Alphabet("acgt")
DOC_LENGTH = 64
INGEST_DOCS = 1_500
COMPACTION_DOCS = 600
K = 256

#: Loose CI-safe floors: interpreted-Python appends into a dynamic
#: index run well above 1k docs/sec on any modern machine, and a
#: frozen-memtable query must never stall behind a shard build.
APPENDS_PER_SEC_FLOOR = 200.0
P95_DURING_COMPACTION_MS_CEILING = 250.0


def _documents(count: int, seed: int) -> list[str]:
    rng = np.random.default_rng(seed)
    letters = np.array(list("acgt"))
    return [
        "".join(letters[rng.integers(0, 4, size=DOC_LENGTH)])
        for _ in range(count)
    ]


def test_ingest_throughput_and_query_p95_during_compaction():
    docs = _documents(INGEST_DOCS, seed=7)

    # ------------------------------------------------------------------
    # Phase 1 — sustained append throughput into the active memtable.
    # ------------------------------------------------------------------
    live = LiveIndex(ALPHABET, k=K, seal_chars=1 << 30)
    t0 = time.perf_counter()
    for doc in docs:
        live.append_document(doc)
    ingest_seconds = time.perf_counter() - t0
    appends_per_sec = INGEST_DOCS / ingest_seconds
    assert appends_per_sec >= APPENDS_PER_SEC_FLOOR, (
        f"ingest throughput collapsed: {appends_per_sec:.0f} docs/s"
    )

    # ------------------------------------------------------------------
    # Phase 2 — query p95 while a compaction builds in the background.
    # ------------------------------------------------------------------
    recorder = LatencyRecorder(capacity=1 << 14)
    engine = QueryEngine(live, cache_size=0, metrics=recorder)
    patterns = [doc[:6] for doc in docs[:64]]

    sealed = live.seal()
    assert sealed is not None
    build_seconds = {}
    installed = threading.Event()

    def compact():
        t = time.perf_counter()
        shard = live.build_shard(sealed)
        build_seconds["build"] = time.perf_counter() - t
        live.install_shard(sealed, shard)
        installed.set()

    worker = threading.Thread(target=compact)
    generation_before = live.generation
    worker.start()
    in_flight_queries = 0
    while not installed.is_set():
        for pattern in patterns[:8]:
            engine.query(pattern)
            in_flight_queries += 1
    worker.join()
    assert live.generation == generation_before + 1
    assert live.shard_count == 1
    assert in_flight_queries > 0  # the build never blocked the readers

    during = recorder.snapshot()
    assert during.p95_ms <= P95_DURING_COMPACTION_MS_CEILING, (
        f"query p95 spiked to {during.p95_ms:.1f} ms during compaction"
    )

    # ------------------------------------------------------------------
    # Phase 3 — appends straddle the compaction; answers stay exact.
    # ------------------------------------------------------------------
    tail_docs = _documents(COMPACTION_DOCS, seed=11)
    for doc in tail_docs:
        live.append_document(doc)
    reference = CollectionUsiIndex(
        WeightedStringCollection(
            [
                WeightedString.uniform(doc, alphabet=ALPHABET)
                for doc in docs + tail_docs
            ]
        ),
        k=K,
    )
    for pattern in patterns[:16]:
        assert live.query(pattern) == pytest.approx(
            reference.query(pattern), abs=1e-6
        ), pattern

    bench = {
        "doc_length": DOC_LENGTH,
        "ingest_docs": INGEST_DOCS,
        "k": K,
        "appends_per_sec": round(appends_per_sec, 1),
        "appends_per_sec_floor": APPENDS_PER_SEC_FLOOR,
        "ingest_seconds": round(ingest_seconds, 4),
        "shard_build_seconds": round(build_seconds["build"], 4),
        "queries_during_compaction": in_flight_queries,
        "query_p50_during_compaction_ms": round(during.p50_ms, 4),
        "query_p95_during_compaction_ms": round(during.p95_ms, 4),
        "query_p95_ceiling_ms": P95_DURING_COMPACTION_MS_CEILING,
        "query_p99_during_compaction_ms": round(during.p99_ms, 4),
    }
    print("\nBENCH_ingest: " + json.dumps(bench, indent=2))
    if os.environ.get("REPRO_WRITE_RESULTS") == "1":
        results = pathlib.Path(__file__).resolve().parent.parent / "results"
        results.mkdir(exist_ok=True)
        (results / "BENCH_ingest.json").write_text(
            json.dumps(bench, indent=2) + "\n"
        )
