"""The scenario regression matrix as a CI gate.

Drives every registered scenario x workload through all compatible
backends via :func:`repro.eval.harness.run_scenario_matrix` and fails
on any exact-answer divergence.  Two sizes:

* default (PR path, and plain ``pytest`` runs, which collect
  ``benchmarks/``): a small-n subset — fast, still spanning every
  scenario kind, workload family, and backend;
* ``REPRO_SCENARIOS_FULL=1`` (the scheduled CI job): the pinned sizes,
  which additionally re-verify every committed baseline digest.

Emits ``results/BENCH_scenarios.json`` (per-cell QPS, build seconds,
index bytes) under ``REPRO_WRITE_RESULTS=1``; CI uploads it as the
scenarios artifact.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.eval.harness import run_scenario_matrix

FULL = os.environ.get("REPRO_SCENARIOS_FULL") == "1"


def test_scenario_matrix_gate():
    if FULL:
        payload = run_scenario_matrix(num_queries=60)
    else:
        payload = run_scenario_matrix(n=1_200, num_queries=40)

    assert payload["rows"], "matrix produced no cells"
    assert len(payload["scenarios"]) >= 5
    assert len(payload["backends"]) >= 6
    assert len(payload["workloads"]) >= 4

    # The gate: zero exactness mismatches across the whole matrix.
    assert payload["mismatches"] == [], payload["mismatches"]

    # At pinned sizes the committed baselines must also hold.
    if FULL:
        drifted = {
            name: status
            for name, status in payload["baseline_checks"].items()
            if not isinstance(status, str)
        }
        assert not drifted, drifted

    mode = "full (pinned sizes)" if FULL else "small-n subset"
    bench = {
        "mode": mode,
        "n_override": payload["n_override"],
        "num_queries": payload["num_queries"],
        "scenarios": payload["scenarios"],
        "workloads": payload["workloads"],
        "backends": payload["backends"],
        "cells": len(payload["rows"]),
        "mismatches": len(payload["mismatches"]),
        "baseline_checks": payload["baseline_checks"],
        "rows": payload["rows"],
    }
    print(f"\nBENCH_scenarios ({mode}): {len(payload['rows'])} cells, "
          f"{len(payload['backends'])} backends, 0 mismatches")
    if os.environ.get("REPRO_WRITE_RESULTS") == "1":
        results = pathlib.Path(__file__).resolve().parent.parent / "results"
        results.mkdir(exist_ok=True)
        (results / "BENCH_scenarios.json").write_text(
            json.dumps(bench, indent=2) + "\n"
        )
