"""Setup shim: enables `setup.py develop` where the `wheel` package is absent."""
from setuptools import setup

setup()
