"""Query-path stage profiling: the serving twin of ``usi build --profile``.

A :class:`QueryProfile` accumulates wall-clock seconds per pipeline
stage (``encode`` / ``cache`` / ``locate`` / ``gather`` / ``merge``).
The active profile travels through a :class:`contextvars.ContextVar`,
so the layers that do the work — :meth:`SuffixArray.interval_batch`,
:meth:`TextKernel.batch_utilities`, :meth:`UsiIndex.query_batch`,
:meth:`ShardedUsiIndex.query_batch` — record into it without any
signature changes, and record nothing (one cheap ``ContextVar.get``)
when no profile is active.

``ContextVar`` gives per-thread isolation for free: two server threads
profiling concurrently never see each other's stages.  When profiles
nest (a :class:`~repro.service.engine.QueryEngine` keeps a cumulative
profile while ``usi query --profile`` holds an outer one), the inner
:func:`profiled` block folds its stages into the enclosing profile on
exit, so both observers see the work.
"""

from __future__ import annotations

import contextlib
import time
from contextvars import ContextVar

#: Canonical stage order for reports; unknown stages render after these.
STAGE_ORDER = ("encode", "cache", "locate", "gather", "merge")

_ACTIVE: "ContextVar[QueryProfile | None]" = ContextVar(
    "repro_query_profile", default=None
)


class QueryProfile:
    """Cumulative per-stage seconds plus pattern/call counters."""

    __slots__ = ("stages", "patterns", "calls")

    def __init__(self) -> None:
        self.stages: dict[str, float] = {}
        self.patterns = 0
        self.calls = 0

    def add(self, stage: str, seconds: float) -> None:
        self.stages[stage] = self.stages.get(stage, 0.0) + float(seconds)

    def account(self, patterns: int) -> None:
        """Count one profiled call answering ``patterns`` patterns."""
        self.patterns += int(patterns)
        self.calls += 1

    def merge(self, other: "QueryProfile") -> None:
        for stage, seconds in other.stages.items():
            self.add(stage, seconds)
        self.patterns += other.patterns
        self.calls += other.calls

    def total(self) -> float:
        return sum(self.stages.values())

    def ordered_stages(self) -> "list[tuple[str, float]]":
        """Stages in canonical order, then any extras in insertion order."""
        known = [(s, self.stages[s]) for s in STAGE_ORDER if s in self.stages]
        extra = [
            (s, v) for s, v in self.stages.items() if s not in STAGE_ORDER
        ]
        return known + extra

    def as_dict(self) -> dict:
        return {
            "stages": {s: v for s, v in self.ordered_stages()},
            "patterns": self.patterns,
            "calls": self.calls,
        }


def current_profile() -> "QueryProfile | None":
    """The profile active in this context, or ``None``."""
    return _ACTIVE.get()


def record_stage(stage: str, seconds: float) -> None:
    """Add ``seconds`` to ``stage`` of the active profile, if any."""
    profile = _ACTIVE.get()
    if profile is not None:
        profile.add(stage, seconds)


@contextlib.contextmanager
def stage(name: str):
    """Time a block into the active profile (no-op when none is active)."""
    profile = _ACTIVE.get()
    if profile is None:
        yield
        return
    t0 = time.perf_counter()
    try:
        yield
    finally:
        profile.add(name, time.perf_counter() - t0)


@contextlib.contextmanager
def profiled(profile: QueryProfile, *, propagate: bool = True):
    """Make ``profile`` the active profile for the block.

    With ``propagate`` (the default), stages recorded inside are folded
    into the previously active profile on exit as well, so an outer
    profiler still observes work done under an inner one.
    """
    outer = _ACTIVE.get()
    token = _ACTIVE.set(profile)
    try:
        yield profile
    finally:
        _ACTIVE.reset(token)
        if propagate and outer is not None:
            for name, seconds in profile.stages.items():
                outer.add(name, seconds)


def merge_profile_dicts(parts: "list[dict]") -> dict:
    """Sum ``QueryProfile.as_dict`` payloads (the ``/stats`` aggregate)."""
    stages: dict[str, float] = {}
    patterns = 0
    calls = 0
    for part in parts:
        if not isinstance(part, dict):
            continue
        for name, seconds in (part.get("stages") or {}).items():
            stages[name] = stages.get(name, 0.0) + float(seconds)
        patterns += int(part.get("patterns", 0))
        calls += int(part.get("calls", 0))
    ordered = [(s, stages[s]) for s in STAGE_ORDER if s in stages]
    ordered += [(s, v) for s, v in stages.items() if s not in STAGE_ORDER]
    return {
        "stages": {s: v for s, v in ordered},
        "patterns": patterns,
        "calls": calls,
    }
