"""The multi-process worker pool behind the asyncio gateway.

``WorkerPool`` spawns N :func:`~repro.gateway.worker.worker_main`
processes, each connected to the gateway by one socketpair, and hands
them out one round-trip at a time through an ``asyncio.Queue`` of idle
workers.  A query checks a worker out, sends one frame, awaits one
frame, and checks the worker back in — so a worker never multiplexes
requests and the pool's concurrency is exactly its worker count.

Failure handling
----------------
Every round-trip runs under ``call_timeout``: a worker that neither
answers nor dies (stuck syscall, runaway query) is killed at the
deadline and the call fails with :class:`WorkerHung` — the caller is
never parked on a hung process.  A worker that dies mid-round-trip
(killed, OOM, bug) is detected by the broken socket and the call fails
with :class:`WorkerCrashed`.  Either way the slot is reclaimed: a
supervisor task respawns a replacement in the background, pacing
consecutive spawn failures with capped exponential backoff so a
poisoned index file cannot fork-bomb the host.

The pool also owns a :class:`~repro.service.resilience.CircuitBreaker`
fed by call outcomes.  The pool itself never refuses a call — the
gateway consults ``pool.breaker`` to decide when to stop dispatching
and degrade (inline serving or load shedding) while the supervisor
nurses the pool back to health.

``round_trips`` counts every dispatched worker call; the coalescing
tests use it to prove that N duplicate in-flight requests cost exactly
one round-trip.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import socket
from pathlib import Path

from repro import faults
from repro.errors import ParameterError, ReproError
from repro.gateway import ipc
from repro.gateway.worker import worker_main
from repro.service.resilience import Backoff, CircuitBreaker

# Socket objects must survive the trip through Process args on spawn
# platforms; fork inherits them for free.
multiprocessing.allow_connection_pickling()


class WorkerCrashed(ReproError):
    """A worker process died or broke protocol mid-round-trip."""


class WorkerHung(WorkerCrashed):
    """A worker exceeded the per-call deadline and was killed."""


class _Worker:
    __slots__ = ("wid", "process", "sock", "reader", "writer", "dispatches")

    def __init__(self, wid, process, sock, reader, writer):
        self.wid = wid
        self.process = process
        self.sock = sock
        self.reader = reader
        self.writer = writer
        self.dispatches = 0


def _spawn_context():
    methods = multiprocessing.get_all_start_methods()
    # fork is the cheap path (no interpreter boot per worker) and the
    # norm on Linux; everywhere else the socketpair travels via the
    # connection-pickling machinery enabled above.
    return multiprocessing.get_context("fork" if "fork" in methods else None)


class WorkerPool:
    """N query workers over the same index files, checked out per call.

    Parameters
    ----------
    paths:
        ``{index name: file path}`` — every worker opens every path.
    workers:
        Pool size; also the pool's maximum concurrency.
    cache_size:
        Per-worker, per-index LRU result-cache entries.
    mmap:
        Open the files memory-mapped (v3 bundles reopen zero-copy, so
        N workers cost about one index's RAM).
    call_timeout:
        Per-round-trip deadline in seconds; ``None`` disables it
        (a hung worker then hangs its caller — tests only).
    breaker:
        Injectable :class:`CircuitBreaker`; a default one is built
        otherwise.
    respawn_backoff:
        Injectable :class:`Backoff` pacing consecutive respawn
        failures.
    """

    def __init__(
        self,
        paths: "dict[str, str | Path]",
        workers: int = 2,
        cache_size: int = 4096,
        mmap: bool = True,
        spawn_timeout: float = 120.0,
        call_timeout: "float | None" = 30.0,
        breaker: "CircuitBreaker | None" = None,
        respawn_backoff: "Backoff | None" = None,
    ) -> None:
        if workers <= 0:
            raise ParameterError("worker pool size must be positive")
        if not paths:
            raise ParameterError("a worker pool needs at least one index path")
        self._paths = {name: str(path) for name, path in paths.items()}
        self._workers = int(workers)
        self._cache_size = int(cache_size)
        self._mmap = bool(mmap)
        self._spawn_timeout = float(spawn_timeout)
        self._call_timeout = (
            None if call_timeout is None else float(call_timeout)
        )
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self._respawn_backoff = (
            respawn_backoff
            if respawn_backoff is not None
            else Backoff(base=0.05, max_delay=2.0)
        )
        self._context = _spawn_context()
        self._idle: "asyncio.Queue[_Worker]" = asyncio.Queue()
        self._alive: list[_Worker] = []
        self._respawn_tasks: "set[asyncio.Task]" = set()
        self._spawn_failures = 0  # consecutive, gates respawn backoff
        self._next_wid = 0
        self._next_frame_id = 0
        self._closed = False
        self.round_trips = 0
        self.restarts = 0
        self.timeouts = 0

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def alive_workers(self) -> int:
        return len(self._alive)

    @property
    def call_timeout(self) -> "float | None":
        return self._call_timeout

    @property
    def index_names(self) -> list[str]:
        return sorted(self._paths)

    async def start(self) -> "WorkerPool":
        for _ in range(self._workers):
            worker = await self._spawn_one()
            self._idle.put_nowait(worker)
        return self

    async def _spawn_one(self) -> _Worker:
        self._next_wid += 1
        wid = self._next_wid
        faults.fire("pool.spawn")
        parent_sock, child_sock = socket.socketpair()
        process = self._context.Process(
            target=worker_main,
            args=(child_sock, self._paths, self._cache_size, self._mmap),
            name=f"usi-gateway-worker-{wid}",
            daemon=True,
        )
        process.start()
        child_sock.close()
        try:
            reader, writer = await asyncio.open_connection(sock=parent_sock)
            ready = await asyncio.wait_for(
                ipc.recv_frame_async(reader), self._spawn_timeout
            )
        except BaseException as error:  # including cancellation mid-spawn
            parent_sock.close()
            process.terminate()
            if isinstance(error, asyncio.CancelledError):
                raise
            raise WorkerCrashed(f"worker {wid} failed to start: {error}") from error
        if not ready or ready.get("op") != "ready" or not ready.get("ok"):
            detail = (ready or {}).get("error", "no ready frame")
            writer.close()
            process.terminate()
            raise WorkerCrashed(f"worker {wid} failed to open indexes: {detail}")
        worker = _Worker(wid, process, parent_sock, reader, writer)
        self._alive.append(worker)
        return worker

    async def call(self, message: dict) -> dict:
        """One worker round-trip under the per-call deadline.

        Raises :class:`WorkerHung` when the deadline fires (the worker
        is killed and its slot respawned) and :class:`WorkerCrashed`
        when the worker dies mid-call; both count against the breaker.
        """
        if self._closed:
            raise WorkerCrashed("the worker pool is stopped")
        worker = await self._idle.get()
        if worker is None or self._closed:  # stop() woke us with a sentinel
            self._idle.put_nowait(None)
            raise WorkerCrashed("the worker pool is stopped")
        self._next_frame_id += 1
        frame = dict(message)
        frame["id"] = self._next_frame_id
        try:
            if self._call_timeout is not None:
                response = await asyncio.wait_for(
                    self._round_trip(worker, frame), self._call_timeout
                )
            else:
                response = await self._round_trip(worker, frame)
        except (asyncio.TimeoutError, TimeoutError) as error:
            self.timeouts += 1
            self.breaker.record_failure()
            self._replace(worker)
            raise WorkerHung(
                f"worker {worker.wid} exceeded the {self._call_timeout}s "
                "deadline and was killed"
            ) from error
        except (ipc.FrameError, OSError, asyncio.IncompleteReadError) as error:
            self.breaker.record_failure()
            self._replace(worker)
            raise WorkerCrashed(f"worker {worker.wid} died: {error}") from error
        except asyncio.CancelledError:
            # The caller's own deadline fired mid-round-trip.  The
            # worker may still send the orphaned reply, which would
            # desync the next call's frame stream — replace it.
            self._replace(worker)
            raise
        worker.dispatches += 1
        self.round_trips += 1
        self.breaker.record_success()
        self._idle.put_nowait(worker)
        return response

    @staticmethod
    async def _round_trip(worker: _Worker, frame: dict) -> dict:
        await ipc.send_frame_async(worker.writer, frame)
        response = await ipc.recv_frame_async(worker.reader)
        if response is None:
            raise ipc.FrameError("worker hung up mid-call")
        return response

    async def broadcast(self, message: dict) -> list[dict]:
        """One round-trip against every live worker (e.g. ``stats``).

        A worker lost mid-broadcast is replaced (not re-queued) and
        simply missing from the responses; the broadcast never raises
        for one bad worker.
        """
        checked_out: list[_Worker] = []
        lost: list[_Worker] = []
        responses: list[dict] = []
        try:
            for _ in range(len(self._alive)):
                if self._idle.empty() and checked_out:
                    break  # remaining workers are busy with real traffic
                worker = await self._idle.get()
                if worker is None:  # pool stopping
                    self._idle.put_nowait(None)
                    break
                checked_out.append(worker)
            for worker in checked_out:
                self._next_frame_id += 1
                frame = dict(message)
                frame["id"] = self._next_frame_id
                try:
                    if self._call_timeout is not None:
                        response = await asyncio.wait_for(
                            self._round_trip(worker, frame), self._call_timeout
                        )
                    else:
                        response = await self._round_trip(worker, frame)
                except (
                    asyncio.TimeoutError,
                    TimeoutError,
                    ipc.FrameError,
                    OSError,
                    asyncio.IncompleteReadError,
                ):
                    lost.append(worker)
                    self._replace(worker)
                    continue
                response["worker"] = worker.wid
                responses.append(response)
        finally:
            for worker in checked_out:
                if worker not in lost:
                    self._idle.put_nowait(worker)
        return responses

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    def _replace(self, worker: _Worker) -> None:
        """Discard a lost worker and schedule a supervised respawn.

        Idempotent per worker: a worker that is simultaneously hung
        (deadline path) and detected dead (socket path) is discarded
        once and respawned once — the double-checkout bug this guards
        against used to wedge ``stop()``.
        """
        if not self._discard(worker):
            return
        if self._closed:
            return
        task = asyncio.get_running_loop().create_task(self._respawn())
        self._respawn_tasks.add(task)
        task.add_done_callback(self._respawn_tasks.discard)

    def _discard(self, worker: _Worker) -> bool:
        """Tear one worker down; False when another path already did."""
        if worker not in self._alive:
            return False
        self._alive.remove(worker)
        try:
            worker.writer.close()
        except Exception:  # pragma: no cover - already torn down
            pass
        if worker.process.is_alive():
            worker.process.kill()
        return True

    async def _respawn(self) -> None:
        """Refill one worker slot, backing off while spawns keep failing."""
        while not self._closed:
            if self._spawn_failures:
                try:
                    await asyncio.sleep(self._respawn_backoff.next_delay())
                except asyncio.CancelledError:
                    return
            if self._closed:
                return
            try:
                worker = await self._spawn_one()
            except asyncio.CancelledError:
                return
            except WorkerCrashed:
                self._spawn_failures += 1
                self.breaker.record_failure()
                continue
            self._spawn_failures = 0
            self._respawn_backoff.reset()
            self.restarts += 1
            self._idle.put_nowait(worker)
            return

    async def stop(self, timeout: float = 5.0) -> None:
        """Close every control socket (workers exit on EOF) and reap.

        Bounded by *timeout* overall: pending respawns are cancelled,
        workers that ignore the EOF are killed, and nothing is awaited
        past the deadline.
        """
        if self._closed:
            return
        self._closed = True
        for task in list(self._respawn_tasks):
            task.cancel()
        # Wake any caller parked on the idle queue; the sentinel is
        # re-queued by each woken caller so none stays stuck.
        self._idle.put_nowait(None)
        for worker in self._alive:
            try:
                worker.writer.close()
            except Exception:  # pragma: no cover - already torn down
                pass
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        for worker in list(self._alive):
            remaining = max(deadline - loop.time(), 0.0)
            await loop.run_in_executor(None, worker.process.join, remaining)
            if worker.process.is_alive():
                # SIGKILL cannot be ignored; the short join just reaps.
                worker.process.kill()
                await loop.run_in_executor(None, worker.process.join, 0.5)
        self._alive.clear()
        while not self._idle.empty():
            self._idle.get_nowait()

    def stats(self) -> dict:
        return {
            "workers": self._workers,
            "alive": len(self._alive),
            "round_trips": self.round_trips,
            "restarts": self.restarts,
            "timeouts": self.timeouts,
            "call_timeout": self._call_timeout,
            "respawns_pending": len(self._respawn_tasks),
            "spawn_failures": self._spawn_failures,
            "breaker": self.breaker.stats(),
            "dispatches": {
                str(worker.wid): worker.dispatches for worker in self._alive
            },
        }
