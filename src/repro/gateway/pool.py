"""The multi-process worker pool behind the asyncio gateway.

``WorkerPool`` spawns N :func:`~repro.gateway.worker.worker_main`
processes, each connected to the gateway by one socketpair, and hands
them out one round-trip at a time through an ``asyncio.Queue`` of idle
workers.  A query checks a worker out, sends one frame, awaits one
frame, and checks the worker back in — so a worker never multiplexes
requests and the pool's concurrency is exactly its worker count.

A worker that dies mid-round-trip (killed, OOM, bug) is detected by
the broken socket, replaced by a fresh spawn, and the in-flight call
fails with :class:`WorkerCrashed` — one crash costs one request, not
the pool.

``round_trips`` counts every dispatched worker call; the coalescing
tests use it to prove that N duplicate in-flight requests cost exactly
one round-trip.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import socket
from pathlib import Path

from repro.errors import ParameterError, ReproError
from repro.gateway import ipc
from repro.gateway.worker import worker_main

# Socket objects must survive the trip through Process args on spawn
# platforms; fork inherits them for free.
multiprocessing.allow_connection_pickling()


class WorkerCrashed(ReproError):
    """A worker process died or broke protocol mid-round-trip."""


class _Worker:
    __slots__ = ("wid", "process", "sock", "reader", "writer", "dispatches")

    def __init__(self, wid, process, sock, reader, writer):
        self.wid = wid
        self.process = process
        self.sock = sock
        self.reader = reader
        self.writer = writer
        self.dispatches = 0


def _spawn_context():
    methods = multiprocessing.get_all_start_methods()
    # fork is the cheap path (no interpreter boot per worker) and the
    # norm on Linux; everywhere else the socketpair travels via the
    # connection-pickling machinery enabled above.
    return multiprocessing.get_context("fork" if "fork" in methods else None)


class WorkerPool:
    """N query workers over the same index files, checked out per call.

    Parameters
    ----------
    paths:
        ``{index name: file path}`` — every worker opens every path.
    workers:
        Pool size; also the pool's maximum concurrency.
    cache_size:
        Per-worker, per-index LRU result-cache entries.
    mmap:
        Open the files memory-mapped (v3 bundles reopen zero-copy, so
        N workers cost about one index's RAM).
    """

    def __init__(
        self,
        paths: "dict[str, str | Path]",
        workers: int = 2,
        cache_size: int = 4096,
        mmap: bool = True,
        spawn_timeout: float = 120.0,
    ) -> None:
        if workers <= 0:
            raise ParameterError("worker pool size must be positive")
        if not paths:
            raise ParameterError("a worker pool needs at least one index path")
        self._paths = {name: str(path) for name, path in paths.items()}
        self._workers = int(workers)
        self._cache_size = int(cache_size)
        self._mmap = bool(mmap)
        self._spawn_timeout = float(spawn_timeout)
        self._context = _spawn_context()
        self._idle: "asyncio.Queue[_Worker]" = asyncio.Queue()
        self._alive: list[_Worker] = []
        self._next_wid = 0
        self._next_frame_id = 0
        self._closed = False
        self.round_trips = 0
        self.restarts = 0

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def index_names(self) -> list[str]:
        return sorted(self._paths)

    async def start(self) -> "WorkerPool":
        for _ in range(self._workers):
            worker = await self._spawn_one()
            self._idle.put_nowait(worker)
        return self

    async def _spawn_one(self) -> _Worker:
        self._next_wid += 1
        wid = self._next_wid
        parent_sock, child_sock = socket.socketpair()
        process = self._context.Process(
            target=worker_main,
            args=(child_sock, self._paths, self._cache_size, self._mmap),
            name=f"usi-gateway-worker-{wid}",
            daemon=True,
        )
        process.start()
        child_sock.close()
        try:
            reader, writer = await asyncio.open_connection(sock=parent_sock)
            ready = await asyncio.wait_for(
                ipc.recv_frame_async(reader), self._spawn_timeout
            )
        except Exception as error:
            parent_sock.close()
            process.terminate()
            raise WorkerCrashed(f"worker {wid} failed to start: {error}") from error
        if not ready or ready.get("op") != "ready" or not ready.get("ok"):
            detail = (ready or {}).get("error", "no ready frame")
            writer.close()
            process.terminate()
            raise WorkerCrashed(f"worker {wid} failed to open indexes: {detail}")
        worker = _Worker(wid, process, parent_sock, reader, writer)
        self._alive.append(worker)
        return worker

    async def call(self, message: dict) -> dict:
        """One worker round-trip; raises :class:`WorkerCrashed` on loss."""
        if self._closed:
            raise WorkerCrashed("the worker pool is stopped")
        worker = await self._idle.get()
        if worker is None or self._closed:  # stop() woke us with a sentinel
            self._idle.put_nowait(None)
            raise WorkerCrashed("the worker pool is stopped")
        self._next_frame_id += 1
        frame = dict(message)
        frame["id"] = self._next_frame_id
        try:
            await ipc.send_frame_async(worker.writer, frame)
            response = await ipc.recv_frame_async(worker.reader)
            if response is None:
                raise ipc.FrameError("worker hung up mid-call")
        except (ipc.FrameError, OSError, asyncio.IncompleteReadError) as error:
            await self._discard_and_replace(worker)
            raise WorkerCrashed(f"worker {worker.wid} died: {error}") from error
        worker.dispatches += 1
        self.round_trips += 1
        self._idle.put_nowait(worker)
        return response

    async def broadcast(self, message: dict) -> list[dict]:
        """One round-trip against every live worker (e.g. ``stats``)."""
        checked_out: list[_Worker] = []
        responses: list[dict] = []
        try:
            for _ in range(len(self._alive)):
                if self._idle.empty() and checked_out:
                    break  # remaining workers are busy with real traffic
                worker = await self._idle.get()
                if worker is None:  # pool stopping
                    self._idle.put_nowait(None)
                    break
                checked_out.append(worker)
            for worker in checked_out:
                self._next_frame_id += 1
                frame = dict(message)
                frame["id"] = self._next_frame_id
                await ipc.send_frame_async(worker.writer, frame)
                response = await ipc.recv_frame_async(worker.reader)
                if response is not None:
                    response["worker"] = worker.wid
                    responses.append(response)
        finally:
            for worker in checked_out:
                self._idle.put_nowait(worker)
        return responses

    async def _discard_and_replace(self, worker: _Worker) -> None:
        if worker in self._alive:
            self._alive.remove(worker)
        worker.writer.close()
        if worker.process.is_alive():
            worker.process.terminate()
        if self._closed:
            return
        try:
            replacement = await self._spawn_one()
        except WorkerCrashed:
            return  # pool shrinks; remaining workers keep serving
        self.restarts += 1
        self._idle.put_nowait(replacement)

    async def stop(self, timeout: float = 5.0) -> None:
        """Close every control socket (workers exit on EOF) and reap."""
        if self._closed:
            return
        self._closed = True
        # Wake any caller parked on the idle queue; the sentinel is
        # re-queued by each woken caller so none stays stuck.
        self._idle.put_nowait(None)
        for worker in self._alive:
            try:
                worker.writer.close()
            except Exception:  # pragma: no cover - already torn down
                pass
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        for worker in self._alive:
            remaining = max(deadline - loop.time(), 0.0)
            await loop.run_in_executor(None, worker.process.join, remaining)
            if worker.process.is_alive():
                worker.process.terminate()
        self._alive.clear()
        while not self._idle.empty():
            self._idle.get_nowait()

    def stats(self) -> dict:
        return {
            "workers": self._workers,
            "alive": len(self._alive),
            "round_trips": self.round_trips,
            "restarts": self.restarts,
            "dispatches": {
                str(worker.wid): worker.dispatches for worker in self._alive
            },
        }
