"""Request coalescing: identical in-flight queries share one answer.

Real traffic is skewed — when a pattern goes hot, many clients ask for
it in the same few milliseconds, before any cache can admit the first
answer.  The coalescer keys every in-flight query request by
``(index, count-flag, patterns)`` — pattern identity via the engine's
own :func:`~repro.service.engine._cache_key`, so the notion of "same
pattern" is exactly the cache's — and makes every duplicate await the
*leader's* future instead of dispatching its own worker round-trip.

Entries are removed the moment the leader resolves them, so coalescing
never serves a stale answer: it only ever merges requests that were
genuinely concurrent.  On shutdown :meth:`abort_all` fails every
pending future, so coalesced waiters get a clean 503 — never a hung
``await``.
"""

from __future__ import annotations

import asyncio
from typing import Sequence

from repro.service.engine import _cache_key


def coalesce_key(index: str, patterns: Sequence, count: bool) -> tuple:
    """The identity of one query request, cache-key compatible."""
    return (index, bool(count), tuple(_cache_key(p) for p in patterns))


class Coalescer:
    """In-flight request deduplication around the worker pool."""

    def __init__(self) -> None:
        self._inflight: "dict[tuple, asyncio.Future]" = {}
        self._leaders = 0
        self._followers = 0

    def lead_or_follow(self, key: tuple) -> "tuple[asyncio.Future, bool]":
        """``(future, is_leader)`` for *key*.

        The first caller for a key becomes the leader (fresh future,
        must later :meth:`resolve` or :meth:`fail` it); every caller
        arriving while that future is pending just awaits it.
        """
        future = self._inflight.get(key)
        if future is not None:
            self._followers += 1
            return future, False
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        self._leaders += 1
        return future, True

    def resolve(self, key: tuple, result) -> None:
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_result(result)

    def fail(self, key: tuple, error: BaseException) -> None:
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_exception(error)

    def abort_all(self, error: BaseException) -> int:
        """Fail every pending entry (shutdown); returns how many."""
        aborted = 0
        for key in list(self._inflight):
            future = self._inflight.pop(key)
            if not future.done():
                future.set_exception(error)
                # A leader-only entry has no awaiter left to retrieve
                # the exception; mark it consumed to keep the loop's
                # "exception was never retrieved" warning out of logs.
                future.add_done_callback(lambda f: f.exception())
                aborted += 1
        return aborted

    @property
    def pending(self) -> int:
        return len(self._inflight)

    def stats(self) -> dict:
        return {
            "leaders": self._leaders,
            "followers": self._followers,
            "pending": len(self._inflight),
        }
