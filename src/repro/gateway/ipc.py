"""Length-prefixed JSON framing between the gateway and its workers.

One frame = a 4-byte big-endian length followed by a UTF-8 JSON
payload.  The worker side is synchronous (a blocking socket loop in a
plain process); the gateway side is asyncio (``StreamReader`` /
``StreamWriter`` over the same socketpair).  Both directions use the
same wire shape, so the protocol lives in one module.

JSON — not pickle — on purpose: a worker answers with plain floats and
strings, the parent re-serialises them for HTTP, and because
``json.dumps`` emits shortest-round-trip float literals the utilities
that cross the pipe stay bit-identical to a single-process engine's.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct

from repro import faults

_HEADER = struct.Struct("!I")

#: Upper bound on one frame; matches the HTTP body bound upstream so a
#: legal request can never produce an illegal frame.
MAX_FRAME_BYTES = 32 * 1024 * 1024


class FrameError(Exception):
    """A malformed or oversized frame (protocol violation, not EOF)."""


def _encode(message: dict) -> bytes:
    payload = json.dumps(message, separators=(",", ":")).encode()
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(payload)} bytes exceeds the bound")
    return _HEADER.pack(len(payload)) + payload


# ----------------------------------------------------------------------
# Worker side: blocking socket I/O
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket, message: dict) -> None:
    # Chaos site: a "slow" fault here delays the worker's reply frame,
    # which the parent must absorb inside its per-call deadline.
    faults.fire("ipc.send")
    sock.sendall(_encode(message))


def recv_frame(sock: socket.socket) -> "dict | None":
    """One decoded frame, or ``None`` on a clean EOF between frames."""
    header = _recv_exact(sock, _HEADER.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {length} bytes exceeds the bound")
    payload = _recv_exact(sock, length, allow_eof=False)
    return json.loads(payload)


def _recv_exact(sock: socket.socket, count: int, allow_eof: bool) -> "bytes | None":
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if allow_eof and remaining == count:
                return None
            raise FrameError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ----------------------------------------------------------------------
# Gateway side: asyncio stream I/O
# ----------------------------------------------------------------------
async def send_frame_async(writer: asyncio.StreamWriter, message: dict) -> None:
    writer.write(_encode(message))
    await writer.drain()


async def recv_frame_async(reader: asyncio.StreamReader) -> "dict | None":
    """One decoded frame, or ``None`` when the worker hung up cleanly."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise FrameError("connection closed mid-frame") from error
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {length} bytes exceeds the bound")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise FrameError("connection closed mid-frame") from error
    return json.loads(payload)
