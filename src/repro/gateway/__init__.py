"""The asyncio serving gateway: one mmap'd kernel, many processes.

The threaded :class:`~repro.service.server.UsiServer` is the
correctness-first front-end; this package is the scale-first one:

* :class:`AsyncGateway` — a stdlib ``asyncio`` JSON-over-HTTP
  front-end speaking exactly the threaded server's protocol
  (``POST /query``, ``POST /ingest``, ``GET /indexes``,
  ``GET /stats``, ``GET /healthz``);
* :class:`WorkerPool` — N worker *processes*, each reopening the same
  v3 kernel bundle with ``mmap="r"`` (so N workers cost ~1x index
  RAM) and running the existing
  :class:`~repro.service.engine.QueryEngine`;
* :class:`AdmissionController` — a bounded admission queue that sheds
  load with JSON ``429`` + ``Retry-After`` plus per-index concurrency
  limits;
* :class:`Coalescer` — identical in-flight query requests collapse
  onto one worker round-trip.

``usi serve --async --workers N --max-queue M`` is the CLI door.
"""

from repro.gateway.admission import AdmissionController, OverloadError
from repro.gateway.coalesce import Coalescer
from repro.gateway.pool import WorkerCrashed, WorkerPool
from repro.gateway.server import AsyncGateway, GatewayHandle

__all__ = [
    "AdmissionController",
    "AsyncGateway",
    "Coalescer",
    "GatewayHandle",
    "OverloadError",
    "WorkerCrashed",
    "WorkerPool",
]
