"""Minimal HTTP/1.1 over asyncio streams for the gateway.

Just enough HTTP for the serving protocol — request line, headers,
``Content-Length`` bodies, keep-alive — with the same rejection
semantics as the threaded front-end: a POST without ``Content-Length``
is ``411``, a malformed or oversized one ``400``, and error responses
close the connection so an undrained body can never desync keep-alive.
"""

from __future__ import annotations

import asyncio
import json

from repro.service.requests import MAX_BODY_BYTES

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    411: "Length Required",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

_MAX_HEADER_BYTES = 16 * 1024
_MAX_HEADER_COUNT = 64


class HttpError(Exception):
    """An HTTP-level rejection carrying its status and headers."""

    def __init__(
        self, status: int, message: str, retry_after: "int | None" = None
    ) -> None:
        super().__init__(message)
        self.status = int(status)
        self.message = message
        self.retry_after = retry_after


class Request:
    __slots__ = ("method", "path", "headers", "body")

    def __init__(self, method: str, path: str, headers: dict, body: bytes) -> None:
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body

    @property
    def wants_close(self) -> bool:
        return self.headers.get("connection", "").lower() == "close"

    def json_object(self) -> dict:
        """The body as a JSON object (same 400s as the threaded server)."""
        try:
            payload = json.loads(self.body)
        except (json.JSONDecodeError, UnicodeDecodeError):
            raise HttpError(400, "request body is not valid JSON")
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")
        return payload


async def read_request(reader: asyncio.StreamReader) -> "Request | None":
    """Parse one request; ``None`` on a clean EOF between requests."""
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise HttpError(400, "truncated request line")
    except asyncio.LimitOverrunError:
        raise HttpError(400, "request line too long")
    if not line.strip():
        return None
    parts = line.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, "malformed request line")
    method, path = parts[0].upper(), parts[1]

    headers: dict[str, str] = {}
    header_bytes = 0
    while True:
        try:
            line = await reader.readuntil(b"\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise HttpError(400, "truncated headers")
        if line.strip() == b"":
            break
        header_bytes += len(line)
        if header_bytes > _MAX_HEADER_BYTES or len(headers) >= _MAX_HEADER_COUNT:
            raise HttpError(400, "headers too large")
        name, separator, value = line.decode("latin-1").partition(":")
        if not separator:
            raise HttpError(400, "malformed header")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if method in ("POST", "PUT"):
        raw_length = headers.get("content-length")
        if raw_length is None:
            raise HttpError(411, "Content-Length required on POST")
        try:
            length = int(raw_length)
        except ValueError:
            raise HttpError(400, "bad Content-Length")
        if length <= 0 or length > MAX_BODY_BYTES:
            raise HttpError(400, "request body required (JSON)")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "request body shorter than Content-Length")
    return Request(method, path, headers, body)


async def write_json(
    writer: asyncio.StreamWriter,
    status: int,
    payload: dict,
    keep_alive: bool = True,
    retry_after: "int | None" = None,
) -> None:
    body = json.dumps(payload).encode()
    reason = REASONS.get(status, "Unknown")
    head = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
    ]
    if retry_after is not None:
        head.append(f"Retry-After: {int(retry_after)}")
    if not keep_alive:
        head.append("Connection: close")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
    await writer.drain()
