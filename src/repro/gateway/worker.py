"""The worker process: one mmap'd kernel reopen + a QueryEngine loop.

Each worker is a plain OS process holding its own
:class:`~repro.service.engine.QueryEngine` per served index, opened
through :func:`repro.api.open_index` — with ``mmap=True`` a v3 kernel
bundle's substrate arrays stay memory-mapped read-only, so N workers
over one bundle share one copy of the index pages instead of
materialising N.

The loop is deliberately dumb: read one frame, answer it, repeat.  The
gateway checks a worker out of its pool for the duration of one
round-trip, so the worker never sees interleaved requests and needs no
internal concurrency.  A clean EOF on the control socket is the
shutdown signal (the pool closes its end); anything else the worker
answers with an error frame rather than dying, so one poisoned request
cannot take a worker slot down.
"""

from __future__ import annotations

import signal
import socket
import traceback

from repro import faults
from repro.gateway import ipc

#: Statuses a worker can attach to an error frame; the gateway maps
#: them straight onto HTTP responses.
BAD_REQUEST = 400
SERVER_ERROR = 500


def _open_engines(paths: dict, cache_size: int, mmap: bool) -> dict:
    from repro.api import open_index
    from repro.service.engine import QueryEngine

    engines = {}
    for name, path in paths.items():
        faults.fire("worker.open")
        index = open_index(path, mmap=mmap)
        engines[name] = QueryEngine(index, cache_size=cache_size)
    return engines


def _handle_query(engines: dict, request: dict) -> dict:
    name = request["index"]
    engine = engines.get(name)
    if engine is None:
        return {"ok": False, "status": 404, "error": f"unknown index {name!r}"}
    patterns = request["patterns"]
    if request.get("count"):
        if not engine.protocol.capabilities.count:
            return {
                "ok": False,
                "status": BAD_REQUEST,
                "error": (
                    f"index {name!r} (backend "
                    f"{engine.protocol.backend_name!r}) does not support counts"
                ),
            }
        utilities = engine.query_batch(patterns)
        counts = [engine.count(pattern) for pattern in patterns]
        return {"ok": True, "utilities": utilities, "counts": counts}
    return {"ok": True, "utilities": engine.query_batch(patterns)}


def _handle_stats(engines: dict) -> dict:
    return {"ok": True, "engines": {name: e.stats() for name, e in engines.items()}}


def worker_main(
    sock: socket.socket, paths: dict, cache_size: int, mmap: bool
) -> None:
    """The worker process entry point (target of ``WorkerPool`` spawn)."""
    # The parent coordinates shutdown by closing the socket; a SIGINT
    # aimed at the foreground process group must not kill workers
    # mid-drain.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    try:
        engines = _open_engines(paths, cache_size, mmap)
    except Exception as error:
        ipc.send_frame(
            sock, {"op": "ready", "ok": False, "error": f"{type(error).__name__}: {error}"}
        )
        sock.close()
        return
    ipc.send_frame(sock, {"op": "ready", "ok": True, "indexes": sorted(engines)})
    try:
        while True:
            request = ipc.recv_frame(sock)
            if request is None:  # parent closed its end: drain complete
                break
            # Chaos site: fires *outside* the per-request try so a
            # "hang" stalls the whole worker (deadline territory) and
            # a "crash" takes the process down, not just the request.
            faults.fire("worker.handle")
            response: dict
            try:
                op = request.get("op")
                if op == "query":
                    response = _handle_query(engines, request)
                elif op == "stats":
                    response = _handle_stats(engines)
                elif op == "ping":
                    response = {"ok": True}
                else:
                    response = {
                        "ok": False,
                        "status": BAD_REQUEST,
                        "error": f"unknown worker op {op!r}",
                    }
            except Exception:
                response = {
                    "ok": False,
                    "status": SERVER_ERROR,
                    "error": traceback.format_exc(limit=4),
                }
            response["id"] = request.get("id")
            ipc.send_frame(sock, response)
    except (ipc.FrameError, OSError):  # parent died or tore the socket
        pass
    finally:
        sock.close()
        for engine in engines.values():
            closer = getattr(engine.index, "close", None)
            if callable(closer):
                try:
                    closer()
                except Exception:  # pragma: no cover - best-effort cleanup
                    pass
