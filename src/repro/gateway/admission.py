"""Admission control: bounded queueing and per-index concurrency.

The gateway admits a query when the number of admitted-but-unfinished
requests is below ``max_queue``; past that it sheds load immediately
with :class:`OverloadError` (the handler turns it into a JSON ``429``
with ``Retry-After``), because queueing deeper than the pool can drain
only converts overload into timeout.  Admitted requests then wait on a
per-index semaphore, so one hot index cannot starve every worker slot
while a cold index's requests rot in the queue.

Coalesced followers never pass through admission — they cost no worker
round-trip, so shedding them would only multiply client retries.
"""

from __future__ import annotations

import asyncio

from repro.errors import ParameterError, ReproError


class OverloadError(ReproError):
    """The admission queue is full; clients should retry later."""

    def __init__(self, depth: int, max_queue: int, retry_after: int = 1) -> None:
        super().__init__(
            f"admission queue full ({depth}/{max_queue} in flight); retry later"
        )
        self.retry_after = int(retry_after)


class AdmissionController:
    """Bounded admission depth + per-index concurrency limits.

    Parameters
    ----------
    max_queue:
        Maximum admitted-but-unfinished requests (queued + running).
    per_index_limit:
        Maximum requests concurrently *running* against one index; the
        excess waits (admitted) on that index's semaphore.
    """

    def __init__(self, max_queue: int = 64, per_index_limit: int = 8) -> None:
        if max_queue <= 0:
            raise ParameterError("max_queue must be positive")
        if per_index_limit <= 0:
            raise ParameterError("per_index_limit must be positive")
        self.max_queue = int(max_queue)
        self.per_index_limit = int(per_index_limit)
        self._depth = 0
        self._peak_depth = 0
        self._admitted = 0
        self._rejected = 0
        self._semaphores: "dict[str, asyncio.Semaphore]" = {}

    @property
    def depth(self) -> int:
        """Admitted-but-unfinished requests right now."""
        return self._depth

    def slot(self, index: str) -> "_AdmissionSlot":
        """``async with controller.slot(name):`` — admit or raise 429.

        Admission (the 429 decision) happens synchronously in
        ``__aenter__`` *before* any await, so the depth accounting has
        no async race; only the per-index semaphore wait suspends.
        """
        return _AdmissionSlot(self, index)

    def _admit(self) -> None:
        if self._depth >= self.max_queue:
            self._rejected += 1
            raise OverloadError(self._depth, self.max_queue)
        self._depth += 1
        self._admitted += 1
        self._peak_depth = max(self._peak_depth, self._depth)

    def _release(self) -> None:
        self._depth -= 1

    def _semaphore(self, index: str) -> asyncio.Semaphore:
        semaphore = self._semaphores.get(index)
        if semaphore is None:
            semaphore = asyncio.Semaphore(self.per_index_limit)
            self._semaphores[index] = semaphore
        return semaphore

    def stats(self) -> dict:
        return {
            "max_queue": self.max_queue,
            "per_index_limit": self.per_index_limit,
            "depth": self._depth,
            "peak_depth": self._peak_depth,
            "admitted": self._admitted,
            "rejected": self._rejected,
        }


class _AdmissionSlot:
    def __init__(self, controller: AdmissionController, index: str) -> None:
        self._controller = controller
        self._index = index
        self._semaphore: "asyncio.Semaphore | None" = None

    async def __aenter__(self) -> "_AdmissionSlot":
        self._controller._admit()
        semaphore = self._controller._semaphore(self._index)
        try:
            await semaphore.acquire()
        except BaseException:
            self._controller._release()
            raise
        self._semaphore = semaphore
        return self

    async def __aexit__(self, *exc) -> None:
        if self._semaphore is not None:
            self._semaphore.release()
        self._controller._release()
