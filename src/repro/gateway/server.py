"""The asyncio gateway: acceptor → admission → coalescer → worker pool.

One event loop accepts connections and parses HTTP; query work is
dispatched to a :class:`~repro.gateway.pool.WorkerPool` of processes
that each reopened the same index files (mmap'd v3 bundles reopen
zero-copy, so N workers ≈ 1× index RAM).  In front of the pool sit an
:class:`~repro.gateway.admission.AdmissionController` (bounded queue,
JSON ``429`` + ``Retry-After`` under overload, per-index concurrency
limits) and a :class:`~repro.gateway.coalesce.Coalescer` (identical
in-flight requests share one worker round-trip).

The wire protocol is exactly the threaded
:class:`~repro.service.server.UsiServer`'s — same endpoints, same
validation (shared through :mod:`repro.service.requests`), same
drain semantics (503 for new requests while in-flight ones finish) —
so clients and benchmarks can switch modes with a flag.

Live/in-memory indexes (the ``--live`` ingest path) cannot live in
read-only workers; hand them in through an
:class:`~repro.service.registry.IndexRegistry` and the gateway serves
them inline on executor threads, ``POST /ingest`` included.
"""

from __future__ import annotations

import asyncio
import random
import signal
import threading
from pathlib import Path

from repro.errors import IndexLoadError, ParameterError, ReproError
from repro.gateway import http
from repro.gateway.admission import AdmissionController, OverloadError
from repro.gateway.coalesce import Coalescer, coalesce_key
from repro.gateway.pool import WorkerCrashed, WorkerPool
from repro.profiling import merge_profile_dicts
from repro.service.metrics import EndpointMetrics, LatencyRecorder
from repro.service.registry import IndexRegistry
from repro.service.requests import (
    RequestError,
    does_not_ingest,
    endpoint_class,
    health_payload,
    parse_ingest_request,
    parse_query_request,
    unsupported_counts,
)


class DrainingError(ReproError):
    """The gateway is shutting down; new work is refused."""


class DeadlineError(ReproError):
    """A request exceeded the gateway-wide deadline (HTTP 504)."""


class PoolDegradedError(ReproError):
    """The worker pool is unavailable and degraded serving is off.

    Raised when the breaker is open and ``degraded_mode`` is
    ``"shed"``; mapped to 503 + ``Retry-After`` so well-behaved
    clients back off while the supervisor heals the pool.
    """

    def __init__(self, retry_after: int) -> None:
        super().__init__("worker pool unavailable; retry later")
        self.retry_after = max(1, int(retry_after))


class AsyncGateway:
    """The asyncio serving front-end over a multi-process worker pool.

    Parameters
    ----------
    paths:
        ``{name: index file}`` served by the worker pool (every worker
        opens every file; v3 bundles with ``mmap`` share their pages).
    registry:
        Optional :class:`IndexRegistry` of in-process indexes (live
        ingest, tests) served inline on executor threads.
    workers:
        Worker-pool size (ignored when *paths* is empty).
    max_queue:
        Admission bound: admitted-but-unfinished queries past this
        are shed with ``429`` + ``Retry-After``.
    per_index_limit:
        Concurrent queries allowed per index name.
    coalesce:
        Collapse identical in-flight query requests onto one
        dispatch.
    mmap:
        Workers open index files memory-mapped (v3 bundles).
    request_timeout:
        Gateway-wide per-request deadline in seconds; past it the
        client gets a JSON 504 instead of a hang.  ``None`` disables.
    call_timeout:
        Per-worker-round-trip deadline handed to the pool.
    degraded_mode:
        What pool-backed queries do while the breaker is open:
        ``"inline"`` serves them from a lazily-opened in-process
        engine over the same bundle (exact answers, single-process
        throughput); ``"shed"`` answers 503 + ``Retry-After``.
    """

    def __init__(
        self,
        paths: "dict[str, str | Path] | None" = None,
        registry: "IndexRegistry | None" = None,
        host: str = "127.0.0.1",
        port: int = 8642,
        workers: int = 2,
        max_queue: int = 64,
        per_index_limit: int = 8,
        cache_size: int = 4096,
        coalesce: bool = True,
        mmap: bool = True,
        drain_timeout: float = 10.0,
        request_timeout: "float | None" = 60.0,
        call_timeout: "float | None" = 30.0,
        degraded_mode: str = "inline",
    ) -> None:
        if not paths and registry is None:
            raise ParameterError("nothing to serve: give paths and/or a registry")
        if degraded_mode not in ("inline", "shed"):
            raise ParameterError("degraded_mode must be 'inline' or 'shed'")
        self._paths = {name: str(path) for name, path in (paths or {}).items()}
        self.registry = registry
        self._host = host
        self._port = int(port)
        self._workers = int(workers) if self._paths else 0
        self._cache_size = int(cache_size)
        self._mmap = bool(mmap)
        self._drain_timeout = float(drain_timeout)
        self._request_timeout = (
            None if request_timeout is None else float(request_timeout)
        )
        self._call_timeout = (
            None if call_timeout is None else float(call_timeout)
        )
        self._degraded_mode = degraded_mode
        self.admission = AdmissionController(max_queue, per_index_limit)
        self.coalescer = Coalescer() if coalesce else None
        self.pool: "WorkerPool | None" = None
        self.metrics = registry.metrics if registry is not None else LatencyRecorder()
        self.endpoint_metrics = EndpointMetrics()
        self._backend_tags = self._peek_backends()
        self._server: "asyncio.base_events.Server | None" = None
        self._draining = False
        self._inflight = 0
        self._idle = asyncio.Event()
        # Degraded-mode engines over the pool's bundles, opened lazily
        # on executor threads (never touched while the pool is healthy).
        self._fallback_engines: dict = {}
        self._fallback_lock = threading.Lock()
        self.deadline_timeouts = 0
        self.pool_retries = 0
        self.degraded_queries = 0

    def _peek_backends(self) -> dict:
        from repro.io import peek_backend

        return {name: peek_backend(path) for name, path in self._paths.items()}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "AsyncGateway":
        if self._paths:
            self.pool = WorkerPool(
                self._paths,
                workers=self._workers,
                cache_size=self._cache_size,
                mmap=self._mmap,
                call_timeout=self._call_timeout,
            )
            await self.pool.start()
        self._idle.set()
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._port
        )
        address = self._server.sockets[0].getsockname()
        self._host, self._port = address[0], address[1]
        return self

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        return self._port

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self._port}"

    async def drain(self, timeout: "float | None" = None) -> None:
        """Graceful shutdown: stop accepting, finish in-flight work.

        New requests get 503 the moment draining starts; in-flight
        ones (coalesced waiters included) get up to *timeout* seconds
        to finish, after which any still-pending coalesced futures are
        failed with a clean 503 — never left hanging.  Then the worker
        pool stops and the registry (when owned) closes.  Idempotent.
        """
        if self._draining:
            return
        self._draining = True
        timeout = self._drain_timeout if timeout is None else timeout
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
        except (asyncio.TimeoutError, TimeoutError):
            pass
        if self.coalescer is not None:
            self.coalescer.abort_all(DrainingError("server is shutting down"))
        if self.pool is not None:
            await self.pool.stop()
        if self.registry is not None:
            self.registry.close()
        with self._fallback_lock:
            fallbacks = list(self._fallback_engines.values())
            self._fallback_engines.clear()
        for engine in fallbacks:
            closer = getattr(engine.index, "close", None)
            if callable(closer):
                try:
                    closer()
                except Exception:  # pragma: no cover - best-effort cleanup
                    pass

    def serve_forever(self, install_signal_handlers: bool = True) -> None:
        """Run the gateway on the calling thread (the CLI path).

        SIGINT/SIGTERM trigger a graceful drain, mirroring the
        threaded server: the listener stops accepting, in-flight
        requests finish, and the pool and registry close.
        """
        asyncio.run(self._serve_until_signal(install_signal_handlers))

    async def _serve_until_signal(self, install_signal_handlers: bool) -> None:
        await self.start()
        stop = asyncio.Event()
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(signum, stop.set)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    break
        try:
            await stop.wait()
        finally:
            await self.drain()

    def start_in_thread(self) -> "GatewayHandle":
        """Run the gateway on a dedicated event-loop thread (tests)."""
        return GatewayHandle(self).start()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    def _track_request(self, delta: int) -> None:
        self._inflight += delta
        if self._inflight == 0:
            self._idle.set()
        else:
            self._idle.clear()

    async def _serve_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await http.read_request(reader)
                except http.HttpError as error:
                    await http.write_json(
                        writer,
                        error.status,
                        {"error": error.message},
                        keep_alive=False,
                    )
                    break
                if request is None:
                    break
                if self._draining:
                    await http.write_json(
                        writer,
                        503,
                        {"error": "server is shutting down"},
                        keep_alive=False,
                    )
                    break
                keep_alive = await self._serve_request(request, writer)
                if not keep_alive or request.wants_close:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _serve_request(self, request: http.Request, writer) -> bool:
        """Route one request; returns whether to keep the connection."""
        loop = asyncio.get_running_loop()
        endpoint = endpoint_class(request.method, request.path)
        t0 = loop.time()
        self._track_request(+1)
        try:
            try:
                if self._request_timeout is not None:
                    status, payload, retry_after = await asyncio.wait_for(
                        self._route(request), self._request_timeout
                    )
                else:
                    status, payload, retry_after = await self._route(request)
            except (asyncio.TimeoutError, TimeoutError, DeadlineError):
                self.deadline_timeouts += 1
                status, payload, retry_after = (
                    504,
                    {
                        "error": (
                            "request exceeded the "
                            f"{self._request_timeout}s deadline"
                        )
                    },
                    None,
                )
            except http.HttpError as error:
                status, payload, retry_after = (
                    error.status,
                    {"error": error.message},
                    error.retry_after,
                )
            except RequestError as error:
                status, payload, retry_after = (
                    error.status,
                    {"error": error.message},
                    None,
                )
            except OverloadError as error:
                status, payload, retry_after = (
                    429,
                    {"error": str(error)},
                    error.retry_after,
                )
            except DrainingError:
                status, payload, retry_after = (
                    503,
                    {"error": "server is shutting down"},
                    None,
                )
            except IndexLoadError as error:
                status, payload, retry_after = 503, {"error": str(error)}, 1
            except PoolDegradedError as error:
                status, payload, retry_after = (
                    503,
                    {"error": str(error)},
                    error.retry_after,
                )
            except WorkerCrashed as error:
                # Mid-drain, a dispatch losing its worker is expected —
                # the pool is stopping; report it as shutdown, not 500.
                if self._draining:
                    status, payload, retry_after = (
                        503,
                        {"error": "server is shutting down"},
                        None,
                    )
                else:
                    status, payload, retry_after = 500, {"error": str(error)}, None
            keep_alive = status == 200
            await http.write_json(
                writer, status, payload, keep_alive=keep_alive, retry_after=retry_after
            )
            return keep_alive
        finally:
            self._track_request(-1)
            self.endpoint_metrics.record(endpoint, loop.time() - t0)

    async def _route(self, request: http.Request) -> "tuple[int, dict, int | None]":
        method, path = request.method, request.path
        if method == "GET":
            if path == "/healthz":
                return 200, self._health(), None
            if path == "/indexes":
                return 200, {"indexes": self._describe_indexes()}, None
            if path == "/stats":
                return 200, await self._stats(), None
            raise http.HttpError(404, f"unknown path {path!r}")
        if method == "POST":
            if path == "/query":
                return await self._handle_query(request.json_object())
            if path == "/ingest":
                return await self._handle_ingest(request.json_object())
            raise http.HttpError(404, f"unknown path {path!r}")
        raise http.HttpError(404, f"unknown path {path!r}")

    # ------------------------------------------------------------------
    # Index resolution (pool-backed and inline names share one space)
    # ------------------------------------------------------------------
    def _all_names(self) -> list[str]:
        names = list(self._paths)
        if self.registry is not None:
            names.extend(self.registry.names())
        return sorted(names)

    def _resolve_name(self, request: dict) -> str:
        name = request.get("index")
        if name is None:
            names = self._all_names()
            if len(names) == 1:
                return names[0]
            raise RequestError(
                400, "several indexes are registered; name one with 'index'"
            )
        if name in self._paths or (
            self.registry is not None and name in self.registry
        ):
            return name
        raise RequestError(404, f"unknown index {name!r}")

    # ------------------------------------------------------------------
    # /query
    # ------------------------------------------------------------------
    async def _handle_query(self, request: dict) -> "tuple[int, dict, None]":
        patterns, with_counts = parse_query_request(request)
        name = self._resolve_name(request)

        if self.coalescer is None:
            result = await self._admit_and_dispatch(name, patterns, with_counts)
        else:
            key = coalesce_key(name, patterns, with_counts)
            future, leader = self.coalescer.lead_or_follow(key)
            if leader:
                try:
                    result = await self._admit_and_dispatch(
                        name, patterns, with_counts
                    )
                except BaseException as error:
                    self.coalescer.fail(key, error)
                    raise
                self.coalescer.resolve(key, result)
            else:
                try:
                    result = await asyncio.shield(future)
                except asyncio.CancelledError:
                    if future.cancelled() or (
                        future.done()
                        and isinstance(
                            future.exception(), asyncio.CancelledError
                        )
                    ):
                        # The *leader* hit its deadline; followers get
                        # a clean 504 instead of a dropped connection.
                        raise DeadlineError(
                            "coalesced leader exceeded its deadline"
                        )
                    raise

        utilities, counts = result
        rows = [
            {"pattern": pattern, "utility": value}
            for pattern, value in zip(patterns, utilities)
        ]
        if counts is not None:
            for row, count in zip(rows, counts):
                row["count"] = count
        return 200, {"index": name, "results": rows}, None

    async def _admit_and_dispatch(
        self, name: str, patterns: list, with_counts: bool
    ) -> tuple:
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        async with self.admission.slot(name):
            if name in self._paths:
                result = await self._dispatch_pool(name, patterns, with_counts)
                # Inline engines record their own latency into
                # self.metrics; the pool path records here so
                # ``server`` stats see every query either way.
                self.metrics.record(loop.time() - t0, len(patterns))
                return result
            return await self._dispatch_inline(name, patterns, with_counts)

    async def _dispatch_pool(
        self, name: str, patterns: list, with_counts: bool
    ) -> tuple:
        assert self.pool is not None
        if not self.pool.breaker.allow():
            return await self._dispatch_degraded(name, patterns, with_counts)
        message = {
            "op": "query", "index": name, "patterns": patterns, "count": with_counts
        }
        try:
            response = await self.pool.call(message)
        except WorkerCrashed:
            if self._draining:
                raise
            # One transparent retry on a fresh worker: queries are
            # idempotent, so the crash costs this caller latency, not
            # an error.  Jitter decorrelates concurrent retriers.
            self.pool_retries += 1
            await asyncio.sleep(random.uniform(0.005, 0.05))
            if not self.pool.breaker.allow():
                return await self._dispatch_degraded(name, patterns, with_counts)
            try:
                response = await self.pool.call(message)
            except WorkerCrashed:
                if self._draining:
                    raise
                return await self._dispatch_degraded(name, patterns, with_counts)
        if not response.get("ok"):
            raise RequestError(
                int(response.get("status", 500)),
                response.get("error", "worker error"),
            )
        return response["utilities"], response.get("counts")

    async def _dispatch_degraded(
        self, name: str, patterns: list, with_counts: bool
    ) -> tuple:
        """Serve a pool-backed query without the pool (breaker open).

        Inline mode opens the same bundle in this process, so the
        answers are bitwise identical to the pool's — the degradation
        is throughput (no fan-out), never correctness.
        """
        if self._degraded_mode != "inline":
            retry_after = (
                self.pool.breaker.retry_after() if self.pool is not None else 1
            )
            raise PoolDegradedError(retry_after)
        loop = asyncio.get_running_loop()
        engine = await loop.run_in_executor(None, self._fallback_engine, name)
        if with_counts and not engine.protocol.capabilities.count:
            raise unsupported_counts(name, engine.protocol.backend_name)
        utilities = await loop.run_in_executor(None, engine.query_batch, patterns)
        counts = None
        if with_counts:
            counts = await loop.run_in_executor(
                None, lambda: [engine.count(p) for p in patterns]
            )
        self.degraded_queries += 1
        return utilities, counts

    def _fallback_engine(self, name: str):
        """The lazily-opened in-process engine for one pool bundle.

        Runs on an executor thread (opening an index touches disk).
        """
        with self._fallback_lock:
            engine = self._fallback_engines.get(name)
        if engine is not None:
            return engine
        from repro.api import open_index
        from repro.service.engine import QueryEngine

        index = open_index(self._paths[name], mmap=self._mmap)
        engine = QueryEngine(index, cache_size=self._cache_size)
        with self._fallback_lock:
            existing = self._fallback_engines.get(name)
            if existing is not None:  # lost the open race; keep theirs
                closer = getattr(index, "close", None)
                if callable(closer):
                    closer()
                return existing
            self._fallback_engines[name] = engine
        return engine

    async def _dispatch_inline(
        self, name: str, patterns: list, with_counts: bool
    ) -> tuple:
        assert self.registry is not None
        loop = asyncio.get_running_loop()
        engine = await loop.run_in_executor(None, self.registry.get, name)
        if with_counts and not engine.protocol.capabilities.count:
            raise unsupported_counts(name, engine.protocol.backend_name)
        utilities = await loop.run_in_executor(None, engine.query_batch, patterns)
        counts = None
        if with_counts:
            counts = await loop.run_in_executor(
                None, lambda: [engine.count(p) for p in patterns]
            )
        return utilities, counts

    # ------------------------------------------------------------------
    # /ingest
    # ------------------------------------------------------------------
    async def _handle_ingest(self, request: dict) -> "tuple[int, dict, None]":
        doc, utilities = parse_ingest_request(request)
        name = self._resolve_name(request)
        if name in self._paths:
            raise does_not_ingest(name, self._backend_tags.get(name) or "static")
        assert self.registry is not None
        loop = asyncio.get_running_loop()
        engine = await loop.run_in_executor(None, self.registry.get, name)
        appender = getattr(engine.protocol, "append_document", None)
        if not callable(appender):
            raise does_not_ingest(name, engine.protocol.backend_name)
        try:
            seq = await loop.run_in_executor(None, appender, doc, utilities)
        except ReproError as error:
            raise RequestError(400, str(error))
        except OSError as error:
            # WAL write failure (disk full, torn write).  The append
            # was not acknowledged and the memtable is untouched, so
            # the client may simply retry later.
            raise http.HttpError(
                503, f"ingest temporarily unavailable: {error}", retry_after=1
            )
        return 200, {"index": name, "seq": int(seq)}, None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _health(self) -> dict:
        breaker_state = "closed"
        workers_alive = 0
        workers_target = 0
        if self.pool is not None:
            breaker_state = self.pool.breaker.state
            workers_alive = self.pool.alive_workers
            workers_target = self.pool.workers
        return health_payload(
            self.registry,
            workers_alive=workers_alive,
            workers_target=workers_target,
            breaker_state=breaker_state,
            extra_reasons=("draining",) if self._draining else (),
        )

    def _describe_indexes(self) -> list[dict]:
        rows = []
        for name in sorted(self._paths):
            rows.append(
                {
                    "name": name,
                    "resident": True,  # every worker holds it open
                    "pinned": True,
                    "path": self._paths[name],
                    "generation": 1,
                    "backend": self._backend_tags.get(name),
                    "capabilities": None,
                    "served_by": "pool",
                }
            )
        if self.registry is not None:
            for row in self.registry.describe():
                row["served_by"] = "inline"
                rows.append(row)
        return sorted(rows, key=lambda row: row["name"])

    async def _stats(self) -> dict:
        if self.registry is not None:
            registry_stats = self.registry.stats()
            engines = self.registry.engine_stats()
            ingest = self.registry.ingest_stats()
        else:
            registry_stats = {
                "indexes": len(self._paths),
                "resident": len(self._paths),
                "capacity": len(self._paths),
                "loads": 0,
                "load_failures": 0,
                "evictions": 0,
                "replacements": 0,
            }
            engines = {}
            ingest = {}
        pool_stats = None
        if self.pool is not None:
            pool_stats = self.pool.stats()
            worker_stats = await self.pool.broadcast({"op": "stats"})
            pool_stats["worker_engines"] = [
                {"worker": row.get("worker"), "engines": row.get("engines", {})}
                for row in worker_stats
                if row.get("ok")
            ]
        return {
            "mode": "async",
            "workers": self._workers,
            "server": self.metrics.snapshot().as_dict(),
            "endpoints": self.endpoint_metrics.snapshot(),
            "registry": registry_stats,
            "engines": engines,
            "ingest": ingest,
            # Query-stage seconds summed over inline engines (worker
            # engines report theirs per worker under pool stats).
            "profile": merge_profile_dicts(
                [row.get("profile") for row in engines.values()]
            ),
            "admission": self.admission.stats(),
            "coalescer": self.coalescer.stats() if self.coalescer else None,
            "pool": pool_stats,
            "resilience": {
                "request_timeout": self._request_timeout,
                "call_timeout": self._call_timeout,
                "deadline_timeouts": self.deadline_timeouts,
                "pool_retries": self.pool_retries,
                "degraded_mode": self._degraded_mode,
                "degraded_queries": self.degraded_queries,
                "fallback_engines": sorted(self._fallback_engines),
                "breaker": (
                    self.pool.breaker.stats() if self.pool is not None else None
                ),
                "health": self._health(),
            },
        }


class GatewayHandle:
    """An :class:`AsyncGateway` running on a dedicated loop thread.

    Gives synchronous callers (tests, benchmarks, the threaded world
    at large) a context-manager lifecycle and a :meth:`run` bridge for
    poking the loop — e.g. checking workers out of the pool to stage a
    deterministic coalescing race.

    Examples
    --------
    >>> handle = AsyncGateway(paths=...).start_in_thread()  # doctest: +SKIP
    >>> handle.url                                          # doctest: +SKIP
    'http://127.0.0.1:49152'
    >>> handle.shutdown()                                   # doctest: +SKIP
    """

    def __init__(self, gateway: AsyncGateway) -> None:
        self.gateway = gateway
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._thread: "threading.Thread | None" = None
        self._started = threading.Event()
        self._startup_error: "BaseException | None" = None

    def start(self) -> "GatewayHandle":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._thread_main, name="usi-gateway", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=180)
        if self._startup_error is not None:
            self._thread.join(timeout=5)
            raise self._startup_error
        if self._loop is None:
            raise RuntimeError("gateway failed to start")
        return self

    def _thread_main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self.gateway.start())
        except BaseException as error:
            self._startup_error = error
            self._started.set()
            loop.close()
            return
        self._loop = loop
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    @property
    def url(self) -> str:
        return self.gateway.url

    def run(self, coroutine, timeout: float = 60.0):
        """Run *coroutine* on the gateway loop, synchronously."""
        if self._loop is None:
            raise RuntimeError("the gateway loop is not running")
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop).result(
            timeout
        )

    def shutdown(self, timeout: "float | None" = None) -> None:
        """Drain gracefully, then stop the loop thread.  Idempotent."""
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return
        if thread.is_alive():
            asyncio.run_coroutine_threadsafe(
                self.gateway.drain(timeout), loop
            ).result(timeout=(timeout or 10.0) + 30.0)
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=30)
        self._loop = None
        self._thread = None

    def __enter__(self) -> "GatewayHandle":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()
