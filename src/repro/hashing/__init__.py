"""Karp-Rabin rolling-hash fingerprints."""

from repro.hashing.karp_rabin import KarpRabinFingerprinter, fingerprint_of

__all__ = ["KarpRabinFingerprinter", "fingerprint_of"]
