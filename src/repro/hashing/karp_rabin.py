"""Karp-Rabin fingerprints over dual 31-bit moduli.

The USI hash table ``H`` keys substrings by their Karp-Rabin
fingerprint (Karp & Rabin, 1987).  We use two independent polynomial
hashes modulo distinct 31-bit primes and combine them into a single
62-bit key:

* collisions require a simultaneous collision in both fields, so the
  collision probability for ``z`` distinct substrings is about
  ``z^2 / 2^62`` — negligible for any text this library targets, and
  matching the paper's "with high probability" guarantee;
* all arithmetic fits in ``int64`` (values < 2^31, products < 2^62),
  so window fingerprints for a whole text can be computed with
  vectorised ``numpy`` — this is the kernel behind the USI
  construction's sliding-window phase.

The fingerprinter precomputes prefix hashes once (``O(n)``) and then
answers the fingerprint of any fragment in ``O(1)``, exactly the
primitive the paper relies on.
"""

from __future__ import annotations

import random
from typing import Sequence

import numpy as np

from repro.errors import ParameterError

_MOD1 = (1 << 31) - 1  # Mersenne prime 2^31 - 1
_MOD2 = (1 << 31) - 99  # prime 2147483549


class KarpRabinFingerprinter:
    """Prefix-hash tables over a code array, with O(1) fragment hashes.

    Parameters
    ----------
    codes:
        The text as a non-negative integer array.
    seed:
        Seed for drawing the two random bases.  Indexes that must agree
        on fingerprints (e.g. an index and the queries against it) share
        one fingerprinter instance, so the seed only needs to make runs
        reproducible.
    """

    def __init__(self, codes: "Sequence[int] | np.ndarray", seed: int = 0) -> None:
        codes = np.asarray(codes, dtype=np.int64)
        if codes.ndim != 1:
            raise ParameterError("codes must be a 1-D array")
        rng = random.Random(seed)
        # Bases must exceed every letter code to keep the map injective
        # per position; the moduli are ~2^31 so any code below them works,
        # but we additionally shift codes by +1 internally so that the
        # letter 0 does not hash like an empty prefix.
        self._base1 = rng.randrange(1 << 20, _MOD1 - 1)
        self._base2 = rng.randrange(1 << 20, _MOD2 - 1)
        self._n = len(codes)
        shifted = codes + 1
        if self._n and int(shifted.max()) >= _MOD1:
            raise ParameterError("letter codes must be below 2^31 - 2")
        self._prefix1, self._pow1 = self._build_tables(shifted, self._base1, _MOD1)
        self._prefix2, self._pow2 = self._build_tables(shifted, self._base2, _MOD2)

    @staticmethod
    def _power_table(base: int, mod: int, count: int) -> np.ndarray:
        """``base^i mod mod`` for ``i in [0, count)``, vectorised.

        Blocked decomposition ``base^i = small[i % B] * big[i // B]``:
        two short sequential tables of ~sqrt(count) mulmods each, then
        one vectorised multiply (products stay below ``2^62``).
        """
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        block = max(1, int(count**0.5) + 1)
        small = np.empty(block, dtype=np.int64)
        p = 1
        for i in range(block):
            small[i] = p
            p = (p * base) % mod
        jump = p  # base^block
        blocks = (count + block - 1) // block
        big = np.empty(blocks, dtype=np.int64)
        p = 1
        for i in range(blocks):
            big[i] = p
            p = (p * jump) % mod
        idx = np.arange(count, dtype=np.int64)
        return small[idx % block] * big[idx // block] % mod

    @classmethod
    def _build_tables(cls, shifted: np.ndarray, base: int, mod: int) -> tuple[np.ndarray, np.ndarray]:
        """Prefix hashes ``h[i] = hash(S[0..i-1])`` and powers of *base*.

        The recurrence ``h_{i+1} = h_i * base + c_i`` is linearised by
        dividing through by ``base^{i+1}``: the quotients are a plain
        prefix sum of ``c_i * base^{-(i+1)}``, which ``np.cumsum`` can
        take (terms are below ``2^31``, so partial sums of up to
        ``2^31`` texts fit int64), and one vectorised multiply by
        ``base^i`` restores the hashes.  Same values as the sequential
        loop, bit for bit — persisted fingerprints stay comparable.
        """
        n = len(shifted)
        powers = cls._power_table(base, mod, n + 1)
        prefix = np.empty(n + 1, dtype=np.int64)
        prefix[0] = 0
        if n:
            inv_base = pow(int(base), -1, int(mod))
            inv_powers = cls._power_table(inv_base, mod, n + 1)
            scaled = shifted * inv_powers[1:] % mod
            prefix[1:] = np.cumsum(scaled) % mod * powers[1:] % mod
        return prefix, powers

    @classmethod
    def with_bases(
        cls,
        codes: "Sequence[int] | np.ndarray",
        base1: int,
        base2: int,
    ) -> "KarpRabinFingerprinter":
        """Rebuild a fingerprinter with explicit bases (deserialisation).

        Fingerprints are only comparable between instances sharing the
        same bases; a persisted index must restore the exact pair it
        was built with.
        """
        if not 1 < base1 < _MOD1 - 1 or not 1 < base2 < _MOD2 - 1:
            raise ParameterError("bases out of range for the fixed moduli")
        instance = cls.__new__(cls)
        codes = np.asarray(codes, dtype=np.int64)
        instance._base1 = int(base1)
        instance._base2 = int(base2)
        instance._n = len(codes)
        shifted = codes + 1
        instance._prefix1, instance._pow1 = cls._build_tables(shifted, instance._base1, _MOD1)
        instance._prefix2, instance._pow2 = cls._build_tables(shifted, instance._base2, _MOD2)
        return instance

    @property
    def bases(self) -> tuple[int, int]:
        """The two random bases (persisted alongside an index)."""
        return (self._base1, self._base2)

    @property
    def length(self) -> int:
        return self._n

    # ------------------------------------------------------------------
    # Fragment fingerprints
    # ------------------------------------------------------------------
    def fragment(self, i: int, length: int) -> int:
        """The 62-bit fingerprint of ``S[i .. i + length - 1]`` in O(1)."""
        if length <= 0 or i < 0 or i + length > self._n:
            raise ParameterError(
                f"fragment ({i}, {length}) out of range for n={self._n}"
            )
        j = i + length
        f1 = (self._prefix1[j] - self._prefix1[i] * self._pow1[length]) % _MOD1
        f2 = (self._prefix2[j] - self._prefix2[i] * self._pow2[length]) % _MOD2
        return (int(f1) << 31) | int(f2)

    def all_windows(self, length: int) -> np.ndarray:
        """Fingerprints of every window ``S[i .. i + length - 1]``, vectorised.

        Returns an ``int64`` array of ``n - length + 1`` combined keys.
        This is the bulk kernel used by USI construction Phase (ii).
        """
        if length <= 0 or length > self._n:
            raise ParameterError(f"window length {length} out of range")
        count = self._n - length + 1
        starts = self._prefix1[:count]
        ends = self._prefix1[length : length + count]
        f1 = (ends - starts * self._pow1[length]) % _MOD1
        starts = self._prefix2[:count]
        ends = self._prefix2[length : length + count]
        f2 = (ends - starts * self._pow2[length]) % _MOD2
        return (f1 << np.int64(31)) | f2

    def fragments(self, positions: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        """Fingerprints of ``S[p .. p + l - 1]`` per (position, length) pair.

        The vectorised twin of :meth:`fragment` for ragged batches —
        one gather per prefix/power table instead of a Python call per
        fragment (this is the bulk kernel behind the miners' merge
        keys and the USI table build).
        """
        positions = np.asarray(positions, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        if positions.size and (
            int(positions.min()) < 0
            or int(lengths.min()) <= 0
            or int((positions + lengths).max()) > self._n
        ):
            raise ParameterError("fragment (position, length) pairs out of range")
        ends = positions + lengths
        f1 = (self._prefix1[ends] - self._prefix1[positions] * self._pow1[lengths]) % _MOD1
        f2 = (self._prefix2[ends] - self._prefix2[positions] * self._pow2[lengths]) % _MOD2
        return (f1 << np.int64(31)) | f2

    def windows_at(self, positions: np.ndarray, length: int) -> np.ndarray:
        """Fingerprints of the windows starting at *positions*, vectorised."""
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size and (
            int(positions.min()) < 0 or int(positions.max()) + length > self._n
        ):
            raise ParameterError("window positions out of range")
        ends = positions + length
        f1 = (self._prefix1[ends] - self._prefix1[positions] * self._pow1[length]) % _MOD1
        f2 = (self._prefix2[ends] - self._prefix2[positions] * self._pow2[length]) % _MOD2
        return (f1 << np.int64(31)) | f2

    # ------------------------------------------------------------------
    # Pattern fingerprints (text-independent input)
    # ------------------------------------------------------------------
    def of_code_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Fingerprints for a batch of equal-length patterns, vectorised.

        *matrix* has one pattern per row; returns one combined key per
        row, identical to calling :meth:`of_codes` on each row.  This
        is the bulk kernel behind ``UsiIndex.query_batch``.
        """
        matrix = np.asarray(matrix, dtype=np.int64)
        if matrix.ndim != 2:
            raise ParameterError("expected a 2-D pattern matrix")
        f1 = np.zeros(len(matrix), dtype=np.int64)
        f2 = np.zeros(len(matrix), dtype=np.int64)
        for column in range(matrix.shape[1]):
            c = matrix[:, column] + 1
            f1 = (f1 * self._base1 + c) % _MOD1
            f2 = (f2 * self._base2 + c) % _MOD2
        return (f1 << np.int64(31)) | f2

    def of_codes(self, codes: "Sequence[int] | np.ndarray") -> int:
        """The fingerprint an occurrence of *codes* would have in the text.

        This is the O(m) query-side computation: hashing an arbitrary
        pattern with the same bases/moduli so it can be looked up in a
        fingerprint-keyed hash table.
        """
        f1 = 0
        f2 = 0
        for c in codes:
            c1 = int(c) + 1
            f1 = (f1 * self._base1 + c1) % _MOD1
            f2 = (f2 * self._base2 + c1) % _MOD2
        return (f1 << 31) | f2


def fingerprint_of(codes: "Sequence[int] | np.ndarray", seed: int = 0) -> int:
    """Fingerprint of a standalone code sequence (convenience for tests)."""
    return KarpRabinFingerprinter(np.asarray(codes, dtype=np.int64), seed=seed).of_codes(codes)
