"""Conforming adapters: every engine family behind one protocol.

Each adapter is a thin shell — construction dispatch, pattern
passthrough, and capability/statistics reporting — around one of the
engine families the paper evaluates:

====================  ==============================================
backend               engine
====================  ==============================================
``usi`` (``uet``)     :class:`repro.core.usi.UsiIndex`, exact miner
``uat``               :class:`UsiIndex` with the Section-VI miner
``fm``                :class:`UsiIndex` over the succinct FM-index
``oracle``            the Section-V SA+PSW exact engine + tuning
``dynamic``           :class:`repro.core.dynamic.DynamicUsiIndex`
``collection``        :class:`repro.strings.collection.CollectionUsiIndex`
``sharded``           :class:`repro.service.sharding.ShardedUsiIndex`
``live``              :class:`repro.ingest.live.LiveIndex` (registered
                      by :mod:`repro.ingest.backend`)
``bsl1`` .. ``bsl4``  the Section-I baselines
====================  ==============================================

All exact backends return identical ``query`` answers for the same
weighted string (property-tested in ``tests/api/``); they differ in
construction cost, space, and which patterns get the fast path.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.api.protocol import Capabilities, IndexInfo, UtilityIndexBase
from repro.api.registry import register_backend
from repro.baselines.bsl1 import Bsl1NoCache
from repro.baselines.bsl2 import Bsl2LruCache
from repro.baselines.bsl3 import Bsl3TopKSeen
from repro.baselines.bsl4 import Bsl4SketchTopKSeen
from repro.core.dynamic import DynamicUsiIndex
from repro.core.topk_oracle import TopKOracle
from repro.core.usi import UsiIndex
from repro.errors import ParameterError
from repro.strings.collection import CollectionUsiIndex, WeightedStringCollection
from repro.strings.weighted import WeightedString
from repro.utility.functions import make_global_utility

#: Default top-K when the caller gives neither ``k`` nor ``tau``.
DEFAULT_K = 100


def as_weighted_string(source) -> WeightedString:
    """Coerce *source* to one weighted string (single-text backends)."""
    if isinstance(source, WeightedString):
        return source
    if isinstance(source, (str, bytes)):
        return WeightedString.uniform(source)
    if isinstance(source, WeightedStringCollection):
        raise ParameterError(
            "this backend indexes a single weighted string; use "
            "backend='collection' or backend='sharded' for collections"
        )
    raise ParameterError(
        f"cannot index {type(source).__name__}; expected a WeightedString "
        "or text (str/bytes)"
    )


def as_collection(source) -> WeightedStringCollection:
    """Coerce *source* to a collection (multi-document backends)."""
    if isinstance(source, WeightedStringCollection):
        return source
    if isinstance(source, WeightedString):
        return WeightedStringCollection([source])
    if isinstance(source, (str, bytes)):
        return WeightedStringCollection([WeightedString.uniform(source)])
    if isinstance(source, Sequence) and source and all(
        isinstance(doc, WeightedString) for doc in source
    ):
        return WeightedStringCollection(list(source))
    raise ParameterError(
        f"cannot build a collection from {type(source).__name__}"
    )


def _default_k(k, tau) -> "tuple[int | None, int | None]":
    if k is None and tau is None:
        return DEFAULT_K, None
    return k, tau


# ----------------------------------------------------------------------
# USI family: UET / UAT / FM-backed
# ----------------------------------------------------------------------
class _UsiFamilyBackend(UtilityIndexBase):
    """Shared shell for the three UsiIndex-backed backends."""

    capabilities = Capabilities(batch=True, count=True, persistent=True)
    kernel_aware = True
    _forced_options: dict = {}

    def __init__(self, inner: UsiIndex) -> None:
        self.inner = inner

    @classmethod
    def build(cls, source, *, k=None, tau=None, **options) -> "_UsiFamilyBackend":
        ws = as_weighted_string(source)
        k, tau = _default_k(k, tau)
        options.update(cls._forced_options)
        return cls(UsiIndex.build(ws, k=k, tau=tau, **options))

    def query(self, pattern) -> float:
        return float(self.inner.query(pattern))

    def query_batch(self, patterns) -> list[float]:
        return [float(v) for v in self.inner.query_batch(patterns)]

    def count(self, pattern) -> int:
        return int(self.inner.count(pattern))

    def count_batch(self, patterns) -> list[int]:
        return [int(c) for c in self.inner.count_batch(patterns)]

    def _stats_detail(self) -> dict:
        report = self.inner.report
        return {
            "miner": report.miner,
            "k": report.k,
            "tau_k": report.tau_k,
            "hash_entries": report.hash_entries,
            "hash_hits": self.inner.hash_hits,
            "hash_misses": self.inner.hash_misses,
        }


@register_backend("usi", aliases=("uet",))
class UsiBackend(_UsiFamilyBackend):
    """USI_TOP-K with the exact Section-V miner (the paper's UET)."""


@register_backend("uat", aliases=("approximate",))
class UatBackend(_UsiFamilyBackend):
    """USI_TOP-K mined with Approximate-Top-K (the paper's UAT)."""

    capabilities = Capabilities(
        batch=True, approximate=True, count=True, persistent=True
    )
    _forced_options = {"miner": "approximate"}


@register_backend("fm", aliases=("fm-count",))
class FmBackend(_UsiFamilyBackend):
    """USI_TOP-K answering uncached queries through the FM-index."""

    _forced_options = {"locate_backend": "fm"}


# ----------------------------------------------------------------------
# The Section-V oracle engine
# ----------------------------------------------------------------------
@register_backend("oracle", aliases=("exact",))
class OracleBackend(UtilityIndexBase):
    """The Section-V exact engine: SA + PSW answers with the tuning oracle.

    No hash table: every query walks the suffix array, so answers are
    exact for *all* patterns and construction skips mining entirely.
    The Section-V oracle rides along for ``tune_by_k`` / ``tune_by_tau``
    introspection (reported through :meth:`stats`).
    """

    capabilities = Capabilities(batch=True, count=True, persistent=True)
    kernel_aware = True

    def __init__(self, ws, kernel, psw, utility, k: int) -> None:
        self._kernel = kernel
        self.inner = kernel.suffix
        self._ws = ws
        self._psw = psw
        self._utility = utility
        self._k = k
        self._oracle: "TopKOracle | None" = None

    @classmethod
    def build(
        cls,
        source,
        *,
        k=None,
        tau=None,
        aggregator="sum",
        local="sum",
        sa_algorithm="doubling",
        kernel=None,
        **_options,
    ) -> "OracleBackend":
        from repro.kernel import TextKernel

        ws = as_weighted_string(source)
        k, _ = _default_k(k, tau)
        if k is None:
            k = DEFAULT_K  # only steers the tuning() report, never answers
        if kernel is None:
            kernel = TextKernel(ws, sa_algorithm=sa_algorithm)
        else:
            kernel.require_match(ws)
        psw = kernel.psw(local)
        utility = make_global_utility(aggregator)
        return cls(ws, kernel, psw, utility, int(k))

    def _encode(self, pattern) -> "np.ndarray | None":
        return self._ws.alphabet.try_encode_pattern(pattern)

    def query(self, pattern) -> float:
        codes = self._encode(pattern)
        if codes is None:
            return self._utility.identity
        occurrences = self.inner.occurrences(codes)
        if occurrences.size == 0:
            return self._utility.identity
        locals_ = self._psw.local_utilities(occurrences, len(codes))
        return float(self._utility.aggregate(locals_))

    def query_batch(self, patterns) -> list[float]:
        """Vectorised SA + PSW batch path (same answers as ``query`` up
        to float summation order)."""
        return self._kernel.batch_utilities(
            [self._encode(p) for p in patterns], self._utility, psw=self._psw
        )

    def count(self, pattern) -> int:
        codes = self._encode(pattern)
        if codes is None:
            return 0
        return int(self.inner.count(codes))

    def tuning(self) -> dict:
        """The Section-V tuning point for this engine's ``k``."""
        if self._oracle is None:
            # The oracle needs an LCP; the shared suffix array builds
            # (or rebuilds) it lazily on first use.
            self._oracle = TopKOracle(self._kernel.suffix)
        point = self._oracle.tune_by_k(self._k)
        return {"k": point.k, "tau_k": point.tau, "l_k": point.distinct_lengths}

    def nbytes(self) -> int:
        return int(self.inner.nbytes() + self._psw.nbytes())

    def _stats_detail(self) -> dict:
        return {"aggregator": self._utility.name, "k": self._k}


# ----------------------------------------------------------------------
# Dynamic / collection / sharded
# ----------------------------------------------------------------------
@register_backend("dynamic")
class DynamicBackend(UtilityIndexBase):
    """Appendable USI (static-to-dynamic transformation of Section X)."""

    capabilities = Capabilities(
        batch=True, dynamic=True, count=True, persistent=True
    )

    def __init__(self, inner: DynamicUsiIndex) -> None:
        self.inner = inner

    @classmethod
    def build(cls, source, *, k=None, tau=None, **options) -> "DynamicBackend":
        ws = as_weighted_string(source)
        k, _ = _default_k(k, tau)
        if k is None:
            raise ParameterError(
                "the dynamic backend needs k (tau tuning applies to static builds)"
            )
        return cls(DynamicUsiIndex(ws, k=int(k), **options))

    def query(self, pattern) -> float:
        return float(self.inner.query(pattern))

    def query_batch(self, patterns) -> list[float]:
        return [float(v) for v in self.inner.query_batch(patterns)]

    def count(self, pattern) -> int:
        return int(self.inner.count(pattern))

    def append(self, letter, utility: float) -> None:
        self.inner.append(letter, utility)

    def extend(self, letters, utilities) -> None:
        self.inner.extend(letters, utilities)

    def data_version(self) -> int:
        # Appends only ever grow the text, so the length is the
        # monotone answers-may-have-changed counter.
        return int(self.inner.length)

    def nbytes(self) -> None:
        return None  # the tail buffer makes a static figure misleading

    def _stats_detail(self) -> dict:
        return {
            "length": self.inner.length,
            "tail_length": self.inner.tail_length,
            "rebuilds": self.inner.rebuild_count,
        }


@register_backend("collection")
class CollectionBackend(UtilityIndexBase):
    """USI over a document collection with document statistics."""

    capabilities = Capabilities(
        batch=True, collection=True, count=True, persistent=True
    )
    kernel_aware = True

    def __init__(self, inner: CollectionUsiIndex) -> None:
        self.inner = inner

    @classmethod
    def build(cls, source, *, k=None, tau=None, **options) -> "CollectionBackend":
        collection = as_collection(source)
        k, tau = _default_k(k, tau)
        return cls(CollectionUsiIndex(collection, k=k, tau=tau, **options))

    def query(self, pattern) -> float:
        return float(self.inner.query(pattern))

    def query_batch(self, patterns) -> list[float]:
        return [float(v) for v in self.inner.query_batch(patterns)]

    def count(self, pattern) -> int:
        return int(self.inner.count(pattern))

    def document_frequency(self, pattern) -> int:
        return int(self.inner.document_frequency(pattern))

    def nbytes(self) -> int:
        return int(self.inner.index.nbytes())

    def _stats_detail(self) -> dict:
        return {"documents": self.inner.collection.document_count}


@register_backend("sharded")
class ShardedBackend(UtilityIndexBase):
    """Document-aligned shards built in parallel, merged exactly."""

    capabilities = Capabilities(
        batch=True, collection=True, count=True, persistent=True
    )

    def __init__(self, inner) -> None:
        self.inner = inner

    @classmethod
    def build(
        cls, source, *, k=None, tau=None, shards=None, **options
    ) -> "ShardedBackend":
        from repro.service.sharding import ShardedUsiIndex

        collection = as_collection(source)
        k, tau = _default_k(k, tau)
        return cls(
            ShardedUsiIndex.build(collection, shards, k=k, tau=tau, **options)
        )

    def query(self, pattern) -> float:
        return float(self.inner.query(pattern))

    def query_batch(self, patterns) -> list[float]:
        return [float(v) for v in self.inner.query_batch(patterns)]

    def count(self, pattern) -> int:
        return int(self.inner.count(pattern))

    def count_batch(self, patterns) -> list[int]:
        return [int(c) for c in self.inner.count_batch(patterns)]

    def document_frequency(self, pattern) -> int:
        return int(self.inner.document_frequency(pattern))

    def _stats_detail(self) -> dict:
        return {
            "shards": self.inner.shard_count,
            "aggregator": self.inner.utility_name,
        }


# ----------------------------------------------------------------------
# Baselines (Section I / the evaluation's BSL1-BSL4)
# ----------------------------------------------------------------------
class _BaselineBackend(UtilityIndexBase):
    """Shared shell for the four baselines (they differ in caching only)."""

    capabilities = Capabilities(batch=True, count=True, persistent=True)
    kernel_aware = True
    _engine_cls: type = Bsl1NoCache
    _needs_capacity = False

    def __init__(self, inner) -> None:
        self.inner = inner

    @classmethod
    def build(cls, source, *, k=None, capacity=None, **options) -> "_BaselineBackend":
        ws = as_weighted_string(source)
        options.pop("tau", None)
        if cls._needs_capacity:
            # The paper's caching baselines hold K entries; mirror that
            # default so `k` means the same thing across backends.
            options["capacity"] = int(capacity or k or DEFAULT_K)
        return cls(cls._engine_cls(ws, **options))

    def query(self, pattern) -> float:
        return float(self.inner.query(pattern))

    def query_batch(self, patterns) -> list[float]:
        return [float(v) for v in self.inner.query_batch(patterns)]

    def count(self, pattern) -> int:
        return int(self.inner.count(pattern))

    def _stats_detail(self) -> dict:
        detail = {"baseline": self.inner.name}
        for counter in ("hits", "misses"):
            value = getattr(self.inner, counter, None)
            if value is not None:
                detail[counter] = int(value)
        return detail


@register_backend("bsl1", aliases=("baseline",))
class Bsl1Backend(_BaselineBackend):
    """BSL1: SA + PSW from scratch on every query (no caching)."""


@register_backend("bsl2")
class Bsl2Backend(_BaselineBackend):
    """BSL2: BSL1 plus an LRU cache of answered patterns."""

    _engine_cls = Bsl2LruCache
    _needs_capacity = True


@register_backend("bsl3")
class Bsl3Backend(_BaselineBackend):
    """BSL3: BSL1 plus a top-K-seen (most-frequently-queried) cache."""

    _engine_cls = Bsl3TopKSeen
    _needs_capacity = True


@register_backend("bsl4")
class Bsl4Backend(_BaselineBackend):
    """BSL4: BSL3 with Count-Min sketched query counts."""

    _engine_cls = Bsl4SketchTopKSeen
    _needs_capacity = True


# ----------------------------------------------------------------------
# Coercion of raw engines (deprecation-shim support)
# ----------------------------------------------------------------------
class GenericAdapter(UtilityIndexBase):
    """Wrap an unregistered object exposing at least ``query``.

    Gives legacy/user-supplied index objects the protocol surface
    (notably the ``query_batch`` fallback) without registration.
    """

    backend_name = "external"
    capabilities = Capabilities()  # claims nothing beyond query

    def __init__(self, inner) -> None:
        if not callable(getattr(inner, "query", None)):
            raise ParameterError(
                f"{type(inner).__name__} has no query() method; cannot adapt"
            )
        self.inner = inner
        # Claim exactly what the wrapped object provides.
        self.capabilities = Capabilities(
            batch=callable(getattr(inner, "query_batch", None)),
            count=callable(getattr(inner, "count", None)),
        )

    def query(self, pattern) -> float:
        return float(self.inner.query(pattern))

    def query_batch(self, patterns) -> list[float]:
        native = getattr(self.inner, "query_batch", None)
        if callable(native):
            return [float(v) for v in native(patterns)]
        return [float(self.inner.query(p)) for p in patterns]

    def count(self, pattern) -> int:
        native = getattr(self.inner, "count", None)
        if callable(native):
            return int(native(pattern))
        return super().count(pattern)


def infer_backend_name(engine) -> "str | None":
    """Canonical backend name for a raw engine instance, if known."""
    if isinstance(engine, UtilityIndexBase):
        return engine.backend_name
    if isinstance(engine, UsiIndex):
        from repro.succinct.fm_index import FmIndex

        if isinstance(engine.suffix_array, FmIndex):
            return "fm"
        if engine.report.miner == "approximate":
            return "uat"
        return "usi"
    if isinstance(engine, DynamicUsiIndex):
        return "dynamic"
    if isinstance(engine, CollectionUsiIndex):
        return "collection"
    if isinstance(engine, Bsl1NoCache):
        return "bsl1"
    if isinstance(engine, Bsl2LruCache):
        return "bsl2"
    if isinstance(engine, Bsl3TopKSeen):
        return "bsl3"
    if isinstance(engine, Bsl4SketchTopKSeen):
        return "bsl4"
    # Imported lazily to avoid service/ingest <-> api import cycles.
    from repro.service.sharding import ShardedUsiIndex

    if isinstance(engine, ShardedUsiIndex):
        return "sharded"
    from repro.ingest.live import LiveIndex

    if isinstance(engine, LiveIndex):
        return "live"
    return None


def wrap(engine) -> UtilityIndexBase:
    """Coerce *engine* into its protocol adapter.

    Registered engine types get their canonical adapter; anything else
    with a ``query`` method gets a :class:`GenericAdapter`.  Already-
    wrapped objects pass through unchanged, so ``wrap`` is idempotent.
    """
    if isinstance(engine, UtilityIndexBase):
        return engine
    name = infer_backend_name(engine)
    if name is None:
        return GenericAdapter(engine)
    from repro.api.registry import get_backend

    return get_backend(name)(engine)
