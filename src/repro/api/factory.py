"""Top-level factories: ``repro.build`` and ``repro.open``.

One entry point builds any registered backend from text, a weighted
string, or a collection; the other reopens any index file the library
ever wrote (legacy ``.npz``, legacy pickle, or the tagged multi-backend
container) as a protocol object.
"""

from __future__ import annotations

from pathlib import Path

from repro.api.adapters import wrap
from repro.api.protocol import UtilityIndexBase
from repro.api.registry import get_backend


def build(
    source,
    *,
    backend: str = "usi",
    k: "int | None" = None,
    tau: "int | None" = None,
    kernel=None,
    **options,
) -> UtilityIndexBase:
    """Build a utility index over *source* with the named backend.

    Parameters
    ----------
    source:
        Text (``str``/``bytes``, uniform utilities), a
        :class:`~repro.strings.weighted.WeightedString`, a
        :class:`~repro.strings.collection.WeightedStringCollection`,
        or a list of weighted documents (collection backends).
    backend:
        A registered backend name or alias — see
        :func:`repro.api.available_backends`.
    k, tau:
        The Section-V trade-off knobs, forwarded to the backend (at
        most one; a default ``k`` applies when neither is given).
    kernel:
        An optional shared :class:`repro.kernel.TextKernel` over the
        same text.  Kernel-aware backends (``usi``/``uat``/``fm``,
        ``oracle``, ``bsl1``-``bsl4``, ``collection``) then reuse its
        suffix array, PSW, and fingerprint tables instead of building
        private copies — build the substrate once, index it many ways.
    options:
        Backend-specific build options (``aggregator``, ``miner``,
        ``shards``, ``capacity``, ...).

    Examples
    --------
    >>> import repro                                    # doctest: +SKIP
    >>> index = repro.build(ws, k=5, backend="usi")     # doctest: +SKIP
    >>> index.query("TACCCC")                           # doctest: +SKIP
    14.6
    """
    adapter = get_backend(backend)
    kwargs = dict(options)
    if k is not None:
        kwargs["k"] = k
    if tau is not None:
        kwargs["tau"] = tau
    if kernel is not None:
        if not adapter.kernel_aware:
            from repro.errors import ParameterError

            raise ParameterError(
                f"backend {backend!r} does not accept a shared kernel"
            )
        kwargs["kernel"] = kernel
    return adapter.build(source, **kwargs)


def open_index(
    path: "str | Path", allow_pickle: bool = True, mmap: bool = False
) -> UtilityIndexBase:
    """Reopen a saved index as a protocol object (any backend).

    Dispatches on the file contents, not the extension: the legacy v1
    ``.npz`` format, the tagged v2 container, the kernel-aware v3
    container, and legacy pickles all reopen, wrapped in their backend
    adapter.  Tagged containers and pickles execute pickle bytecode on
    load — open only files you trust, or pass ``allow_pickle=False``
    to accept the pickle-free v1/v3 layouts only.

    With ``mmap=True`` the substrate arrays of a v3 container are
    memory-mapped read-only (``mmap_mode="r"``) instead of
    materialised, so large indexes open lazily; compressed legacy
    formats cannot be mapped and load eagerly regardless.
    """
    from repro.io import load_any

    engine, backend = load_any(path, allow_pickle=allow_pickle, mmap=mmap)
    if backend is not None and not isinstance(engine, UtilityIndexBase):
        return get_backend(backend)(engine)
    return wrap(engine)


def as_index(index) -> UtilityIndexBase:
    """Coerce *index* (raw engine or adapter) to the protocol surface."""
    return wrap(index)
