"""``repro.api`` — one index protocol + a backend registry.

The public surface:

* :class:`UtilityIndex` / :class:`UtilityIndexBase` — the protocol
  every engine family conforms to (``build`` / ``query`` /
  ``query_batch`` / ``count`` / ``stats`` / ``capabilities``);
* :class:`QueryResult` / :class:`IndexInfo` — the structured answers;
* :func:`register_backend` / :func:`get_backend` /
  :func:`available_backends` — the string-keyed registry;
* :func:`build` / :func:`open_index` — the factories re-exported at
  the top level as ``repro.build`` / ``repro.open``;
* :func:`as_index` — coerce any raw engine to the protocol surface.
"""

from repro.api.protocol import (
    Capabilities,
    IndexInfo,
    QueryResult,
    UtilityIndex,
    UtilityIndexBase,
)
from repro.api.registry import (
    available_backends,
    backend_aliases,
    describe_backends,
    get_backend,
    register_backend,
    resolve_backend_name,
)
from repro.api import adapters as _adapters  # noqa: F401 - registers backends
from repro.api.adapters import DEFAULT_K, infer_backend_name, wrap
from repro.api.factory import as_index, build, open_index
from repro.ingest import backend as _live_backend  # noqa: F401 - registers "live"

__all__ = [
    "Capabilities",
    "DEFAULT_K",
    "IndexInfo",
    "QueryResult",
    "UtilityIndex",
    "UtilityIndexBase",
    "as_index",
    "available_backends",
    "backend_aliases",
    "build",
    "describe_backends",
    "get_backend",
    "infer_backend_name",
    "open_index",
    "register_backend",
    "resolve_backend_name",
    "wrap",
]
