"""The one index protocol every USI engine speaks.

The paper evaluates a single problem — global utilities of query
patterns over a weighted string — across many engines: the USI index
(UET/UAT), the Section-V oracle, the Section-VI approximate miner, the
four baselines, the dynamic and collection extensions, and the sharded
serving index.  :class:`UtilityIndex` is the structural contract they
all satisfy, and :class:`UtilityIndexBase` is the concrete base class
the adapters in :mod:`repro.api.adapters` inherit from; it supplies
the per-pattern ``query_batch`` fallback, so a backend only *must*
implement ``query``.

The dataclass pair :class:`QueryResult` / :class:`IndexInfo` is the
protocol's structured currency: one answered pattern, and one
described index (the ``stats()`` payload, also what ``GET /indexes``
reports per backend).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol, Sequence, runtime_checkable

#: A pattern in any of the forms the engines accept.
PatternLike = "str | bytes | Sequence[int]"


@dataclass(frozen=True)
class Capabilities:
    """What a backend can do beyond plain ``query``.

    ``batch``
        Has a vectorised/native ``query_batch`` (everything still
        *answers* batches; this flag says the backend does better than
        the per-pattern fallback).
    ``dynamic``
        Supports ``append``/``extend`` after construction.
    ``collection``
        Indexes multi-document inputs (a
        :class:`~repro.strings.collection.WeightedStringCollection`).
    ``approximate``
        Mining is randomised/approximate (answers for *stored* patterns
        remain exact utilities; the flag marks which patterns get the
        fast path, not answer quality).
    ``count``
        Supports exact occurrence counting via ``count``.
    ``persistent``
        Round-trips through :func:`repro.io.save_index` /
        :func:`repro.open`.

    Every flag defaults to ``False`` — the truthful description of a
    minimal backend that only implements ``query`` — so an adapter
    must explicitly claim what it actually provides.
    """

    batch: bool = False
    dynamic: bool = False
    collection: bool = False
    approximate: bool = False
    count: bool = False
    persistent: bool = False

    def as_dict(self) -> dict[str, bool]:
        return {
            "batch": self.batch,
            "dynamic": self.dynamic,
            "collection": self.collection,
            "approximate": self.approximate,
            "count": self.count,
            "persistent": self.persistent,
        }


@dataclass(frozen=True)
class QueryResult:
    """One answered pattern: ``U(pattern)`` plus optional extras."""

    pattern: Any
    utility: float
    count: "int | None" = None

    def as_dict(self) -> dict:
        row: dict = {"pattern": self.pattern, "utility": self.utility}
        if self.count is not None:
            row["count"] = self.count
        return row


@dataclass
class IndexInfo:
    """One described index: the ``stats()`` payload of the protocol."""

    backend: str
    capabilities: Capabilities
    size_bytes: "int | None" = None
    detail: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "backend": self.backend,
            "capabilities": self.capabilities.as_dict(),
            "size_bytes": self.size_bytes,
            "detail": dict(self.detail),
        }


@runtime_checkable
class UtilityIndex(Protocol):
    """Structural protocol: what every registered backend exposes."""

    backend_name: str
    capabilities: Capabilities

    def query(self, pattern: PatternLike) -> float: ...

    def query_batch(self, patterns: "Sequence[PatternLike]") -> list[float]: ...

    def stats(self) -> IndexInfo: ...


class UtilityIndexBase:
    """Concrete base for backend adapters.

    Subclasses set :attr:`backend_name` / :attr:`capabilities`, provide
    a ``build`` classmethod and ``query``, and get conforming
    ``query_batch`` / ``count`` / ``stats`` / ``query_result`` for
    free.  ``query_batch`` here is *the* protocol-level fallback:
    engines without a native batch path are looped per pattern, which
    is exactly what :class:`~repro.service.engine.QueryEngine` relies
    on instead of probing attributes.
    """

    backend_name: str = "abstract"
    capabilities: Capabilities = Capabilities()
    #: Whether ``build`` accepts a shared ``kernel=`` (a pre-built
    #: :class:`repro.kernel.TextKernel` over the same text), letting
    #: several backends share one substrate instead of re-encoding.
    kernel_aware: bool = False

    @classmethod
    def build(cls, source, **options) -> "UtilityIndexBase":
        raise NotImplementedError(
            f"backend {cls.backend_name!r} does not define build()"
        )

    def query(self, pattern: PatternLike) -> float:
        raise NotImplementedError

    def query_batch(self, patterns: "Sequence[PatternLike]") -> list[float]:
        """Per-pattern fallback; overridden by batch-native adapters."""
        return [float(self.query(pattern)) for pattern in patterns]

    def count(self, pattern: PatternLike) -> int:
        raise NotImplementedError(
            f"backend {self.backend_name!r} does not support count()"
        )

    def count_batch(self, patterns: "Sequence[PatternLike]") -> list[int]:
        """Bulk exact counts; the fallback loops :meth:`count`.

        Backends whose engine has a vectorised ``count_batch`` (the
        USI family, sharded) override this with a passthrough.  Only
        meaningful where ``capabilities.count`` is set.
        """
        return [int(self.count(pattern)) for pattern in patterns]

    def query_result(self, pattern: PatternLike, with_count: bool = False) -> QueryResult:
        """One :class:`QueryResult`, optionally with the exact count."""
        count = self.count(pattern) if with_count and self.capabilities.count else None
        return QueryResult(pattern=pattern, utility=float(self.query(pattern)), count=count)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def data_version(self) -> int:
        """Monotone counter that moves exactly when answers may change.

        Static backends stay at 0 forever.  Mutable backends (the
        ``dynamic`` capability) bump it on every mutation, which is
        what lets :class:`~repro.service.engine.QueryEngine` keep an
        answer cache over a moving index without ever serving a stale
        value.  The default delegates to the wrapped engine when it
        exposes ``data_version`` and reports 0 otherwise.
        """
        inner = getattr(self, "inner", None)
        version = getattr(inner, "data_version", None)
        if callable(version):
            return int(version())
        return 0

    def nbytes(self) -> "int | None":
        inner = getattr(self, "inner", None)
        size = getattr(inner, "nbytes", None)
        if callable(size):
            return int(size())
        return None

    def stats(self) -> IndexInfo:
        return IndexInfo(
            backend=self.backend_name,
            capabilities=self.capabilities,
            size_bytes=self.nbytes(),
            detail=self._stats_detail(),
        )

    def _stats_detail(self) -> dict:
        """Backend-specific extras folded into :meth:`stats`."""
        return {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} backend={self.backend_name!r}>"
