"""The string-keyed backend registry.

Backends register themselves with the :func:`register_backend` class
decorator; :func:`repro.build` and :func:`repro.open` dispatch through
:func:`get_backend`.  Registering is cheap metadata bookkeeping, so a
future backend (tiered storage, a remote index, a GPU engine) plugs in
with one decorated adapter class and immediately works with the
factories, the query engine, the HTTP server, the CLI, and the
conformance test suite.
"""

from __future__ import annotations

from typing import Callable, Iterable, Type

from repro.errors import ParameterError
from repro.api.protocol import UtilityIndexBase

_BACKENDS: "dict[str, Type[UtilityIndexBase]]" = {}
_ALIASES: "dict[str, str]" = {}


def register_backend(
    name: str, *, aliases: "Iterable[str]" = ()
) -> "Callable[[Type[UtilityIndexBase]], Type[UtilityIndexBase]]":
    """Class decorator: register an adapter under *name* (plus aliases).

    >>> @register_backend("usi", aliases=("uet",))   # doctest: +SKIP
    ... class UsiBackend(UtilityIndexBase): ...
    """

    def decorate(cls: "Type[UtilityIndexBase]") -> "Type[UtilityIndexBase]":
        if name in _BACKENDS or name in _ALIASES:
            raise ParameterError(f"backend {name!r} is already registered")
        cls.backend_name = name
        _BACKENDS[name] = cls
        for alias in aliases:
            if alias in _BACKENDS or alias in _ALIASES:
                raise ParameterError(f"backend alias {alias!r} is already taken")
            _ALIASES[alias] = name
        return cls

    return decorate


def resolve_backend_name(name: str) -> str:
    """Canonical name for *name* (resolving aliases); raises if unknown."""
    if name in _BACKENDS:
        return name
    if name in _ALIASES:
        return _ALIASES[name]
    known = ", ".join(sorted(_BACKENDS) + sorted(_ALIASES))
    raise ParameterError(f"unknown backend {name!r}; registered: {known}")


def get_backend(name: str) -> "Type[UtilityIndexBase]":
    """The adapter class registered under *name* (or an alias of it)."""
    return _BACKENDS[resolve_backend_name(name)]


def available_backends() -> list[str]:
    """Sorted canonical backend names."""
    return sorted(_BACKENDS)


def backend_aliases() -> dict[str, str]:
    """The alias -> canonical-name mapping."""
    return dict(_ALIASES)


def describe_backends() -> dict[str, dict]:
    """One row per backend: capabilities + docstring summary."""
    rows = {}
    for name in available_backends():
        cls = _BACKENDS[name]
        summary = (cls.__doc__ or "").strip().splitlines()
        rows[name] = {
            "backend": name,
            "capabilities": cls.capabilities.as_dict(),
            "description": summary[0] if summary else "",
        }
    return rows
