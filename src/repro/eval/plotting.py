"""ASCII line charts for benchmark figures.

The paper's figures are line plots (accuracy vs K, query time vs p,
...).  The benchmark harness renders the same series as monospace
charts so a full run leaves figure-shaped artefacts in ``results/``
without any plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ParameterError

_MARKERS = "ox+*#@%&"


def ascii_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    title: "str | None" = None,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named (x, y) series as a monospace chart.

    Each series gets a marker; later series overwrite earlier ones on
    collisions.  Axes are linear and annotated with min/max.
    """
    if not series:
        raise ParameterError("at least one series is required")
    if width < 8 or height < 4:
        raise ParameterError("chart too small to draw")
    points = [p for pts in series.values() for p in pts]
    if not points:
        raise ParameterError("series contain no points")

    xs = [float(p[0]) for p in points]
    ys = [float(p[1]) for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in pts:
            col = int(round((float(x) - x_lo) / x_span * (width - 1)))
            row = int(round((float(y) - y_lo) / y_span * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:g}"
    bottom_label = f"{y_lo:g}"
    margin = max(len(top_label), len(bottom_label), len(y_label)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(margin)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(margin)
        elif row_index == height // 2 and y_label:
            prefix = y_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * margin + "+" + "-" * width)
    x_axis = f"{x_lo:g}".ljust(width - len(f"{x_hi:g}")) + f"{x_hi:g}"
    lines.append(" " * (margin + 1) + x_axis)
    if x_label:
        lines.append(" " * (margin + 1) + x_label.center(width))
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * (margin + 1) + legend)
    return "\n".join(lines)
