"""Plain-text table rendering for experiment outputs.

The benchmark harness prints the same rows/series the paper's tables
and figures report; this module renders them consistently.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: "str | None" = None,
) -> str:
    """Render an aligned monospace table."""
    str_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
