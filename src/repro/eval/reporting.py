"""Plain-text table rendering for experiment outputs.

The benchmark harness prints the same rows/series the paper's tables
and figures report; this module renders them consistently.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_build_profile(report, n: "int | None" = None) -> str:
    """Render a :class:`~repro.core.usi.UsiBuildReport` stage breakdown.

    One row per pipeline stage (suffix array, LCP, mining, table,
    other) with seconds and share of the end-to-end total — the
    ``usi build --profile`` output and the build-benchmark table.
    """
    stages = report.stage_seconds()
    total = stages.get("total", 0.0) or sum(
        v for k, v in stages.items() if k != "total"
    )
    rows = []
    for stage, seconds in stages.items():
        if stage == "total":
            continue
        share = f"{100.0 * seconds / total:.1f}%" if total else "-"
        note = ""
        if stage == "lcp" and report.lcp_source:
            note = f"({report.lcp_source})"
        rows.append([stage, f"{seconds * 1e3:.1f} ms", share, note])
    rows.append(["total", f"{total * 1e3:.1f} ms", "100.0%", ""])
    title = f"build profile: miner={report.miner} K={report.k}"
    if n:
        title += f" n={n}"
    return format_table(["stage", "time", "share", ""], rows, title=title)


def format_query_profile(profile, wall_seconds: "float | None" = None) -> str:
    """Render a :class:`~repro.profiling.QueryProfile` stage breakdown.

    One row per query-pipeline stage (encode, cache, locate, gather,
    merge) with seconds and share — the ``usi query --profile`` output,
    the serving twin of :func:`format_build_profile`.  *wall_seconds*,
    when given, adds an ``other`` row (wall time the stages do not
    account for: result assembly, Python plumbing) and a throughput
    line.
    """
    stages = profile.ordered_stages()
    accounted = sum(seconds for _, seconds in stages)
    total = wall_seconds if wall_seconds is not None else accounted
    rows = []
    for stage, seconds in stages:
        share = f"{100.0 * seconds / total:.1f}%" if total else "-"
        rows.append([stage, f"{seconds * 1e3:.1f} ms", share])
    if wall_seconds is not None:
        other = max(wall_seconds - accounted, 0.0)
        share = f"{100.0 * other / total:.1f}%" if total else "-"
        rows.append(["other", f"{other * 1e3:.1f} ms", share])
    rows.append(["total", f"{total * 1e3:.1f} ms", "100.0%" if total else "-"])
    title = f"query profile: {profile.patterns} patterns in {profile.calls} calls"
    if total and profile.patterns:
        title += f" ({profile.patterns / total:,.0f} patterns/s)"
    return format_table(["stage", "time", "share"], rows, title=title)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: "str | None" = None,
) -> str:
    """Render an aligned monospace table."""
    str_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
