"""Experiment runner utilities: timing and peak-memory measurement.

The paper measures query/construction time with ``chrono`` and peak
construction space with ``/usr/bin/time -v``; the Python equivalents
are ``time.perf_counter`` and ``tracemalloc`` (Python-heap peak),
complemented by each structure's analytic ``nbytes()`` accounting.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np


@dataclass
class MinerRun:
    """One measured miner execution."""

    name: str
    results: Any
    seconds: float
    peak_bytes: int


def measure_call(fn: Callable[[], Any], trace_memory: bool = True) -> tuple[Any, float, int]:
    """Run *fn*, returning (result, wall seconds, peak traced bytes)."""
    if trace_memory:
        tracemalloc.start()
    start = time.perf_counter()
    try:
        result = fn()
    finally:
        seconds = time.perf_counter() - start
        if trace_memory:
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        else:
            peak = 0
    return result, seconds, peak


def run_miner(name: str, mine: Callable[[], Any], trace_memory: bool = True) -> MinerRun:
    """Measure one miner run and label it for reports."""
    results, seconds, peak = measure_call(mine, trace_memory)
    return MinerRun(name=name, results=results, seconds=seconds, peak_bytes=peak)


def average_query_seconds(query: Callable[[Any], Any], patterns: list) -> float:
    """Mean wall-clock seconds per query over a workload."""
    if not patterns:
        return 0.0
    start = time.perf_counter()
    for pattern in patterns:
        query(pattern)
    return (time.perf_counter() - start) / len(patterns)


@dataclass
class BackendRun:
    """One backend measured over one workload (protocol-level)."""

    backend: str
    build_seconds: float
    build_peak_bytes: int
    query_seconds_mean: float
    answers: list
    size_bytes: "int | None"
    shared_kernel: bool = False


def compare_backends(
    source: Any,
    patterns: list,
    backends: "list[str] | None" = None,
    trace_memory: bool = True,
    share_kernel: bool = True,
    **build_options: Any,
) -> list[BackendRun]:
    """Run one workload through any set of registered backends.

    The protocol-level evaluation loop: each named backend (default:
    every registered one) is built over *source* through
    :func:`repro.build`, timed, and queried through ``query_batch``.
    Exact backends must produce identical ``answers`` rows, so this
    doubles as the cross-engine consistency harness the paper's
    evaluation tables rely on.

    With ``share_kernel`` (the default) one
    :class:`~repro.kernel.TextKernel` is built over *source* up front
    and injected into every kernel-aware backend, so the text is
    encoded and suffix-sorted exactly once for the whole sweep;
    per-backend ``build_seconds`` then measure only the work each
    engine adds on top of the shared substrate (rows carry a
    ``shared_kernel`` flag).  Pass ``share_kernel=False`` for the old
    every-backend-from-scratch timing.

    With the default backend set, backends that cannot index *source*
    (e.g. single-string engines handed a collection) are skipped; an
    explicit *backends* list propagates the error instead.
    """
    from repro.api import available_backends, build, get_backend
    from repro.errors import ReproError
    from repro.kernel import TextKernel

    explicit = backends is not None
    names = list(backends) if explicit else available_backends()
    kernel = None
    if share_kernel:
        try:
            kernel = TextKernel.build(source)
        except ReproError:
            kernel = None  # e.g. a bare document list; backends coerce it
    runs: list[BackendRun] = []
    for name in names:
        use_kernel = kernel is not None and get_backend(name).kernel_aware
        options = dict(build_options)
        if use_kernel:
            options["kernel"] = kernel
        try:
            index, build_seconds, peak = measure_call(
                lambda name=name, options=options: build(
                    source, backend=name, **options
                ),
                trace_memory,
            )
        except (ReproError, TypeError):
            # ReproError: the backend cannot index this source;
            # TypeError: a build option this backend does not accept.
            if explicit:
                raise
            continue
        start = time.perf_counter()
        answers = index.query_batch(patterns)
        per_query = (
            (time.perf_counter() - start) / len(patterns) if patterns else 0.0
        )
        runs.append(
            BackendRun(
                backend=name,
                build_seconds=build_seconds,
                build_peak_bytes=peak,
                query_seconds_mean=per_query,
                answers=[float(a) for a in answers],
                size_bytes=index.stats().size_bytes,
                shared_kernel=use_kernel,
            )
        )
    return runs


# ----------------------------------------------------------------------
# The scenario matrix (backend × scenario × workload)
# ----------------------------------------------------------------------
@dataclass
class ScenarioCell:
    """One (scenario, workload, backend) cell of the regression matrix."""

    scenario: str
    workload: str
    backend: str
    n: int
    num_queries: int
    build_seconds: float
    query_seconds_mean: float
    qps: float
    size_bytes: "int | None"
    shared_kernel: bool
    exact: bool
    mismatch: bool

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "workload": self.workload,
            "backend": self.backend,
            "n": self.n,
            "num_queries": self.num_queries,
            "build_seconds": round(self.build_seconds, 6),
            "query_seconds_mean": round(self.query_seconds_mean, 9),
            "qps": round(self.qps, 1),
            "size_bytes": self.size_bytes,
            "shared_kernel": self.shared_kernel,
            "exact": self.exact,
            "mismatch": self.mismatch,
        }


def run_scenario_matrix(
    scenarios: "list[str] | None" = None,
    workloads: "list[str] | None" = None,
    backends: "list[str] | None" = None,
    n: "int | None" = None,
    num_queries: int = 60,
    seed: int = 0,
    trace_memory: bool = False,
    check_baselines: bool = True,
) -> dict:
    """Run the backend × scenario × workload regression matrix.

    Every cell goes through :func:`compare_backends` (one shared
    kernel per sweep), so each registered world exercises exactly the
    protocol path production queries take.  For every (scenario,
    workload) pair the answers of all *exact* backends (every backend
    whose capabilities do not claim ``approximate``) are compared; a
    divergence is recorded in ``mismatches`` — the empty list is the
    regression gate.

    At the pinned size (``n=None``, ``seed=0``) each scenario's
    corpus/workload/top-k/answer digests are also re-verified against
    :data:`repro.datasets.baselines.PINNED_BASELINES`; with an ``n``
    override the baseline check is skipped (recorded as such).

    Returns a JSON-ready payload: ``rows`` (one dict per cell),
    ``mismatches``, ``baseline_checks``, and the swept axes.
    """
    from repro.api import get_backend
    from repro.core.topk_oracle import TopKOracle
    from repro.datasets.baselines import verify_baseline
    from repro.datasets.scenarios import available_scenarios, get_scenario
    from repro.datasets.workloads import get_workload
    from repro.suffix.suffix_array import SuffixArray

    scenario_names = list(scenarios) if scenarios else available_scenarios()
    rows: list[ScenarioCell] = []
    mismatches: list[dict] = []
    baseline_checks: dict[str, "str | list[str]"] = {}
    backends_seen: set[str] = set()

    for scenario_name in scenario_names:
        scenario = get_scenario(scenario_name)
        corpus = scenario.make(n, seed=seed)
        source = scenario.workload_source(corpus)
        oracle = TopKOracle(SuffixArray(source.codes))
        scenario_workloads = [
            w for w in (workloads or scenario.workloads)
            if w in scenario.workloads
        ]
        if backends is None:
            backend_names = list(scenario.backends())
        elif scenario.kind == "collection":
            backend_names = [
                b for b in backends if get_backend(b).capabilities.collection
            ]
        else:
            backend_names = list(backends)
        if not backend_names:
            baseline_checks.setdefault(
                scenario_name, "skipped (no compatible backend)"
            )
            continue

        for workload_name in scenario_workloads:
            get_workload(workload_name)  # fail fast on unknown names
            patterns = scenario.build_workload(
                corpus, workload_name, num_queries, seed=seed, oracle=oracle
            )
            runs = compare_backends(
                corpus,
                patterns,
                backends=backend_names,
                trace_memory=trace_memory,
            )
            reference: "BackendRun | None" = None
            for run in runs:
                exact = not get_backend(run.backend).capabilities.approximate
                if exact and reference is None:
                    reference = run
            for run in runs:
                exact = not get_backend(run.backend).capabilities.approximate
                mismatch = False
                if exact and reference is not None and run is not reference:
                    mismatch = not np.allclose(
                        run.answers, reference.answers, rtol=1e-9, atol=1e-9
                    )
                if mismatch:
                    diffs = np.abs(
                        np.asarray(run.answers) - np.asarray(reference.answers)
                    )
                    mismatches.append({
                        "scenario": scenario_name,
                        "workload": workload_name,
                        "backend": run.backend,
                        "reference": reference.backend,
                        "max_abs_diff": float(diffs.max()),
                    })
                backends_seen.add(run.backend)
                rows.append(ScenarioCell(
                    scenario=scenario_name,
                    workload=workload_name,
                    backend=run.backend,
                    n=scenario.combined_view(corpus).length,
                    num_queries=len(patterns),
                    build_seconds=run.build_seconds,
                    query_seconds_mean=run.query_seconds_mean,
                    qps=(
                        1.0 / run.query_seconds_mean
                        if run.query_seconds_mean > 0 else 0.0
                    ),
                    size_bytes=run.size_bytes,
                    shared_kernel=run.shared_kernel,
                    exact=exact,
                    mismatch=mismatch,
                ))

        if not check_baselines:
            baseline_checks[scenario_name] = "skipped"
        elif n is not None or seed != 0:
            baseline_checks[scenario_name] = "skipped (non-pinned n or seed)"
        else:
            problems = verify_baseline(scenario_name)
            baseline_checks[scenario_name] = "ok" if not problems else problems

    return {
        "n_override": n,
        "num_queries": num_queries,
        "seed": seed,
        "scenarios": scenario_names,
        "workloads": sorted({row.workload for row in rows}),
        "backends": sorted(backends_seen),
        "rows": [row.as_dict() for row in rows],
        "mismatches": mismatches,
        "baseline_checks": baseline_checks,
    }
