"""Experiment runner utilities: timing and peak-memory measurement.

The paper measures query/construction time with ``chrono`` and peak
construction space with ``/usr/bin/time -v``; the Python equivalents
are ``time.perf_counter`` and ``tracemalloc`` (Python-heap peak),
complemented by each structure's analytic ``nbytes()`` accounting.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from typing import Any, Callable


@dataclass
class MinerRun:
    """One measured miner execution."""

    name: str
    results: Any
    seconds: float
    peak_bytes: int


def measure_call(fn: Callable[[], Any], trace_memory: bool = True) -> tuple[Any, float, int]:
    """Run *fn*, returning (result, wall seconds, peak traced bytes)."""
    if trace_memory:
        tracemalloc.start()
    start = time.perf_counter()
    try:
        result = fn()
    finally:
        seconds = time.perf_counter() - start
        if trace_memory:
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        else:
            peak = 0
    return result, seconds, peak


def run_miner(name: str, mine: Callable[[], Any], trace_memory: bool = True) -> MinerRun:
    """Measure one miner run and label it for reports."""
    results, seconds, peak = measure_call(mine, trace_memory)
    return MinerRun(name=name, results=results, seconds=seconds, peak_bytes=peak)


def average_query_seconds(query: Callable[[Any], Any], patterns: list) -> float:
    """Mean wall-clock seconds per query over a workload."""
    if not patterns:
        return 0.0
    start = time.perf_counter()
    for pattern in patterns:
        query(pattern)
    return (time.perf_counter() - start) / len(patterns)
