"""Experiment runner utilities: timing and peak-memory measurement.

The paper measures query/construction time with ``chrono`` and peak
construction space with ``/usr/bin/time -v``; the Python equivalents
are ``time.perf_counter`` and ``tracemalloc`` (Python-heap peak),
complemented by each structure's analytic ``nbytes()`` accounting.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from typing import Any, Callable


@dataclass
class MinerRun:
    """One measured miner execution."""

    name: str
    results: Any
    seconds: float
    peak_bytes: int


def measure_call(fn: Callable[[], Any], trace_memory: bool = True) -> tuple[Any, float, int]:
    """Run *fn*, returning (result, wall seconds, peak traced bytes)."""
    if trace_memory:
        tracemalloc.start()
    start = time.perf_counter()
    try:
        result = fn()
    finally:
        seconds = time.perf_counter() - start
        if trace_memory:
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        else:
            peak = 0
    return result, seconds, peak


def run_miner(name: str, mine: Callable[[], Any], trace_memory: bool = True) -> MinerRun:
    """Measure one miner run and label it for reports."""
    results, seconds, peak = measure_call(mine, trace_memory)
    return MinerRun(name=name, results=results, seconds=seconds, peak_bytes=peak)


def average_query_seconds(query: Callable[[Any], Any], patterns: list) -> float:
    """Mean wall-clock seconds per query over a workload."""
    if not patterns:
        return 0.0
    start = time.perf_counter()
    for pattern in patterns:
        query(pattern)
    return (time.perf_counter() - start) / len(patterns)


@dataclass
class BackendRun:
    """One backend measured over one workload (protocol-level)."""

    backend: str
    build_seconds: float
    build_peak_bytes: int
    query_seconds_mean: float
    answers: list
    size_bytes: "int | None"
    shared_kernel: bool = False


def compare_backends(
    source: Any,
    patterns: list,
    backends: "list[str] | None" = None,
    trace_memory: bool = True,
    share_kernel: bool = True,
    **build_options: Any,
) -> list[BackendRun]:
    """Run one workload through any set of registered backends.

    The protocol-level evaluation loop: each named backend (default:
    every registered one) is built over *source* through
    :func:`repro.build`, timed, and queried through ``query_batch``.
    Exact backends must produce identical ``answers`` rows, so this
    doubles as the cross-engine consistency harness the paper's
    evaluation tables rely on.

    With ``share_kernel`` (the default) one
    :class:`~repro.kernel.TextKernel` is built over *source* up front
    and injected into every kernel-aware backend, so the text is
    encoded and suffix-sorted exactly once for the whole sweep;
    per-backend ``build_seconds`` then measure only the work each
    engine adds on top of the shared substrate (rows carry a
    ``shared_kernel`` flag).  Pass ``share_kernel=False`` for the old
    every-backend-from-scratch timing.

    With the default backend set, backends that cannot index *source*
    (e.g. single-string engines handed a collection) are skipped; an
    explicit *backends* list propagates the error instead.
    """
    from repro.api import available_backends, build, get_backend
    from repro.errors import ReproError
    from repro.kernel import TextKernel

    explicit = backends is not None
    names = list(backends) if explicit else available_backends()
    kernel = None
    if share_kernel:
        try:
            kernel = TextKernel.build(source)
        except ReproError:
            kernel = None  # e.g. a bare document list; backends coerce it
    runs: list[BackendRun] = []
    for name in names:
        use_kernel = kernel is not None and get_backend(name).kernel_aware
        options = dict(build_options)
        if use_kernel:
            options["kernel"] = kernel
        try:
            index, build_seconds, peak = measure_call(
                lambda name=name, options=options: build(
                    source, backend=name, **options
                ),
                trace_memory,
            )
        except (ReproError, TypeError):
            # ReproError: the backend cannot index this source;
            # TypeError: a build option this backend does not accept.
            if explicit:
                raise
            continue
        start = time.perf_counter()
        answers = index.query_batch(patterns)
        per_query = (
            (time.perf_counter() - start) / len(patterns) if patterns else 0.0
        )
        runs.append(
            BackendRun(
                backend=name,
                build_seconds=build_seconds,
                build_peak_bytes=peak,
                query_seconds_mean=per_query,
                answers=[float(a) for a in answers],
                size_bytes=index.stats().size_bytes,
                shared_kernel=use_kernel,
            )
        )
    return runs
