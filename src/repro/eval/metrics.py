"""Mining-quality measures: Accuracy, Relative Error, NDCG (Section IX-B).

All three compare an estimated top-K list against the exact one:

* **Accuracy** — the percentage of reported substrings that belong to
  the true top-K *and* whose reported frequency equals their true
  frequency.  Membership is judged threshold-robustly: a substring is
  "in the true top-K" when its true frequency is at least ``tau_K``
  (the smallest true top-K frequency), so an estimator is never
  penalised for resolving frequency *ties* differently from the exact
  algorithm.
* **Relative Error** — the paper's definition: the gap between the
  total true frequency of the exact top-K and the total true frequency
  of the reported substrings, normalised by the former.
* **NDCG** — discounted cumulative gain of the reported list using the
  substrings' true frequencies as gains, against the ideal ranking.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.topk_oracle import TopKOracle
from repro.core.types import MinedSubstring
from repro.errors import ParameterError
from repro.suffix.suffix_array import SuffixArray


@dataclass(frozen=True)
class MinerScores:
    """Quality of one estimated top-K list."""

    accuracy_percent: float
    relative_error: float
    ndcg: float
    k: int


def _dedupe(results: list[MinedSubstring], text: np.ndarray) -> list[MinedSubstring]:
    """Drop content-duplicate reports (keep the first occurrence)."""
    seen: set[tuple] = set()
    unique: list[MinedSubstring] = []
    for r in results:
        key = r.key(text)
        if key not in seen:
            seen.add(key)
            unique.append(r)
    return unique


def ndcg(gains: "list[float] | np.ndarray", ideal: "list[float] | np.ndarray") -> float:
    """Normalised DCG with linear gains and log2 position discounts."""
    gains = np.asarray(gains, dtype=np.float64)
    ideal = np.sort(np.asarray(ideal, dtype=np.float64))[::-1]
    k = len(ideal)
    if k == 0:
        return 1.0
    padded = np.zeros(k)
    padded[: min(k, len(gains))] = gains[:k]
    discounts = 1.0 / np.log2(np.arange(2, k + 2))
    idcg = float((ideal * discounts).sum())
    if idcg == 0:
        return 1.0
    return float((padded * discounts).sum()) / idcg


def evaluate_miner(
    results: list[MinedSubstring],
    index: SuffixArray,
    k: int,
    oracle: "TopKOracle | None" = None,
) -> MinerScores:
    """Score an estimated top-K list against the exact one.

    Parameters
    ----------
    results:
        The miner's output (witness tuples).
    index:
        A suffix array of the text — used both for the exact top-K
        (through the Section-V oracle) and for true frequency lookups
        of the reported substrings.
    k:
        The K both lists target.
    oracle:
        Optionally a prebuilt oracle over *index* (saves rebuilding in
        sweeps).
    """
    if k < 1:
        raise ParameterError("k must be positive")
    oracle = oracle or TopKOracle(index)
    truth = oracle.top_k(k)
    true_freqs = np.asarray([t.frequency for t in truth], dtype=np.float64)
    tau = int(true_freqs[-1]) if len(true_freqs) else 0

    text = index.codes
    unique = _dedupe(results, text)[:k]
    reported_true = np.asarray(
        [index.count(r.codes(text)) for r in unique], dtype=np.float64
    )

    correct = sum(
        1
        for r, f_true in zip(unique, reported_true)
        if f_true >= tau and r.frequency == int(f_true)
    )
    accuracy = 100.0 * correct / k

    total_true = float(true_freqs.sum())
    relative_error = (
        (total_true - float(reported_true.sum())) / total_true if total_true else 0.0
    )

    return MinerScores(
        accuracy_percent=accuracy,
        relative_error=max(0.0, relative_error),
        ndcg=ndcg(reported_true, true_freqs),
        k=k,
    )
