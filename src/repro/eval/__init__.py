"""Evaluation: mining quality metrics, runners, and report tables."""

from repro.eval.harness import (
    BackendRun,
    MinerRun,
    ScenarioCell,
    compare_backends,
    measure_call,
    run_miner,
    run_scenario_matrix,
)
from repro.eval.metrics import MinerScores, evaluate_miner, ndcg
from repro.eval.reporting import format_table

__all__ = [
    "BackendRun",
    "MinerRun",
    "MinerScores",
    "ScenarioCell",
    "compare_backends",
    "evaluate_miner",
    "format_table",
    "measure_call",
    "ndcg",
    "run_miner",
    "run_scenario_matrix",
]
