"""Evaluation: mining quality metrics, runners, and report tables."""

from repro.eval.harness import MinerRun, measure_call, run_miner
from repro.eval.metrics import MinerScores, evaluate_miner, ndcg
from repro.eval.reporting import format_table

__all__ = [
    "MinerRun",
    "MinerScores",
    "evaluate_miner",
    "format_table",
    "measure_call",
    "ndcg",
    "run_miner",
]
