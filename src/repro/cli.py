"""Command-line interface: build, query, and mine from text files.

::

    usi topk  --text corpus.txt --k 100
    usi build --text corpus.txt --utilities weights.txt --k 1000 --out idx.pkl
    usi query --index idx.pkl --pattern "needle" [--pattern ...]
    usi mine  --text corpus.txt --utilities weights.txt --top 10
    usi mine  --text corpus.txt --threshold 50 --min-length 3
    usi tune  --text corpus.txt --k 1000            # tau_K, L_K
    usi tune  --text corpus.txt --tau 50            # K_tau, L_tau

Utilities files hold one float per line (one per text character);
without one, every position gets utility 1.0 so "sum of sums" reports
``|P| * |occ(P)|``.
"""

from __future__ import annotations

import argparse
import pickle
import sys
from pathlib import Path

import numpy as np

from repro.core.topk_oracle import TopKOracle
from repro.core.usi import UsiIndex
from repro.strings.weighted import WeightedString
from repro.suffix.suffix_array import SuffixArray


def _load_weighted_string(text_path: str, utilities_path: "str | None") -> WeightedString:
    text = Path(text_path).read_text()
    if text.endswith("\n"):
        text = text[:-1]
    if utilities_path:
        utilities = np.asarray(
            [float(line) for line in Path(utilities_path).read_text().split()],
            dtype=np.float64,
        )
        return WeightedString(text, utilities)
    return WeightedString.uniform(text)


def _cmd_topk(args: argparse.Namespace) -> int:
    ws = _load_weighted_string(args.text, args.utilities)
    oracle = TopKOracle(SuffixArray(ws.codes))
    for mined in oracle.top_k(args.k):
        substring = ws.fragment_text(mined.position, mined.length)
        print(f"{mined.frequency}\t{mined.length}\t{substring}")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    ws = _load_weighted_string(args.text, args.utilities)
    index = UsiIndex.build(
        ws,
        k=args.k,
        tau=args.tau,
        miner="approximate" if args.approximate else "exact",
        aggregator=args.aggregator,
    )
    with open(args.out, "wb") as handle:
        pickle.dump(index, handle)
    report = index.report
    print(
        f"built {report.miner} index: K={report.k} tau_K={report.tau_k} "
        f"L_K={report.distinct_lengths} H-entries={report.hash_entries} "
        f"size={index.nbytes()} bytes -> {args.out}"
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    with open(args.index, "rb") as handle:
        index: UsiIndex = pickle.load(handle)
    for pattern in args.pattern:
        print(f"{pattern}\t{index.query(pattern)}")
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    """Utility-oriented mining: top-by-utility or above a threshold."""
    from repro.core.mining import mine_by_utility_threshold, top_utility_substrings

    ws = _load_weighted_string(args.text, args.utilities)
    if args.threshold is not None:
        found = mine_by_utility_threshold(
            ws, args.threshold,
            min_length=args.min_length,
            max_length=args.max_length,
            aggregator=args.aggregator,
        )
        if args.top is not None:
            found = found[: args.top]
    else:
        found = top_utility_substrings(
            ws, top=args.top or 10,
            min_length=args.min_length,
            max_length=args.max_length,
            aggregator=args.aggregator,
        )
    for entry in found:
        substring = ws.fragment_text(entry.position, entry.length)
        print(f"{entry.utility:.6g}\t{entry.frequency}\t{substring}")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    ws = _load_weighted_string(args.text, args.utilities)
    oracle = TopKOracle(SuffixArray(ws.codes))
    if args.curve:
        from repro.core.tradeoff import enumerate_trade_offs, skyline

        points = skyline(enumerate_trade_offs(oracle, ws.length))
        print("K\ttau\tL\tsize_words\tquery_cost")
        for point in points:
            print(
                f"{point.k}\t{point.tau}\t{point.distinct_lengths}"
                f"\t{point.size_words}\t{point.query_cost}"
            )
        return 0
    if (args.k is None) == (args.tau is None):
        print("provide exactly one of --k / --tau", file=sys.stderr)
        return 2
    if args.k is not None:
        point = oracle.tune_by_k(args.k)
        print(f"K={point.k} -> tau_K={point.tau} L_K={point.distinct_lengths}")
    else:
        point = oracle.tune_by_tau(args.tau)
        print(f"tau={point.tau} -> K_tau={point.k} L_tau={point.distinct_lengths}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="usi", description="Useful String Indexing (ICDE 2025 reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    topk = sub.add_parser("topk", help="mine the exact top-K frequent substrings")
    topk.add_argument("--text", required=True)
    topk.add_argument("--utilities")
    topk.add_argument("--k", type=int, required=True)
    topk.set_defaults(fn=_cmd_topk)

    build = sub.add_parser("build", help="build and pickle a USI index")
    build.add_argument("--text", required=True)
    build.add_argument("--utilities")
    build.add_argument("--k", type=int)
    build.add_argument("--tau", type=int)
    build.add_argument("--approximate", action="store_true",
                       help="mine with Approximate-Top-K (the UAT index)")
    build.add_argument("--aggregator", default="sum",
                       choices=["sum", "min", "max", "avg"])
    build.add_argument("--out", required=True)
    build.set_defaults(fn=_cmd_build)

    query = sub.add_parser("query", help="query a pickled USI index")
    query.add_argument("--index", required=True)
    query.add_argument("--pattern", action="append", required=True)
    query.set_defaults(fn=_cmd_query)

    mine = sub.add_parser("mine", help="mine substrings by global utility")
    mine.add_argument("--text", required=True)
    mine.add_argument("--utilities")
    mine.add_argument("--top", type=int)
    mine.add_argument("--threshold", type=float,
                      help="report every substring with utility >= threshold")
    mine.add_argument("--min-length", type=int, default=1)
    mine.add_argument("--max-length", type=int)
    mine.add_argument("--aggregator", default="sum",
                      choices=["sum", "min", "max", "avg"])
    mine.set_defaults(fn=_cmd_mine)

    tune = sub.add_parser("tune", help="estimate (K, tau, L) trade-offs")
    tune.add_argument("--text", required=True)
    tune.add_argument("--utilities")
    tune.add_argument("--k", type=int)
    tune.add_argument("--tau", type=int)
    tune.add_argument("--curve", action="store_true",
                      help="print the whole (K, tau) skyline instead")
    tune.set_defaults(fn=_cmd_tune)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
