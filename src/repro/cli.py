"""Command-line interface: build, query, mine, and serve.

::

    usi topk  --text corpus.txt --k 100
    usi build --text corpus.txt --utilities weights.txt --k 1000 --out idx.npz
    usi build --text corpus.txt --k 1000 --out idx.npz --profile
    usi build --text corpus.txt --shards 8 --k 1000 --out idx.pkl
    usi build --text corpus.txt --backend uat --k 1000 --out idx.npz
    usi build --text lines.txt --backend sharded --shards 8 --out idx.npz
    usi backends
    usi query --index idx.npz --pattern "needle" [--pattern ...]
    usi query --index idx.npz --patterns-file queries.txt
    echo needle | usi query --index idx.npz
    usi mine  --text corpus.txt --utilities weights.txt --top 10
    usi mine  --text corpus.txt --threshold 50 --min-length 3
    usi tune  --text corpus.txt --k 1000            # tau_K, L_K
    usi tune  --text corpus.txt --tau 50            # K_tau, L_tau
    usi scenarios list
    usi scenarios describe dna_quality
    usi scenarios run --all                 # full regression matrix
    usi scenarios run --scenario pathological --workload adversarial --n 2000
    usi serve --index idx.npz --port 8642
    usi serve --index big.npz --mmap        # lazy, memory-mapped open
    usi serve --live corpus --live-dir data/corpus   # ingesting index
    usi serve --index big.npz --async --workers 4 --max-queue 128
    usi ingest --url http://127.0.0.1:8642 --file docs.txt
    tail -f app.log | usi ingest            # stream documents from stdin

Utilities files hold one float per line, one per text character: for
plain builds that includes any interior newline characters (the text
is indexed as-is); for collection builds (``--shards`` or a
collection-capable ``--backend``) newlines are document boundaries and
take no utility entry.  Without a utilities file every position gets
utility 1.0 so "sum of sums" reports ``|P| * |occ(P)|``.

``--backend`` selects any registered engine family (``usi backends``
lists them); the index is written tagged so ``usi query`` and ``usi
serve`` reopen it with the right adapter.  Legacy formats keep
working: ``.npz`` without ``--backend`` is the original pickle-free
format, any other extension is pickled, and ``usi build --shards N``
without ``--backend`` keeps its historical pickle-only contract.
"""

from __future__ import annotations

import argparse
import pickle
import sys
from pathlib import Path

import numpy as np

from repro.core.topk_oracle import TopKOracle
from repro.core.usi import UsiIndex
from repro.strings.weighted import WeightedString
from repro.suffix.suffix_array import SuffixArray


def _read_text(text_path: str) -> str:
    """Read a corpus with CRLF line endings normalised to ``\\n``."""
    text = Path(text_path).read_text().replace("\r\n", "\n")
    if text.endswith("\n"):
        text = text[:-1]
    return text


def _read_utilities(utilities_path: str) -> np.ndarray:
    return np.asarray(
        [float(line) for line in Path(utilities_path).read_text().split()],
        dtype=np.float64,
    )


def _load_weighted_string(text_path: str, utilities_path: "str | None") -> WeightedString:
    text = _read_text(text_path)
    if utilities_path:
        return WeightedString(text, _read_utilities(utilities_path))
    return WeightedString.uniform(text)


def _load_collection(text_path: str, utilities_path: "str | None"):
    """One weighted document per line (the ``--shards`` input model)."""
    from repro.strings.alphabet import Alphabet
    from repro.strings.collection import WeightedStringCollection

    lines = [line for line in _read_text(text_path).split("\n") if line]
    if not lines:
        raise SystemExit(f"{text_path}: no non-empty lines to index")
    alphabet = Alphabet.from_text("".join(lines))
    if utilities_path:
        utilities = _read_utilities(utilities_path)
        total = sum(len(line) for line in lines)
        if len(utilities) != total:
            raise SystemExit(
                f"{utilities_path}: {len(utilities)} utilities for "
                f"{total} text characters"
            )
        documents = []
        offset = 0
        for line in lines:
            documents.append(
                WeightedString(line, utilities[offset : offset + len(line)], alphabet)
            )
            offset += len(line)
    else:
        documents = [WeightedString.uniform(line, alphabet=alphabet) for line in lines]
    return WeightedStringCollection(documents)


def _save_index(index, out: str) -> None:
    if Path(out).suffix == ".npz":
        from repro.io import save_index

        if not isinstance(index, UsiIndex):
            raise SystemExit(
                "the .npz format only stores monolithic indexes; "
                "use a .pkl extension for sharded builds"
            )
        save_index(index, out)
    else:
        with open(out, "wb") as handle:
            pickle.dump(index, handle)


def _load_index_file(path: str):
    """Reopen any index file as a protocol object (any backend)."""
    from repro.api import open_index

    return open_index(path)


def _cmd_topk(args: argparse.Namespace) -> int:
    ws = _load_weighted_string(args.text, args.utilities)
    oracle = TopKOracle(SuffixArray(ws.codes))
    for mined in oracle.top_k(args.k):
        substring = ws.fragment_text(mined.position, mined.length)
        print(f"{mined.frequency}\t{mined.length}\t{substring}")
    return 0


def _print_build_profile(index, total_seconds: float, n: "int | None") -> None:
    """``--profile`` output: per-stage timings when the engine has them.

    UsiIndex-family engines carry a stage-level
    :class:`~repro.core.usi.UsiBuildReport`; other backends report the
    end-to-end wall time only.
    """
    from repro.eval.reporting import format_build_profile

    engine = getattr(index, "inner", index)
    report = getattr(engine, "report", None)
    if report is not None and hasattr(report, "stage_seconds"):
        print(format_build_profile(report, n=n))
        print(f"wall total (load + build + save): {total_seconds * 1e3:.1f} ms")
    else:
        print(
            f"build profile: no stage report for this backend; "
            f"wall total (load + build + save): {total_seconds * 1e3:.1f} ms"
        )


def _cmd_build_backend(args: argparse.Namespace) -> int:
    """``usi build --backend NAME``: any registered engine family."""
    import time

    from repro.api import build as build_index
    from repro.api import get_backend, resolve_backend_name
    from repro.errors import ReproError
    from repro.io import save_index

    t_start = time.perf_counter()

    try:
        name = resolve_backend_name(args.backend)
    except ReproError as error:
        raise SystemExit(str(error))
    if args.approximate and name not in ("uat",):
        raise SystemExit(
            "--approximate selects the uat backend; drop it when "
            "--backend names another engine"
        )
    capabilities = get_backend(name).capabilities
    if capabilities.collection:
        source = _load_collection(args.text, args.utilities)
    else:
        source = _load_weighted_string(args.text, args.utilities)
    options: dict = {"aggregator": args.aggregator}
    # Shard-pool knobs are a sharded-backend feature, not a general
    # collection one (the monolithic collection backend rejects them).
    if args.shards or args.workers:
        if name != "sharded":
            raise SystemExit(
                f"--shards/--workers apply to the sharded backend, not {name!r}"
            )
        if args.shards:
            options["shards"] = args.shards
        if args.workers:
            options["workers"] = args.workers
    try:
        index = build_index(
            source, backend=name, k=args.k, tau=args.tau, **options
        )
    except ReproError as error:
        raise SystemExit(f"cannot build backend {name!r}: {error}")
    except TypeError as error:
        # e.g. a build option the chosen backend does not accept.
        raise SystemExit(f"cannot build backend {name!r}: {error}")
    save_index(index, args.out)
    info = index.stats()
    flags = ",".join(
        flag for flag, on in info.capabilities.as_dict().items() if on
    )
    size = "?" if info.size_bytes is None else str(info.size_bytes)
    print(
        f"built {info.backend} index: capabilities=[{flags}] "
        f"size={size} bytes detail={info.detail} -> {args.out}"
    )
    if args.profile:
        length = getattr(getattr(source, "combined", source), "length", None)
        _print_build_profile(index, time.perf_counter() - t_start, length)
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    import time

    t_start = time.perf_counter()
    if args.backend:
        return _cmd_build_backend(args)
    build_kwargs = dict(
        k=args.k,
        tau=args.tau,
        miner="approximate" if args.approximate else "exact",
        aggregator=args.aggregator,
    )
    if args.shards:
        from repro.service.sharding import ShardedUsiIndex

        if Path(args.out).suffix == ".npz":
            # Fail before the (possibly long) parallel build, not after.
            raise SystemExit(
                "the .npz format only stores monolithic indexes; "
                "use a .pkl extension for sharded builds"
            )
        collection = _load_collection(args.text, args.utilities)
        index = ShardedUsiIndex.build(
            collection, args.shards, workers=args.workers, **build_kwargs
        )
        _save_index(index, args.out)
        print(
            f"built sharded index: shards={index.shard_count} "
            f"documents={collection.document_count} "
            f"size={index.nbytes()} bytes -> {args.out}"
        )
        if args.profile:
            _print_build_profile(index, time.perf_counter() - t_start, None)
        return 0
    ws = _load_weighted_string(args.text, args.utilities)
    index = UsiIndex.build(ws, **build_kwargs)
    _save_index(index, args.out)
    report = index.report
    print(
        f"built {report.miner} index: K={report.k} tau_K={report.tau_k} "
        f"L_K={report.distinct_lengths} H-entries={report.hash_entries} "
        f"size={index.nbytes()} bytes -> {args.out}"
    )
    if args.profile:
        _print_build_profile(index, time.perf_counter() - t_start, ws.length)
    return 0


def _collect_patterns(args: argparse.Namespace) -> list[str]:
    """Patterns from ``--pattern`` flags, a file, and/or stdin.

    Both sources stream line by line and skip blank (whitespace-only)
    lines identically.
    """
    patterns = list(args.pattern or [])
    if args.patterns_file:
        with Path(args.patterns_file).open() as handle:
            patterns.extend(
                line.rstrip("\r\n") for line in handle if line.strip()
            )
    if not patterns:
        patterns.extend(line.rstrip("\r\n") for line in sys.stdin if line.strip())
    return patterns


def _cmd_query(args: argparse.Namespace) -> int:
    import time

    index = _load_index_file(args.index)
    patterns = _collect_patterns(args)
    if not patterns:
        print("no patterns given (use --pattern, --patterns-file, or stdin)",
              file=sys.stderr)
        return 2
    if getattr(args, "profile", False):
        from repro.eval.reporting import format_query_profile
        from repro.profiling import QueryProfile, profiled

        profile = QueryProfile()
        t0 = time.perf_counter()
        with profiled(profile):
            values = index.query_batch(patterns)
        wall = time.perf_counter() - t0
        profile.account(len(patterns))
        for pattern, value in zip(patterns, values):
            print(f"{pattern}\t{value}")
        print(format_query_profile(profile, wall_seconds=wall))
    else:
        for pattern, value in zip(patterns, index.query_batch(patterns)):
            print(f"{pattern}\t{value}")
    return 0


def _make_live_index(args: argparse.Namespace):
    """Create or reopen the ``--live`` index a serve run hosts."""
    from repro.api.adapters import DEFAULT_K
    from repro.ingest.live import MANIFEST_NAME, LiveIndex
    from repro.strings.alphabet import Alphabet

    options: dict = {"k": args.live_k if args.live_k else DEFAULT_K}
    if args.compact_chars:
        options["seal_chars"] = args.compact_chars
    if args.live_dir and (Path(args.live_dir) / MANIFEST_NAME).exists():
        # Reopening: parameters come from the manifest, not the flags.
        return LiveIndex.open(args.live_dir, wal_sync=args.wal_sync)
    alphabet = Alphabet.from_text(args.live_alphabet)
    if args.live_dir:
        return LiveIndex.create(
            args.live_dir, alphabet, wal_sync=args.wal_sync, **options
        )
    return LiveIndex(alphabet, **options)


def _named_index_paths(args: argparse.Namespace) -> "dict[str, str] | None":
    """The ``{name: path}`` map from repeated --index/--name flags."""
    paths = list(args.index or [])
    names = list(args.name or [])
    if len(names) > len(paths):
        print("more --name flags than --index flags", file=sys.stderr)
        return None
    resolved = {}
    for position, path in enumerate(paths):
        name = names[position] if position < len(names) else Path(path).stem
        resolved[name] = path
    return resolved


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.service.registry import IndexRegistry
    from repro.service.server import UsiServer

    if not args.index and not args.live:
        print("nothing to serve: give --index and/or --live", file=sys.stderr)
        return 2
    named = _named_index_paths(args)
    if named is None:
        return 2

    if args.use_async:
        return _serve_async(args, named)

    registry = IndexRegistry(
        capacity=args.capacity, cache_size=args.cache_size, mmap=args.mmap
    )
    for name, path in named.items():
        try:
            registry.register_path(name, path)
        except ReproError as error:
            print(f"cannot register {path} as {name!r}: {error}", file=sys.stderr)
            return 2
        if args.preload:
            registry.get(name)
    compactor = None
    live = None
    if args.live:
        from repro.ingest import Compactor

        try:
            live = _make_live_index(args)
        except ReproError as error:
            print(f"cannot open live index: {error}", file=sys.stderr)
            return 2
        registry.register(args.live, live)
        compactor = Compactor(
            live, registry=registry, name=args.live, index=live
        )
    server = UsiServer(registry, host=args.host, port=args.port)
    print(
        f"serving {', '.join(registry.names())} on {server.url} "
        "(POST /query, POST /ingest, GET /indexes, GET /stats; "
        "SIGINT/SIGTERM drain in-flight requests and stop)",
        flush=True,
    )
    if compactor is not None:
        compactor.start()
    try:
        server.serve_forever()
    finally:
        if compactor is not None:
            compactor.stop()
        if live is not None:
            live.close()
    print("usi serve: drained in-flight requests, registry closed", flush=True)
    return 0


def _serve_async(args: argparse.Namespace, named: "dict[str, str]") -> int:
    """The ``usi serve --async`` branch: gateway + worker pool."""
    from repro.errors import ReproError
    from repro.gateway import AsyncGateway
    from repro.service.registry import IndexRegistry

    registry = None
    compactor = None
    live = None
    if args.live:
        from repro.ingest import Compactor

        try:
            live = _make_live_index(args)
        except ReproError as error:
            print(f"cannot open live index: {error}", file=sys.stderr)
            return 2
        registry = IndexRegistry(cache_size=args.cache_size)
        registry.register(args.live, live)
        compactor = Compactor(
            live, registry=registry, name=args.live, index=live
        )
    # Workers always reopen with mmap: v3 bundles then share one copy
    # of the substrate pages across the whole pool (other container
    # formats ignore the flag).
    gateway = AsyncGateway(
        paths=named,
        registry=registry,
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_queue=args.max_queue,
        per_index_limit=args.per_index_concurrency,
        cache_size=args.cache_size,
        mmap=True,
        request_timeout=args.request_timeout or None,
        call_timeout=args.call_timeout or None,
        degraded_mode=args.degraded_mode,
    )
    served = sorted(set(named) | ({args.live} if args.live else set()))
    print(
        f"gateway serving {', '.join(served)} on http://{args.host}:{args.port} "
        f"({args.workers if named else 0} workers, max queue {args.max_queue}; "
        "POST /query, POST /ingest, GET /indexes, GET /stats; "
        "SIGINT/SIGTERM drain in-flight requests and stop)",
        flush=True,
    )
    if compactor is not None:
        compactor.start()
    try:
        gateway.serve_forever()
    except ReproError as error:
        print(f"gateway failed: {error}", file=sys.stderr)
        return 1
    finally:
        if compactor is not None:
            compactor.stop()
        if live is not None:
            live.close()
    print("usi serve: drained in-flight requests, pool stopped", flush=True)
    return 0


def _iter_ingest_lines(args: argparse.Namespace):
    """Non-empty document lines: stdin, a file, or a tailed file."""
    if args.file is None:
        for line in sys.stdin:
            line = line.rstrip("\r\n")
            if line:
                yield line
        return
    if not args.follow:
        for line in Path(args.file).read_text().splitlines():
            if line:
                yield line
        return
    import time

    idle = 0.0
    with open(args.file, "r") as handle:
        while True:
            line = handle.readline()
            if line:
                idle = 0.0
                line = line.rstrip("\r\n")
                if line:
                    yield line
                continue
            if args.idle_timeout is not None and idle >= args.idle_timeout:
                return
            time.sleep(args.poll_interval)
            idle += args.poll_interval


def _retry_after_delay(header_value, backoff) -> float:
    """The wait before retrying: the server's Retry-After, else backoff."""
    if header_value is not None:
        try:
            return max(0.0, float(header_value))
        except (TypeError, ValueError):
            pass
    return backoff.next_delay()


def _cmd_ingest(args: argparse.Namespace) -> int:
    """Stream documents into a running ``usi serve`` over POST /ingest.

    Transient failures do not kill the stream: 429 (admission shed)
    and 503 (draining, breaker open, WAL write failure) are retried
    honoring the server's ``Retry-After``, and connection errors
    (server restarting) with capped exponential backoff — up to
    ``--max-retries`` per document.  Any other rejection (400s) is a
    real error and stops the stream.  504 is deliberately *not*
    retried: the server may have applied the append before the
    deadline fired, and re-sending would ingest the document twice.
    """
    import json
    import time
    from urllib import error as urlerror
    from urllib import request as urlrequest

    from repro.service.resilience import Backoff

    url = args.url.rstrip("/") + "/ingest"
    sent = 0
    retries = 0
    last_seq = None
    for line in _iter_ingest_lines(args):
        payload: dict = {"doc": line}
        if args.index:
            payload["index"] = args.index
        data = json.dumps(payload).encode()
        backoff = Backoff(base=0.2, max_delay=5.0)
        attempts = 0
        while True:
            request = urlrequest.Request(
                url, data=data, headers={"Content-Type": "application/json"}
            )
            try:
                with urlrequest.urlopen(
                    request, timeout=args.timeout
                ) as response:
                    reply = json.loads(response.read())
                break
            except urlerror.HTTPError as error:
                detail = error.read().decode(errors="replace")
                if error.code in (429, 503) and attempts < args.max_retries:
                    attempts += 1
                    retries += 1
                    time.sleep(
                        _retry_after_delay(
                            error.headers.get("Retry-After"), backoff
                        )
                    )
                    continue
                print(
                    f"usi ingest: server rejected document {sent + 1}: {detail}",
                    file=sys.stderr,
                )
                return 1
            except urlerror.URLError as error:
                if attempts < args.max_retries:
                    attempts += 1
                    retries += 1
                    time.sleep(backoff.next_delay())
                    continue
                print(f"usi ingest: cannot reach {url}: {error.reason}",
                      file=sys.stderr)
                return 1
        sent += 1
        last_seq = reply.get("seq")
    suffix = f" ({retries} retried)" if retries else ""
    if last_seq is None:
        print(f"ingested 0 documents{suffix}")
    else:
        print(f"ingested {sent} documents (last seq {last_seq}){suffix}")
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    """Utility-oriented mining: top-by-utility or above a threshold."""
    from repro.core.mining import mine_by_utility_threshold, top_utility_substrings

    ws = _load_weighted_string(args.text, args.utilities)
    if args.threshold is not None:
        found = mine_by_utility_threshold(
            ws, args.threshold,
            min_length=args.min_length,
            max_length=args.max_length,
            aggregator=args.aggregator,
        )
        if args.top is not None:
            found = found[: args.top]
    else:
        found = top_utility_substrings(
            ws, top=args.top or 10,
            min_length=args.min_length,
            max_length=args.max_length,
            aggregator=args.aggregator,
        )
    for entry in found:
        substring = ws.fragment_text(entry.position, entry.length)
        print(f"{entry.utility:.6g}\t{entry.frequency}\t{substring}")
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    """List every registered backend with its capability flags."""
    from repro.api import backend_aliases, describe_backends

    aliases_by_name: dict[str, list[str]] = {}
    for alias, name in backend_aliases().items():
        aliases_by_name.setdefault(name, []).append(alias)
    for name, row in describe_backends().items():
        flags = ",".join(f for f, on in row["capabilities"].items() if on)
        alias_note = ""
        if name in aliases_by_name:
            alias_note = f" (aliases: {', '.join(sorted(aliases_by_name[name]))})"
        print(f"{name}\t[{flags}]\t{row['description']}{alias_note}")
    return 0


def _cmd_scenarios_list(args: argparse.Namespace) -> int:
    """``usi scenarios list``: every registered world, one line each."""
    from repro.datasets.scenarios import describe_scenarios

    for row in describe_scenarios().values():
        workloads = ",".join(row["workloads"])
        print(
            f"{row['scenario']}\t{row['kind']}\tn={row['default_n']} "
            f"k={row['default_k']}\t[{workloads}]\t{row['title']}"
        )
    return 0


def _cmd_scenarios_describe(args: argparse.Namespace) -> int:
    """``usi scenarios describe NAME``: full card for one world."""
    from repro.datasets.baselines import PINNED_BASELINES
    from repro.datasets.scenarios import describe_scenarios
    from repro.errors import ReproError

    row = describe_scenarios().get(args.scenario)
    if row is None:
        from repro.datasets.scenarios import get_scenario

        try:
            get_scenario(args.scenario)  # raises with the known-names list
        except ReproError as error:
            print(str(error), file=sys.stderr)
            return 2
    for key in ("scenario", "title", "kind", "default_n", "default_k",
                "query_length_range", "description"):
        print(f"{key}: {row[key]}")
    print(f"workloads: {', '.join(row['workloads'])}")
    print(f"backends: {', '.join(row['backends'])}")
    pinned = PINNED_BASELINES.get(args.scenario)
    if pinned:
        print("pinned baseline:")
        for key, value in pinned.items():
            print(f"  {key}: {value}")
    return 0


def _cmd_scenarios_run(args: argparse.Namespace) -> int:
    """``usi scenarios run``: the backend × scenario × workload matrix."""
    import json

    from repro.datasets.scenarios import available_scenarios
    from repro.errors import ReproError
    from repro.eval.harness import run_scenario_matrix

    if not args.all and not args.scenario:
        print("give --all or at least one --scenario (see `usi scenarios list`)",
              file=sys.stderr)
        return 2
    names = available_scenarios() if args.all else list(args.scenario)
    try:
        payload = run_scenario_matrix(
            scenarios=names,
            workloads=args.workload or None,
            backends=args.backend or None,
            n=args.n,
            num_queries=args.queries,
            seed=args.seed,
        )
    except ReproError as error:
        print(str(error), file=sys.stderr)
        return 2
    if args.json:
        Path(args.json).parent.mkdir(parents=True, exist_ok=True)
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
    header = f"{'scenario':<18} {'workload':<14} {'backend':<11} " \
             f"{'qps':>10} {'build_s':>9} {'size':>10}"
    print(header)
    for row in payload["rows"]:
        size = "?" if row["size_bytes"] is None else str(row["size_bytes"])
        print(
            f"{row['scenario']:<18} {row['workload']:<14} {row['backend']:<11} "
            f"{row['qps']:>10.0f} {row['build_seconds']:>9.4f} {size:>10}"
        )
    for name, status in payload["baseline_checks"].items():
        print(f"baseline {name}: {status}")
    if payload["mismatches"]:
        for mismatch in payload["mismatches"]:
            print(
                f"EXACTNESS MISMATCH: {mismatch['scenario']}/"
                f"{mismatch['workload']}: {mismatch['backend']} vs "
                f"{mismatch['reference']} (max |diff| "
                f"{mismatch['max_abs_diff']:.3g})",
                file=sys.stderr,
            )
        return 1
    bad_baselines = [
        name for name, status in payload["baseline_checks"].items()
        if not isinstance(status, str)
    ]
    if bad_baselines:
        print(f"baseline drift in: {', '.join(bad_baselines)}", file=sys.stderr)
        return 1
    print(
        f"scenario matrix ok: {len(payload['rows'])} cells, "
        f"{len(payload['backends'])} backends, 0 mismatches"
    )
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    ws = _load_weighted_string(args.text, args.utilities)
    oracle = TopKOracle(SuffixArray(ws.codes))
    if args.curve:
        from repro.core.tradeoff import enumerate_trade_offs, skyline

        points = skyline(enumerate_trade_offs(oracle, ws.length))
        print("K\ttau\tL\tsize_words\tquery_cost")
        for point in points:
            print(
                f"{point.k}\t{point.tau}\t{point.distinct_lengths}"
                f"\t{point.size_words}\t{point.query_cost}"
            )
        return 0
    if (args.k is None) == (args.tau is None):
        print("provide exactly one of --k / --tau", file=sys.stderr)
        return 2
    if args.k is not None:
        point = oracle.tune_by_k(args.k)
        print(f"K={point.k} -> tau_K={point.tau} L_K={point.distinct_lengths}")
    else:
        point = oracle.tune_by_tau(args.tau)
        print(f"tau={point.tau} -> K_tau={point.k} L_tau={point.distinct_lengths}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="usi", description="Useful String Indexing (ICDE 2025 reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    topk = sub.add_parser("topk", help="mine the exact top-K frequent substrings")
    topk.add_argument("--text", required=True)
    topk.add_argument("--utilities")
    topk.add_argument("--k", type=int, required=True)
    topk.set_defaults(fn=_cmd_topk)

    build = sub.add_parser("build", help="build and save a utility index")
    build.add_argument("--text", required=True)
    build.add_argument("--utilities")
    build.add_argument("--k", type=int)
    build.add_argument("--tau", type=int)
    build.add_argument("--backend",
                       help="registered backend name (see `usi backends`); "
                            "collection-capable backends read the text as "
                            "one document per line")
    build.add_argument("--approximate", action="store_true",
                       help="mine with Approximate-Top-K (the UAT index)")
    build.add_argument("--aggregator", default="sum",
                       choices=["sum", "min", "max", "avg"])
    build.add_argument("--shards", type=int,
                       help="treat the text as one document per line and "
                            "build N document-aligned shards in parallel")
    build.add_argument("--workers", type=int,
                       help="process-pool size for sharded builds")
    build.add_argument("--out", required=True,
                       help=".npz for the pickle-free format, else pickle")
    build.add_argument("--profile", action="store_true",
                       help="print a per-stage construction timing table "
                            "(suffix array, LCP, mining, table)")
    build.set_defaults(fn=_cmd_build)

    backends = sub.add_parser("backends",
                              help="list registered index backends")
    backends.set_defaults(fn=_cmd_backends)

    query = sub.add_parser("query", help="query a saved index (any backend)")
    query.add_argument("--index", required=True)
    query.add_argument("--pattern", action="append",
                       help="repeatable; omit to read patterns from stdin")
    query.add_argument("--patterns-file",
                       help="file with one pattern per line (bulk queries)")
    query.add_argument("--profile", action="store_true",
                       help="print a per-stage query timing table "
                            "(encode, cache, locate, gather, merge)")
    query.set_defaults(fn=_cmd_query)

    serve = sub.add_parser(
        "serve",
        help="serve saved indexes (any backend) over HTTP",
        description=(
            "Serve saved indexes over JSON-over-HTTP in one of two "
            "modes. Default (threaded): one process, a thread per "
            "connection, indexes resident in a capacity-bounded "
            "registry — simplest, best for a few clients or live "
            "ingest. --async: an asyncio acceptor in front of a pool "
            "of --workers processes that each reopen the same index "
            "files memory-mapped (v3 bundles share one copy of the "
            "substrate pages), with bounded admission (--max-queue; "
            "excess load is shed with HTTP 429 + Retry-After), "
            "per-index concurrency limits, and coalescing of "
            "identical in-flight requests — prefer it for heavy or "
            "spiky read traffic on multi-core hosts. Both modes "
            "speak the same protocol and drain gracefully on "
            "SIGINT/SIGTERM; GET /stats reports which mode is "
            "serving."
        ),
    )
    serve.add_argument("--index", action="append",
                       help="index file to serve (repeatable; any backend)")
    serve.add_argument("--name", action="append",
                       help="name for the Nth --index (default: file stem)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642)
    serve.add_argument("--cache-size", type=int, default=4096,
                       help="per-index LRU result-cache entries")
    serve.add_argument("--capacity", type=int, default=8,
                       help="max resident indexes before cold ones unload")
    serve.add_argument("--preload", action="store_true",
                       help="load every index at startup instead of lazily")
    serve.add_argument("--mmap", action="store_true",
                       help="memory-map index substrates (v3 containers) "
                            "instead of materialising them")
    serve.add_argument("--async", dest="use_async", action="store_true",
                       help="serve through the asyncio gateway + "
                            "multi-process worker pool instead of the "
                            "threaded server (see description above)")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker processes behind --async (each "
                            "reopens every --index memory-mapped)")
    serve.add_argument("--max-queue", type=int, default=64,
                       help="--async admission bound: in-flight queries "
                            "past this are shed with 429 + Retry-After")
    serve.add_argument("--per-index-concurrency", type=int, default=8,
                       help="--async limit on concurrent queries per "
                            "index (a hot index cannot starve the rest)")
    serve.add_argument("--request-timeout", type=float, default=60.0,
                       help="--async gateway-wide request deadline in "
                            "seconds; past it the client gets a JSON "
                            "504 instead of a hang (0 disables)")
    serve.add_argument("--call-timeout", type=float, default=30.0,
                       help="--async per-worker-round-trip deadline; a "
                            "worker that neither answers nor dies is "
                            "killed and replaced (0 disables)")
    serve.add_argument("--degraded-mode", choices=["inline", "shed"],
                       default="inline",
                       help="--async behaviour while the worker "
                            "breaker is open: 'inline' serves exact "
                            "answers from an in-process engine, "
                            "'shed' answers 503 + Retry-After")
    serve.add_argument("--live", metavar="NAME",
                       help="also host a live-ingest index under NAME "
                            "(accepts POST /ingest; compacts in the "
                            "background)")
    serve.add_argument("--live-dir",
                       help="durable directory for the live index (WAL + "
                            "manifest + shards); reopened if it exists, "
                            "in-memory when omitted")
    serve.add_argument("--live-alphabet",
                       default="abcdefghijklmnopqrstuvwxyz",
                       help="characters a fresh live index accepts "
                            "(ignored when reopening --live-dir)")
    serve.add_argument("--live-k", type=int,
                       help="top-K budget for live shard builds")
    serve.add_argument("--compact-chars", type=int,
                       help="memtable size (characters) that triggers "
                            "sealing + background compaction")
    serve.add_argument("--wal-sync", action="store_true",
                       help="fsync the write-ahead log on every append")
    serve.set_defaults(fn=_cmd_serve)

    ingest = sub.add_parser("ingest",
                            help="stream documents into a serving live index")
    ingest.add_argument("--url", default="http://127.0.0.1:8642",
                        help="base URL of a running `usi serve`")
    ingest.add_argument("--index",
                        help="target index name (default: the server's "
                             "single registered index)")
    ingest.add_argument("--file",
                        help="read documents (one per line) from this file "
                             "instead of stdin")
    ingest.add_argument("--follow", action="store_true",
                        help="keep tailing --file for appended lines")
    ingest.add_argument("--poll-interval", type=float, default=0.5,
                        help="seconds between --follow polls")
    ingest.add_argument("--idle-timeout", type=float,
                        help="stop --follow after this many idle seconds "
                             "(default: tail forever)")
    ingest.add_argument("--timeout", type=float, default=10.0,
                        help="per-request HTTP timeout in seconds")
    ingest.add_argument("--max-retries", type=int, default=5,
                        help="retries per document on 429/503 (honoring "
                             "Retry-After) and on transient connection "
                             "errors, with capped exponential backoff")
    ingest.set_defaults(fn=_cmd_ingest)

    mine = sub.add_parser("mine", help="mine substrings by global utility")
    mine.add_argument("--text", required=True)
    mine.add_argument("--utilities")
    mine.add_argument("--top", type=int)
    mine.add_argument("--threshold", type=float,
                      help="report every substring with utility >= threshold")
    mine.add_argument("--min-length", type=int, default=1)
    mine.add_argument("--max-length", type=int)
    mine.add_argument("--aggregator", default="sum",
                      choices=["sum", "min", "max", "avg"])
    mine.set_defaults(fn=_cmd_mine)

    scenarios = sub.add_parser(
        "scenarios",
        help="run registered worlds through the backend regression matrix",
        description=(
            "The scenario registry bundles deterministic seeded "
            "corpus generators, named query workloads (the paper's "
            "W1/W2,p plus zipfian, bursty, adversarial, and "
            "cache-hostile stress families), and pinned "
            "expected-metric baselines. `run` drives every selected "
            "scenario x workload through all compatible backends and "
            "fails on any exact-answer divergence or baseline drift."
        ),
    )
    scenarios_sub = scenarios.add_subparsers(dest="action", required=True)
    scenarios_list = scenarios_sub.add_parser(
        "list", help="list registered scenarios")
    scenarios_list.set_defaults(fn=_cmd_scenarios_list)
    scenarios_describe = scenarios_sub.add_parser(
        "describe", help="show one scenario's card and pinned baseline")
    scenarios_describe.add_argument("scenario")
    scenarios_describe.set_defaults(fn=_cmd_scenarios_describe)
    scenarios_run = scenarios_sub.add_parser(
        "run", help="run the backend x scenario x workload matrix")
    scenarios_run.add_argument("--all", action="store_true",
                               help="run every registered scenario")
    scenarios_run.add_argument("--scenario", action="append",
                               help="scenario to run (repeatable)")
    scenarios_run.add_argument("--workload", action="append",
                               help="restrict to these workloads (repeatable)")
    scenarios_run.add_argument("--backend", action="append",
                               help="restrict to these backends (repeatable; "
                                    "incompatible kinds are skipped)")
    scenarios_run.add_argument("--n", type=int,
                               help="corpus size override (skips the pinned-"
                                    "baseline check)")
    scenarios_run.add_argument("--queries", type=int, default=60,
                               help="queries per workload cell")
    scenarios_run.add_argument("--seed", type=int, default=0)
    scenarios_run.add_argument("--json",
                               help="also write the full matrix payload here")
    scenarios_run.set_defaults(fn=_cmd_scenarios_run)

    tune = sub.add_parser("tune", help="estimate (K, tau, L) trade-offs")
    tune.add_argument("--text", required=True)
    tune.add_argument("--utilities")
    tune.add_argument("--k", type=int)
    tune.add_argument("--tau", type=int)
    tune.add_argument("--curve", action="store_true",
                      help="print the whole (K, tau) skyline instead")
    tune.set_defaults(fn=_cmd_tune)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
