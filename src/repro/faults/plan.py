"""Deterministic, scheduled fault injection for the serving stack.

A :class:`FaultPlan` is a list of :class:`Fault` rules.  Each rule
names a *site* — a string like ``"worker.handle"`` or ``"wal.append"``
that the production code declares by calling :func:`repro.faults.fire`
at the matching point — and a window of hits at that site during which
the rule fires.  Hit counting is per site and per process (forked
workers inherit the installed plan and count their own hits), so a
schedule replays identically run after run: *the 3rd WAL append
raises* ``ENOSPC``, *every worker request from the 2nd on crashes the
worker*, and so on.

Fault kinds
-----------
``error``
    Raise an exception at the site (default ``OSError``; disk-full for
    WAL sites).
``hang``
    Block the site for ``seconds`` (simulates a wedged worker — the
    process is alive but never answers).
``slow``
    Sleep ``seconds`` and then proceed normally (a slow IPC frame, a
    slow disk).
``crash``
    ``os._exit`` the current process (a killed/OOMed worker).  Only
    meaningful at sites that run inside a child process.
``torn``
    Returned to the site instead of being executed centrally: the site
    implements the torn behaviour itself (e.g. the WAL writes half a
    record and then fails, leaving a torn tail for recovery to
    truncate).

Plans are installed process-globally (:func:`repro.faults.install`) so
no production signature carries a plan argument; with no plan
installed every ``fire`` call is a single attribute check.
"""

from __future__ import annotations

import math
import os
import threading
import time

from repro.errors import ParameterError

KINDS = ("error", "hang", "slow", "crash", "torn")

#: Kinds the *site* must interpret itself; ``FaultPlan.fire`` returns
#: the matched Fault instead of executing a central behaviour.
SITE_HANDLED = ("torn",)


class Fault:
    """One scheduled fault: fire at a site for a window of hits.

    Parameters
    ----------
    site:
        The injection-point name this rule matches.
    kind:
        One of :data:`KINDS`.
    after:
        Hits at the site to let through untouched before firing (0 =
        fire on the first hit).
    count:
        How many consecutive hits fire once the window opens
        (``math.inf`` = keep firing forever; the crash-loop schedule).
    seconds:
        Duration for ``hang`` / ``slow``.
    error:
        Exception *instance* to raise for ``error`` (defaults to an
        ``OSError``), raised via a fresh copy so tracebacks do not
        accumulate across fires.
    """

    __slots__ = ("site", "kind", "after", "count", "seconds", "error")

    def __init__(
        self,
        site: str,
        kind: str,
        *,
        after: int = 0,
        count: "int | float" = 1,
        seconds: float = 30.0,
        error: "BaseException | None" = None,
    ) -> None:
        if kind not in KINDS:
            raise ParameterError(f"unknown fault kind {kind!r} (one of {KINDS})")
        if after < 0:
            raise ParameterError("fault 'after' must be >= 0")
        if count != math.inf and int(count) < 1:
            raise ParameterError("fault 'count' must be >= 1 (or math.inf)")
        self.site = str(site)
        self.kind = kind
        self.after = int(after)
        self.count = count
        self.seconds = float(seconds)
        self.error = error

    def window(self) -> "tuple[int, float]":
        """The half-open hit window ``[after, after + count)``."""
        upper = math.inf if self.count == math.inf else self.after + int(self.count)
        return self.after, upper

    def make_error(self) -> BaseException:
        if self.error is not None:
            # Re-raise a same-typed copy so one Fault can fire many
            # times without chaining tracebacks onto one instance.
            template = self.error
            try:
                return type(template)(*template.args)
            except Exception:  # exotic exception signature: reuse it
                return template
        return OSError(f"injected fault at site {self.site!r}")

    def describe(self) -> dict:
        return {
            "site": self.site,
            "kind": self.kind,
            "after": self.after,
            "count": "inf" if self.count == math.inf else int(self.count),
            "seconds": self.seconds,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Fault({self.site!r}, {self.kind!r}, after={self.after}, "
            f"count={self.count})"
        )


class FaultPlan:
    """An ordered set of :class:`Fault` rules with per-site hit counters.

    Thread-safe: counters tick under a lock so concurrent server
    threads (or the asyncio loop plus a compactor thread) observe one
    deterministic hit sequence per site.  Sleeps and raises happen
    *outside* the lock.
    """

    def __init__(self, faults: "list[Fault] | None" = None) -> None:
        self._faults: list[Fault] = list(faults or [])
        self._hits: dict[str, int] = {}
        self._fired: list[dict] = []
        self._lock = threading.Lock()
        self._sleep = time.sleep

    def add(self, fault: Fault) -> "FaultPlan":
        self._faults.append(fault)
        return self

    @property
    def faults(self) -> "list[Fault]":
        return list(self._faults)

    # ------------------------------------------------------------------
    # The injection-point entry
    # ------------------------------------------------------------------
    def fire(self, site: str) -> "Fault | None":
        """Record one hit at *site*; execute any matching fault.

        Central kinds are executed here (``error`` raises, ``hang`` /
        ``slow`` sleep, ``crash`` exits the process); site-handled
        kinds (:data:`SITE_HANDLED`) are returned for the caller to
        interpret.  Returns ``None`` when nothing matched.
        """
        with self._lock:
            hit = self._hits.get(site, 0)
            self._hits[site] = hit + 1
            matched: "Fault | None" = None
            for fault in self._faults:
                if fault.site != site:
                    continue
                low, high = fault.window()
                if low <= hit < high:
                    matched = fault
                    break
            if matched is not None:
                self._fired.append({"site": site, "hit": hit, "kind": matched.kind})
        if matched is None:
            return None
        if matched.kind == "error":
            raise matched.make_error()
        if matched.kind in ("hang", "slow"):
            self._sleep(matched.seconds)
            return None
        if matched.kind == "crash":
            os._exit(17)
        return matched  # site-handled (torn)

    # ------------------------------------------------------------------
    # Introspection (tests, the chaos harness)
    # ------------------------------------------------------------------
    def hits(self, site: str) -> int:
        with self._lock:
            return self._hits.get(site, 0)

    def fired(self) -> "list[dict]":
        """Every fault execution so far, in firing order."""
        with self._lock:
            return list(self._fired)

    def stats(self) -> dict:
        with self._lock:
            return {
                "faults": [fault.describe() for fault in self._faults],
                "hits": dict(self._hits),
                "fired": len(self._fired),
            }
