"""Seeded chaos schedules: one seed → one reproducible fault storm.

The chaos suite (``tests/faults/``) and the ``BENCH_chaos`` harness
both need *varied but replayable* failure scenarios.  This module maps
a seed to a :class:`~repro.faults.plan.FaultPlan` through
``random.Random(seed)`` only — same seed, same schedule, on every
machine — drawing from the failure menu the serving stack is hardened
against:

* a worker that hangs mid-request (caught by the pool deadline);
* a worker that crashes on a request (one transparent retry);
* a short worker crash-loop (breaker opens, serving degrades);
* a slow IPC frame (absorbed inside the deadline);
* a WAL append failing disk-full (``POST /ingest`` → 503);
* a torn WAL tail (recovery truncates to the last whole record);
* a compactor build blowing up (retried with backoff, quarantined
  when poisoned).

Schedules deliberately stay within what the hardening guarantees: a
``hang`` always sleeps longer than the pool deadline (so the kill
path, not the wait path, resolves it) and crash-loops are long enough
to trip the breaker.
"""

from __future__ import annotations

import math
import random

from repro.faults.plan import Fault, FaultPlan

#: Every scenario the seeded generator can draw, by name.
SCENARIOS = (
    "worker_hang",
    "worker_crash",
    "worker_crash_loop",
    "slow_ipc",
    "wal_disk_full",
    "wal_torn_tail",
    "compactor_build",
)


def scenario_faults(
    name: str, rng: random.Random, *, hang_seconds: float = 30.0
) -> "list[Fault]":
    """The fault rules for one named scenario (deterministic in *rng*)."""
    after = rng.randrange(0, 4)
    if name == "worker_hang":
        return [Fault("worker.handle", "hang", after=after, seconds=hang_seconds)]
    if name == "worker_crash":
        return [Fault("worker.handle", "crash", after=after)]
    if name == "worker_crash_loop":
        # Enough consecutive crashes to trip any reasonable breaker.
        return [Fault("worker.handle", "crash", after=after, count=math.inf)]
    if name == "slow_ipc":
        return [
            Fault(
                "ipc.send", "slow", after=after, seconds=rng.uniform(0.05, 0.2)
            )
        ]
    if name == "wal_disk_full":
        return [
            Fault(
                "wal.append",
                "error",
                after=after,
                count=rng.randrange(1, 3),
                error=OSError(28, "No space left on device (injected)"),
            )
        ]
    if name == "wal_torn_tail":
        return [Fault("wal.append", "torn", after=after)]
    if name == "compactor_build":
        return [
            Fault("compactor.build", "error", after=0, count=rng.randrange(1, 3))
        ]
    raise ValueError(f"unknown chaos scenario {name!r}")


def chaos_plan(
    seed: int,
    *,
    scenarios: "tuple[str, ...]" = SCENARIOS,
    picks: int = 2,
    hang_seconds: float = 30.0,
) -> "tuple[FaultPlan, list[str]]":
    """A seeded plan drawing *picks* distinct scenarios.

    Returns ``(plan, chosen_scenario_names)``; the names feed the
    chaos report so every BENCH_chaos row says what it survived.
    """
    rng = random.Random(seed)
    chosen = rng.sample(list(scenarios), k=min(picks, len(scenarios)))
    plan = FaultPlan()
    for name in chosen:
        for fault in scenario_faults(name, rng, hang_seconds=hang_seconds):
            plan.add(fault)
    return plan, chosen
