"""``repro.faults`` — deterministic fault injection for the serving stack.

Production code declares injection points by calling :func:`fire` with
a site name; with no plan installed (the default, and the only state
production ever runs in) that is a single global-load-and-compare.
Tests and the chaos harness install a :class:`FaultPlan` — usually via
the :func:`injected` context manager — and the scheduled faults replay
deterministically.

Because worker processes are forked, a plan installed *before* a pool
starts is inherited by every worker: worker-side sites
(``worker.handle``, ``ipc.send``) count hits in the child, parent-side
sites (``wal.append``, ``registry.load``, ``compactor.build``) in the
parent.

Declared sites
--------------
==========================  ====================================================
``worker.handle``           gateway worker, after receiving each request frame
``worker.open``             gateway worker, before opening its index files
``ipc.send``                worker-side frame send (``slow`` = a slow frame)
``pool.spawn``              gateway parent, before each worker spawn
``wal.append``              before each WAL record write (``torn`` supported)
``registry.load``           before each lazy index load
``compactor.build``         before each sealed-memtable shard build
``shard_pool.worker``       sharded-query worker, per received request
==========================  ====================================================
"""

from __future__ import annotations

import contextlib

from repro.faults.plan import KINDS, SITE_HANDLED, Fault, FaultPlan
from repro.faults.schedule import SCENARIOS, chaos_plan, scenario_faults

__all__ = [
    "KINDS",
    "SITE_HANDLED",
    "SCENARIOS",
    "Fault",
    "FaultPlan",
    "active_plan",
    "chaos_plan",
    "clear",
    "fire",
    "injected",
    "install",
    "scenario_faults",
]

#: The process-global active plan (None in production).
_active: "FaultPlan | None" = None


def install(plan: FaultPlan) -> FaultPlan:
    """Make *plan* the process-global active plan."""
    global _active
    _active = plan
    return plan


def clear() -> None:
    """Deactivate fault injection (idempotent)."""
    global _active
    _active = None


def active_plan() -> "FaultPlan | None":
    return _active


def fire(site: str) -> "Fault | None":
    """The injection point: a no-op unless a plan is installed.

    With a plan, records one hit at *site* and executes any scheduled
    fault (raise / sleep / exit); site-handled kinds (``torn``) are
    returned for the caller to interpret.
    """
    plan = _active
    if plan is None:
        return None
    return plan.fire(site)


@contextlib.contextmanager
def injected(plan: FaultPlan):
    """``with faults.injected(plan):`` — install for the block, then clear.

    Always clears on exit (even when the block raises), so one failed
    chaos test cannot leak faults into the next.
    """
    install(plan)
    try:
        yield plan
    finally:
        clear()
