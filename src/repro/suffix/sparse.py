"""Sparse suffix arrays over sampled positions (Karkkainen & Ukkonen).

Round ``i`` of Approximate-Top-K indexes only the suffixes starting at
the sampled positions ``i + r*s``.  This module sorts those suffixes
and computes the sparse LCP array between lexicographic neighbours —
Steps 1-2 of Section VI.

The paper sorts with in-place mergesort over Prezza's in-place LCE.
We keep the same comparison oracle (an LCE interface) but speed the
common case up with a two-stage sort: a vectorised ``lexsort`` on each
suffix's first :data:`PREFIX_KEY_LETTERS` letters resolves almost all
comparisons; only runs of suffixes sharing that whole prefix are
re-sorted with the LCE comparator.  The result is exactly the
lexicographic order the paper's mergesort produces.
"""

from __future__ import annotations

import functools
from typing import Sequence

import numpy as np

from repro.errors import ParameterError
from repro.suffix.lce import LceOracle

#: Leading letters used as the vectorised primary sort key.
PREFIX_KEY_LETTERS = 24


class SparseSuffixArray:
    """Lexicographically sorted sample of suffixes with its sparse LCP.

    Parameters
    ----------
    codes:
        The full text (never copied).
    positions:
        The sampled suffix start positions (distinct, in range).
    lce:
        An LCE oracle over *codes* (fingerprint- or SA-backed).
    """

    def __init__(
        self,
        codes: np.ndarray,
        positions: "Sequence[int] | np.ndarray",
        lce: LceOracle,
    ) -> None:
        self._codes = np.asarray(codes, dtype=np.int64)
        pos = np.asarray(sorted(int(p) for p in positions), dtype=np.int64)
        n = len(self._codes)
        if pos.size and (int(pos[0]) < 0 or int(pos[-1]) >= n):
            raise ParameterError("sampled positions out of text range")
        if len(np.unique(pos)) != len(pos):
            raise ParameterError("sampled positions must be distinct")
        self._lce = lce
        self._ssa = self._sort_suffixes(pos)
        self._slcp = self._build_slcp()

    def _sort_suffixes(self, pos: np.ndarray) -> list[int]:
        if pos.size <= 1:
            return [int(p) for p in pos]
        n = len(self._codes)
        width = min(PREFIX_KEY_LETTERS, n)
        # Pad with -1 (sorts before every letter code) so that a suffix
        # shorter than the key width sorts first, matching suffix order.
        padded = np.concatenate((self._codes, np.full(width, -1, dtype=np.int64)))
        key = padded[pos[:, None] + np.arange(width, dtype=np.int64)[None, :]]
        # lexsort uses the *last* key as primary: feed columns reversed.
        order = np.lexsort(key[:, ::-1].T)
        ordered_pos = pos[order]
        ordered_key = key[order]

        # Refine runs whose whole prefix key ties with the LCE comparator.
        result: list[int] = []
        comparator = functools.cmp_to_key(self._lce.compare_suffixes)
        ties = np.all(ordered_key[1:] == ordered_key[:-1], axis=1)
        start = 0
        total = len(ordered_pos)
        while start < total:
            end = start
            while end < total - 1 and ties[end]:
                end += 1
            if end > start:
                run = sorted((int(p) for p in ordered_pos[start : end + 1]), key=comparator)
                result.extend(run)
            else:
                result.append(int(ordered_pos[start]))
            end += 1
            start = end
        return result

    def _build_slcp(self) -> list[int]:
        """LCP between lexicographically adjacent sampled suffixes."""
        slcp = [0] * len(self._ssa)
        n = len(self._codes)
        for idx in range(1, len(self._ssa)):
            i, j = self._ssa[idx - 1], self._ssa[idx]
            ell = self._lce.lce(i, j)
            slcp[idx] = min(ell, n - i, n - j)
        return slcp

    @property
    def positions(self) -> list[int]:
        """Sampled suffix starts in lexicographic suffix order (SSA)."""
        return list(self._ssa)

    @property
    def slcp(self) -> list[int]:
        """Sparse LCP array parallel to :attr:`positions`."""
        return list(self._slcp)

    def __len__(self) -> int:
        return len(self._ssa)

    def suffix_at_rank(self, rank: int) -> int:
        """Text position of the rank-th smallest sampled suffix."""
        return self._ssa[rank]

    def nbytes(self) -> int:
        """Analytic size of the SSA + SLCP arrays (8 bytes per entry)."""
        return 16 * len(self._ssa)
