"""The suffix-array text index used for locate queries.

Wraps a suffix array + LCP array with the classic ``O(m log n)``
pattern search (two binary searches yielding the SA interval of all
occurrences).  The paper performs locate with a suffix tree in
``O(m + occ)``; the SA binary search returns the identical occurrence
set and is the practical choice in Python (see DESIGN.md) — the extra
``log n`` applies equally to our index and all baselines.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Literal, Sequence

import numpy as np

from repro.errors import ConstructionError, PatternError
from repro.profiling import record_stage
from repro.suffix.batch import batch_intervals, pack_limit, packed_window_keys
from repro.suffix.doubling import (
    suffix_array_doubling,
    suffix_array_doubling_with_ranks,
)
from repro.suffix.lcp import lcp_array_kasai, lcp_from_ranks
from repro.suffix.sais import suffix_array_sais

#: How many per-length packed-key arrays one SuffixArray caches for
#: the batch path (each is one int64 per suffix).
_KEY_CACHE_LIMIT = 8


def build_suffix_array(
    codes: "Sequence[int] | np.ndarray",
    algorithm: Literal["doubling", "sais"] = "doubling",
) -> np.ndarray:
    """Construct the suffix array with the chosen algorithm."""
    if algorithm == "doubling":
        return suffix_array_doubling(codes)
    if algorithm == "sais":
        return suffix_array_sais(codes)
    raise ConstructionError(f"unknown suffix array algorithm {algorithm!r}")


class SuffixArray:
    """Suffix array + LCP array + pattern search over a code array.

    Parameters
    ----------
    codes:
        The text as an integer array.
    algorithm:
        ``"doubling"`` (default, vectorised) or ``"sais"`` (pure
        Python, O(n)).
    with_lcp:
        Build the LCP array too (required by the top-K oracle and the
        exact LCE; skippable for plain locate-only indexes).
    """

    def __init__(
        self,
        codes: "Sequence[int] | np.ndarray",
        algorithm: Literal["doubling", "sais"] = "doubling",
        with_lcp: bool = True,
    ) -> None:
        self._codes = np.asarray(codes, dtype=np.int64)
        if self._codes.ndim != 1 or len(self._codes) == 0:
            raise ConstructionError("suffix arrays require a non-empty 1-D text")
        t0 = time.perf_counter()
        self._ranks: "list[np.ndarray] | None" = None
        if algorithm == "doubling":
            # Retain the per-round rank arrays: they make the LCP
            # construction a handful of vectorised passes instead of a
            # Python Kasai walk, and are dropped as soon as it's built.
            self._sa, self._ranks = suffix_array_doubling_with_ranks(self._codes)
        else:
            self._sa = build_suffix_array(self._codes, algorithm)
        self.sa_seconds = time.perf_counter() - t0
        self.lcp_seconds = 0.0
        self.lcp_source: "str | None" = None
        self._lcp = self._build_lcp() if with_lcp else None
        self._key_cache: "OrderedDict[int, np.ndarray]" = OrderedDict()

    def _build_lcp(self) -> np.ndarray:
        """Build the LCP array, vectorised when rank arrays are held."""
        t0 = time.perf_counter()
        if self._ranks is not None:
            lcp = lcp_from_ranks(self._sa, self._ranks)
            self._ranks = None  # O(n log n) bytes: free once consumed
            self.lcp_source = "ranks"
        else:
            lcp = lcp_array_kasai(self._codes, self._sa)
            self.lcp_source = "kasai"
        self.lcp_seconds = time.perf_counter() - t0
        return lcp

    @classmethod
    def from_parts(
        cls,
        codes: np.ndarray,
        sa: np.ndarray,
        lcp: "np.ndarray | None" = None,
    ) -> "SuffixArray":
        """Rewrap an already-constructed suffix array (deserialisation).

        Skips construction entirely; *codes* and *sa* are adopted as
        given (so memory-mapped arrays stay memory-mapped).
        """
        instance = cls.__new__(cls)
        instance._codes = codes
        instance._sa = sa
        instance._lcp = lcp
        instance._ranks = None
        instance.sa_seconds = 0.0
        instance.lcp_seconds = 0.0
        instance.lcp_source = None
        instance._key_cache = OrderedDict()
        return instance

    # Pickle: the packed-key cache and the doubling rank arrays are
    # derived accelerators; drop both.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_key_cache", None)
        state.pop("_ranks", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._key_cache = OrderedDict()
        self._ranks = None
        self.__dict__.setdefault("sa_seconds", 0.0)
        self.__dict__.setdefault("lcp_seconds", 0.0)
        self.__dict__.setdefault("lcp_source", None)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def codes(self) -> np.ndarray:
        return self._codes

    @property
    def sa(self) -> np.ndarray:
        """The suffix array (leaves of the suffix tree in order)."""
        return self._sa

    @property
    def lcp(self) -> np.ndarray:
        if self._lcp is None:
            self._lcp = self._build_lcp()
        return self._lcp

    def drop_lcp(self) -> None:
        """Release the LCP array (pattern search does not need it).

        Construction-only consumers (the top-K oracle) use the LCP;
        indexes that keep a SuffixArray around purely for locate
        queries call this to shed the O(n) array from their footprint.
        Any retained doubling rank arrays (held for a vectorised LCP
        build that is now moot) are shed too.
        """
        self._lcp = None
        self._ranks = None

    @property
    def length(self) -> int:
        return len(self._codes)

    def __len__(self) -> int:
        return len(self._codes)

    # ------------------------------------------------------------------
    # Pattern search
    # ------------------------------------------------------------------
    def _compare_suffix(self, suffix: int, pattern: np.ndarray) -> int:
        """Three-way compare of text suffix vs pattern, prefix-aware.

        Returns 0 when the pattern is a prefix of the suffix (a match).
        """
        n = len(self._codes)
        m = len(pattern)
        length = min(n - suffix, m)
        chunk = self._codes[suffix : suffix + length]
        window = pattern[:length]
        diff = np.nonzero(chunk != window)[0]
        if diff.size:
            d = int(diff[0])
            return int(chunk[d]) - int(window[d])
        if length == m:
            return 0  # pattern fully matched
        return -1  # suffix is a proper prefix of the pattern: sorts before

    def interval(self, pattern: "Sequence[int] | np.ndarray") -> tuple[int, int]:
        """SA interval ``[lb, rb]`` of *pattern*; ``(0, -1)`` if absent.

        Two binary searches over the suffix array; O(m log n).
        """
        pattern = np.asarray(pattern, dtype=np.int64)
        if len(pattern) == 0:
            raise PatternError("patterns must be non-empty")
        if self._ranks is not None:
            # First locate query: construction is over.  The retained
            # doubling ranks only serve a vectorised LCP build; shed
            # them so query-only consumers (baselines, servers) never
            # carry the O(n log n) bytes (a later .lcp request falls
            # back to Kasai).
            self._ranks = None
        n = len(self._codes)

        # Lower bound: first suffix >= pattern (with prefix counting as match).
        lo, hi = 0, n
        while lo < hi:
            mid = (lo + hi) // 2
            if self._compare_suffix(int(self._sa[mid]), pattern) < 0:
                lo = mid + 1
            else:
                hi = mid
        lb = lo

        # Upper bound: first suffix whose comparison is > 0.
        lo, hi = lb, n
        while lo < hi:
            mid = (lo + hi) // 2
            if self._compare_suffix(int(self._sa[mid]), pattern) <= 0:
                lo = mid + 1
            else:
                hi = mid
        rb = lo - 1

        if rb < lb:
            return (0, -1)
        return (lb, rb)

    def occurrences(self, pattern: "Sequence[int] | np.ndarray") -> np.ndarray:
        """All starting positions of *pattern* in the text (unsorted)."""
        lb, rb = self.interval(pattern)
        if rb < lb:
            return np.empty(0, dtype=np.int64)
        return self._sa[lb : rb + 1]

    def interval_batch(self, matrix: "Sequence | np.ndarray") -> tuple[np.ndarray, np.ndarray]:
        """SA intervals for a whole batch of equal-length patterns.

        *matrix* holds one pattern per row; returns ``(lb, rb)`` int64
        arrays with one closed interval per row, identical to calling
        :meth:`interval` per pattern — but computed with the vectorised
        kernel of :mod:`repro.suffix.batch` (packed-key searchsorted
        when the length fits an int64 key, lockstep binary search
        otherwise).  Packed key arrays are cached per length, so
        repeated batches of a common length skip the encode pass.
        """
        matrix = np.ascontiguousarray(matrix, dtype=np.int64)
        if matrix.ndim != 2:
            raise PatternError("expected a 2-D matrix of equal-length patterns")
        if matrix.shape[1] == 0:
            raise PatternError("patterns must be non-empty")
        if self._ranks is not None:
            self._ranks = None  # first query: shed the LCP-build aid
        t0 = time.perf_counter()
        keys = self._packed_keys(matrix.shape[1])
        result = batch_intervals(self._codes, self._sa, matrix, packed_keys=keys)
        record_stage("locate", time.perf_counter() - t0)
        return result

    def _packed_keys(self, length: int) -> "np.ndarray | None":
        """The cached packed-key array for *length* (None if unpackable)."""
        cache = getattr(self, "_key_cache", None)
        if cache is None:
            cache = self._key_cache = OrderedDict()
        cached = cache.get(length)
        if cached is not None:
            cache.move_to_end(length)
            return cached
        if len(self._codes) == 0 or length > len(self._codes):
            return None
        base = int(self._codes.max()) + 2
        if length > pack_limit(base):
            return None
        keys = packed_window_keys(self._codes, self._sa, length, base)
        cache[length] = keys
        if len(cache) > _KEY_CACHE_LIMIT:
            cache.popitem(last=False)
        return keys

    def count(self, pattern: "Sequence[int] | np.ndarray") -> int:
        """The frequency ``|occ(pattern)|``."""
        lb, rb = self.interval(pattern)
        return max(0, rb - lb + 1)

    # ------------------------------------------------------------------
    # Size accounting (for the index-size experiments of Fig. 6)
    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Bytes held by the SA (+LCP if built); text excluded."""
        total = self._sa.nbytes
        if self._lcp is not None:
            total += self._lcp.nbytes
        return total
