"""LCP array construction.

``LCP[j]`` is the length of the longest common prefix of the suffixes
``SA[j-1]`` and ``SA[j]``; ``LCP[0] = 0`` — exactly the convention of
Section III of the paper.

Two constructions produce the identical array:

* :func:`lcp_from_ranks` — fully vectorised: given the per-round rank
  arrays retained by the prefix-doubling builder, the LCP of *every*
  adjacent SA pair is derived simultaneously by a descending-level
  walk (``O(log n)`` numpy passes of ``O(n)`` work).  This is the
  default build path.
* :func:`lcp_array_kasai` — the classic per-position Kasai walk,
  ``O(n)`` but a Python loop; kept as the independent cross-check and
  as the fallback when no rank arrays are available (SA-IS builds,
  deserialised suffix arrays).
"""

from __future__ import annotations

import numpy as np


def lcp_array_kasai(codes: np.ndarray, sa: np.ndarray) -> np.ndarray:
    """The LCP array of *codes* given its suffix array, in O(n).

    Kasai's algorithm walks positions in text order, exploiting that
    the LCP of position ``i`` drops by at most one relative to the LCP
    of position ``i - 1``.
    """
    codes = np.asarray(codes, dtype=np.int64)
    sa = np.asarray(sa, dtype=np.int64)
    n = len(codes)
    if len(sa) != n:
        raise ValueError("suffix array length does not match text length")
    lcp = np.zeros(n, dtype=np.int64)
    if n == 0:
        return lcp

    rank = np.empty(n, dtype=np.int64)
    rank[sa] = np.arange(n, dtype=np.int64)

    text = codes.tolist()  # Python list lookups are faster in the loop
    sa_list = sa.tolist()
    rank_list = rank.tolist()
    h = 0
    out = [0] * n
    for i in range(n):
        r = rank_list[i]
        if r > 0:
            j = sa_list[r - 1]
            limit = n - max(i, j)
            while h < limit and text[i + h] == text[j + h]:
                h += 1
            out[r] = h
            if h > 0:
                h -= 1
        else:
            h = 0
    return np.asarray(out, dtype=np.int64)


def lcp_from_ranks(sa: np.ndarray, ranks: "list[np.ndarray]") -> np.ndarray:
    """The LCP array from the prefix-doubling rank hierarchy, vectorised.

    ``ranks[k]`` must order the suffixes by their first ``2^k``
    letters (what :func:`~repro.suffix.doubling.
    suffix_array_doubling_with_ranks` retains).  For every adjacent SA
    pair simultaneously, walk the levels from the top down: equal
    ranks at level ``k`` mean the (advanced) suffixes share ``2^k``
    more letters, so add the step and advance both positions.  Two
    distinct suffixes have equal level-``k`` ranks **iff** they agree
    on their first ``2^k`` letters (a clipped suffix always ranks
    strictly below any longer extension), which makes the greedy walk
    exact — the classic O(log n) pairwise-LCP trick, applied to all
    ``n - 1`` pairs at once.
    """
    sa = np.asarray(sa, dtype=np.int64)
    n = len(sa)
    lcp = np.zeros(n, dtype=np.int64)
    if n < 2:
        return lcp
    if not ranks:
        raise ValueError("no rank arrays supplied")
    a = sa[:-1].copy()
    b = sa[1:].copy()
    h = np.zeros(n - 1, dtype=np.int64)
    top = np.int64(n - 1)
    for level in range(len(ranks) - 1, -1, -1):
        rank = ranks[level]
        step = np.int64(1) << level
        # Advanced positions past the end can never extend the match;
        # clip the gather and mask them out.
        eq = (
            (a < n)
            & (b < n)
            & (rank[np.minimum(a, top)] == rank[np.minimum(b, top)])
        )
        add = np.where(eq, step, np.int64(0))
        h += add
        a += add
        b += add
    lcp[1:] = h
    return lcp
