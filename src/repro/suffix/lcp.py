"""LCP array construction (Kasai et al., 2001).

``LCP[j]`` is the length of the longest common prefix of the suffixes
``SA[j-1]`` and ``SA[j]``; ``LCP[0] = 0`` — exactly the convention of
Section III of the paper.
"""

from __future__ import annotations

import numpy as np


def lcp_array_kasai(codes: np.ndarray, sa: np.ndarray) -> np.ndarray:
    """The LCP array of *codes* given its suffix array, in O(n).

    Kasai's algorithm walks positions in text order, exploiting that
    the LCP of position ``i`` drops by at most one relative to the LCP
    of position ``i - 1``.
    """
    codes = np.asarray(codes, dtype=np.int64)
    sa = np.asarray(sa, dtype=np.int64)
    n = len(codes)
    if len(sa) != n:
        raise ValueError("suffix array length does not match text length")
    lcp = np.zeros(n, dtype=np.int64)
    if n == 0:
        return lcp

    rank = np.empty(n, dtype=np.int64)
    rank[sa] = np.arange(n, dtype=np.int64)

    text = codes.tolist()  # Python list lookups are faster in the loop
    sa_list = sa.tolist()
    rank_list = rank.tolist()
    h = 0
    out = [0] * n
    for i in range(n):
        r = rank_list[i]
        if r > 0:
            j = sa_list[r - 1]
            limit = n - max(i, j)
            while h < limit and text[i + h] == text[j + h]:
                h += 1
            out[r] = h
            if h > 0:
                h -= 1
        else:
            h = 0
    return np.asarray(out, dtype=np.int64)
