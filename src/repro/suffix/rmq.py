"""Sparse-table range-minimum queries.

Used for (a) exact LCE queries over the LCP array and (b) the
RMQ-backed ``min``/``max`` local-utility extension.  O(n log n)
preprocessing, O(1) per query.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ParameterError


class SparseTableRmq:
    """O(1) range minimum (or maximum) over a static array.

    Parameters
    ----------
    values:
        The static array to index.
    maximum:
        When ``True`` answer range-*maximum* queries instead.
    """

    def __init__(self, values: "Sequence[float] | np.ndarray", maximum: bool = False) -> None:
        arr = np.asarray(values)
        if arr.ndim != 1:
            raise ParameterError("RMQ input must be a 1-D array")
        self._n = len(arr)
        self._maximum = maximum
        if self._n == 0:
            self._table: list[np.ndarray] = []
            return
        reduce = np.maximum if maximum else np.minimum
        levels = max(1, self._n.bit_length())
        table = [arr.copy()]
        length = 1
        for _ in range(1, levels):
            prev = table[-1]
            if 2 * length > self._n:
                break
            merged = reduce(prev[: self._n - 2 * length + 1], prev[length : self._n - length + 1])
            table.append(merged)
            length *= 2
        self._table = table

    @property
    def length(self) -> int:
        return self._n

    def query(self, lo: int, hi: int):
        """Min (or max) of ``values[lo .. hi]``, inclusive on both ends."""
        if not 0 <= lo <= hi < self._n:
            raise ParameterError(f"range [{lo}, {hi}] out of bounds for n={self._n}")
        span = hi - lo + 1
        level = span.bit_length() - 1
        length = 1 << level
        left = self._table[level][lo]
        right = self._table[level][hi - length + 1]
        if self._maximum:
            return max(left, right)
        return min(left, right)
