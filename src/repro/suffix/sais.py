"""Linear-time suffix array construction (SA-IS).

The paper cites Farach's linear-time construction; SA-IS (Nong, Zhang
& Chan, 2009) is the standard practical linear-time algorithm and
produces the identical suffix array.  This is a pure-Python
implementation kept for its O(n) guarantee and as an independent
cross-check of the faster ``numpy`` prefix-doubling construction; the
two are tested to agree on random inputs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

_L_TYPE = False
_S_TYPE = True


def suffix_array_sais(codes: "Sequence[int] | np.ndarray") -> np.ndarray:
    """Suffix array of *codes* via SA-IS, as an ``int64`` array.

    The input must be non-negative integers.  An implicit sentinel
    smaller than every letter terminates the text internally; it is
    not reported in the output.
    """
    codes = np.asarray(codes, dtype=np.int64)
    n = len(codes)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if n == 1:
        return np.zeros(1, dtype=np.int64)
    # Shift by +1 so that 0 is free for the sentinel.
    text = [int(c) + 1 for c in codes] + [0]
    sigma = max(text) + 1
    sa = _sais(text, sigma)
    # Drop the sentinel suffix (always first).
    return np.asarray(sa[1:], dtype=np.int64)


def _classify(text: list[int]) -> list[bool]:
    """S/L types per position; the sentinel is S-type by definition."""
    n = len(text)
    types = [_S_TYPE] * n
    for i in range(n - 2, -1, -1):
        if text[i] > text[i + 1]:
            types[i] = _L_TYPE
        elif text[i] < text[i + 1]:
            types[i] = _S_TYPE
        else:
            types[i] = types[i + 1]
    return types


def _is_lms(types: list[bool], i: int) -> bool:
    return i > 0 and types[i] == _S_TYPE and types[i - 1] == _L_TYPE


def _bucket_sizes(text: list[int], sigma: int) -> list[int]:
    sizes = [0] * sigma
    for c in text:
        sizes[c] += 1
    return sizes


def _bucket_heads(sizes: list[int]) -> list[int]:
    heads = [0] * len(sizes)
    total = 0
    for c, size in enumerate(sizes):
        heads[c] = total
        total += size
    return heads


def _bucket_tails(sizes: list[int]) -> list[int]:
    tails = [0] * len(sizes)
    total = 0
    for c, size in enumerate(sizes):
        total += size
        tails[c] = total - 1
    return tails


def _induce(text: list[int], sigma: int, types: list[bool], lms_order: list[int]) -> list[int]:
    """Induced sort: place LMS suffixes then induce L- and S-types."""
    n = len(text)
    sizes = _bucket_sizes(text, sigma)
    sa = [-1] * n

    tails = _bucket_tails(sizes)
    for i in reversed(lms_order):
        c = text[i]
        sa[tails[c]] = i
        tails[c] -= 1

    heads = _bucket_heads(sizes)
    for j in range(n):
        i = sa[j] - 1
        if sa[j] > 0 and types[i] == _L_TYPE:
            c = text[i]
            sa[heads[c]] = i
            heads[c] += 1

    tails = _bucket_tails(sizes)
    for j in range(n - 1, -1, -1):
        i = sa[j] - 1
        if sa[j] > 0 and types[i] == _S_TYPE:
            c = text[i]
            sa[tails[c]] = i
            tails[c] -= 1
    return sa


def _sais(text: list[int], sigma: int) -> list[int]:
    n = len(text)
    types = _classify(text)
    lms_positions = [i for i in range(1, n) if _is_lms(types, i)]

    sa = _induce(text, sigma, types, lms_positions)

    # Name LMS substrings in the order they appear in the induced SA.
    lms_in_sa = [i for i in sa if _is_lms(types, i)]
    names = [-1] * n
    current = 0
    names[lms_in_sa[0]] = 0
    for prev, cur in zip(lms_in_sa, lms_in_sa[1:]):
        if not _lms_substrings_equal(text, types, prev, cur):
            current += 1
        names[cur] = current

    if current + 1 == len(lms_positions):
        # All names unique: the induced order is already correct.
        order = sorted(lms_positions, key=lambda i: names[i])
    else:
        reduced = [names[i] for i in lms_positions]
        sub_sa = _sais_from_names(reduced, current + 1)
        order = [lms_positions[i] for i in sub_sa]

    return _induce(text, sigma, types, order)


def _sais_from_names(reduced: list[int], sigma: int) -> list[int]:
    """Recurse on the reduced string of LMS names."""
    if len(reduced) == 1:
        return [0]
    if sigma == len(reduced):
        # All distinct: counting sort suffices.
        sa = [0] * len(reduced)
        for i, name in enumerate(reduced):
            sa[name] = i
        return sa
    # Append a sentinel name (-1 shifted to 0 by +1 trick).
    shifted = [name + 1 for name in reduced] + [0]
    sub = _sais(shifted, sigma + 1)
    return sub[1:]


def _lms_substrings_equal(text: list[int], types: list[bool], a: int, b: int) -> bool:
    """Compare two LMS substrings (letters and types, inclusive ends)."""
    n = len(text)
    offset = 0
    while True:
        ia, ib = a + offset, b + offset
        if ia >= n or ib >= n:
            return False
        a_is_lms = offset > 0 and _is_lms(types, ia)
        b_is_lms = offset > 0 and _is_lms(types, ib)
        if a_is_lms and b_is_lms:
            return True
        if a_is_lms != b_is_lms:
            return False
        if text[ia] != text[ib] or types[ia] != types[ib]:
            return False
        offset += 1
