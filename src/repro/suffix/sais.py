"""Linear-time suffix array construction (SA-IS).

The paper cites Farach's linear-time construction; SA-IS (Nong, Zhang
& Chan, 2009) is the standard practical linear-time algorithm and
produces the identical suffix array.

Two implementations live here:

* :func:`suffix_array_sais` — the default, on int64 numpy arrays:
  S/L classification, bucket counting (``np.bincount``/``cumsum``),
  LMS-substring naming (one ragged vectorised comparison pass), and an
  induced sort that walks the buckets with vectorised frontier
  batches.  Within one bucket, a batch can only seed the *next* batch
  through runs of the same letter, so the per-bucket loop iterates at
  most ``max run length`` times — a handful of numpy calls per bucket
  instead of one Python iteration per text position.
* :func:`suffix_array_sais_list` — the original pure-Python
  list-based implementation, kept verbatim as an independent
  cross-check (the two are tested to agree with each other, with
  prefix doubling, and with naive sorting on adversarial inputs).

Both keep the O(n) guarantee; the numpy variant is what makes that
guarantee competitive with the vectorised prefix doubling instead of
~100x slower.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.suffix.batch import ragged_ids_offsets

_L_TYPE = False
_S_TYPE = True


def suffix_array_sais(codes: "Sequence[int] | np.ndarray") -> np.ndarray:
    """Suffix array of *codes* via numpy SA-IS, as an ``int64`` array.

    The input must be non-negative integers.  An implicit sentinel
    smaller than every letter terminates the text internally; it is
    not reported in the output.
    """
    codes = np.asarray(codes, dtype=np.int64)
    n = len(codes)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if n == 1:
        return np.zeros(1, dtype=np.int64)
    # Shift by +1 so that 0 is free for the sentinel.
    text = np.empty(n + 1, dtype=np.int64)
    np.add(codes, 1, out=text[:n])
    text[n] = 0
    sa = _sais_numpy(text, int(text[:n].max()) + 1)
    # Drop the sentinel suffix (always first).
    return sa[1:]


# ----------------------------------------------------------------------
# NumPy SA-IS
# ----------------------------------------------------------------------
def _classify_numpy(text: np.ndarray) -> np.ndarray:
    """S/L types per position (bool, True = S); the sentinel is S."""
    n = len(text)
    types = np.empty(n, dtype=bool)
    types[-1] = _S_TYPE
    if n == 1:
        return types
    lt = text[:-1] < text[1:]
    neq = text[:-1] != text[1:]
    # Equal runs inherit the type decided at the next differing
    # position: a reversed running-minimum turns "positions where the
    # text changes" into "next change at or after i".  The unique
    # smallest sentinel guarantees a change before the end.
    idx = np.where(neq, np.arange(n - 1, dtype=np.int64), np.int64(n - 2))
    nxt = np.minimum.accumulate(idx[::-1])[::-1]
    types[:-1] = lt[nxt]
    return types


def _group_by_letter(
    letters: np.ndarray,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Stable grouping of *letters*: the shared scatter preparation.

    Returns ``(perm, sorted_letters, uniq, counts, within)``: a stable
    permutation grouping equal letters (original order preserved
    inside a group), the distinct letters with their counts, and each
    entry's rank within its group.
    """
    perm = np.argsort(letters, kind="stable")
    sorted_letters = letters[perm]
    change = np.empty(len(perm), dtype=bool)
    change[0] = True
    change[1:] = sorted_letters[1:] != sorted_letters[:-1]
    group_starts = np.flatnonzero(change)
    uniq = sorted_letters[group_starts]
    counts = np.diff(np.append(group_starts, len(perm)))
    within = np.arange(len(perm), dtype=np.int64) - np.repeat(group_starts, counts)
    return perm, sorted_letters, uniq, counts, within


def _place_at_tails(
    sa: np.ndarray,
    text: np.ndarray,
    order: np.ndarray,
    ends: np.ndarray,
) -> None:
    """Seed *order* (LMS positions) into the tail of each letter bucket.

    Equivalent to iterating ``reversed(order)`` and placing each entry
    at a decrementing bucket tail: within one letter, entries keep
    their *order* order, occupying the last slots of the bucket.
    """
    perm, sorted_letters, _, counts, within = _group_by_letter(text[order])
    slots = ends[sorted_letters] - np.repeat(counts, counts) + within
    sa[slots] = order[perm]


def _expand_chains(
    chain_heads: np.ndarray, limits: np.ndarray
) -> np.ndarray:
    """Expand same-letter induction chains in sequential-scan order.

    ``chain_heads[j]`` starts a chain that descends one text position
    at a time down to ``limits[j]`` (the start of its same-letter
    run).  The sequential scan interleaves chains breadth-first:
    depth-0 entries of every chain (in root order), then depth-1, ...
    — reproduced here with one ragged expansion and one lexsort.
    """
    roots, depth = ragged_ids_offsets(chain_heads - limits + 1)
    positions = chain_heads[roots] - depth
    return positions[np.lexsort((roots, depth))]


def _induce_numpy(
    text: np.ndarray,
    sigma: int,
    types: np.ndarray,
    lms_order: np.ndarray,
    run_start: np.ndarray,
) -> np.ndarray:
    """Induced sort: place LMS suffixes then induce L- and S-types.

    The sequential scans of the textbook algorithm become one bucket
    walk with three vectorised steps per non-empty bucket: (1) expand
    the bucket's same-letter induction chains analytically (adjacent
    equal letters share their type, so a chain is a contiguous slice
    of one run — no frontier iteration), (2) scatter the cross-bucket
    inductions of the now-complete bucket region with one grouped
    placement, (3) likewise for the seeded LMS tail block, which only
    feeds strictly later buckets.
    """
    n = len(text)
    sizes = np.bincount(text, minlength=sigma)
    ends = np.cumsum(sizes)
    starts = ends - sizes
    present = np.flatnonzero(sizes)

    sa = np.full(n, -1, dtype=np.int64)
    _place_at_tails(sa, text, lms_order, ends)

    # ---- L-scan: buckets ascending, heads filling left to right ----
    heads = starts.copy()

    def place_cross_l(batch: np.ndarray, c: int) -> None:
        """Induce *batch*'s L-type predecessors into buckets > c."""
        prev = batch[batch > 0] - 1
        if not len(prev):
            return
        letters = text[prev]
        keep = (~types[prev]) & (letters != c)
        prev = prev[keep]
        if not len(prev):
            return
        letters = letters[keep]
        if len(prev) <= 8:
            # Tiny batches (the normal case for near-distinct
            # alphabets) skip the grouped machinery: a scalar walk is
            # the sequential scan itself.
            for position, letter in zip(prev.tolist(), letters.tolist()):
                sa[heads[letter]] = position
                heads[letter] += 1
            return
        perm, sorted_letters, uniq, counts, within = _group_by_letter(letters)
        sa[heads[sorted_letters] + within] = prev[perm]
        heads[uniq] += counts

    for c in present:
        # Roots: L-entries induced into this bucket by earlier buckets.
        roots = sa[starts[c] : heads[c]].copy()
        tail = sa[heads[c] : ends[c]]
        tail = tail[tail >= 0]
        if len(roots):
            cand = roots[roots > 0] - 1
            cand = cand[(text[cand] == c) & ~types[cand]]
            if len(cand):
                chain = _expand_chains(cand, run_start[cand])
                sa[heads[c] : heads[c] + len(chain)] = chain
                heads[c] += len(chain)
                roots = np.concatenate([roots, chain])
        # One cross-bucket scatter covers the L-region and the seeded
        # LMS tail block: the tail follows the region in scan order,
        # and its equal-letter predecessors are S-type, so it only
        # feeds strictly later buckets.
        batch = np.concatenate([roots, tail]) if len(roots) else tail
        place_cross_l(batch, c)

    lcounts = heads - starts

    # ---- S-scan: buckets descending, tails filling right to left ----
    tails = ends.copy()

    def place_cross_s(batch: np.ndarray, c: int) -> None:
        """Induce *batch*'s S-type predecessors into buckets < c."""
        prev = batch[batch > 0] - 1
        if not len(prev):
            return
        letters = text[prev]
        keep = types[prev] & (letters != c)
        prev = prev[keep]
        if not len(prev):
            return
        letters = letters[keep]
        if len(prev) <= 8:
            for position, letter in zip(prev.tolist(), letters.tolist()):
                tails[letter] -= 1
                sa[tails[letter]] = position
            return
        perm, sorted_letters, uniq, counts, within = _group_by_letter(letters)
        sa[tails[sorted_letters] - 1 - within] = prev[perm]
        tails[uniq] -= counts

    for c in present[::-1]:
        # Roots: S-entries induced into this bucket by later buckets,
        # in descending-scan order (placement order).
        roots = sa[tails[c] : ends[c]][::-1].copy()
        lblock = sa[starts[c] : starts[c] + lcounts[c]][::-1].copy()
        if len(roots):
            cand = roots[roots > 0] - 1
            cand = cand[(text[cand] == c) & types[cand]]
            if len(cand):
                chain = _expand_chains(cand, run_start[cand])
                sa[tails[c] - len(chain) : tails[c]] = chain[::-1]
                tails[c] -= len(chain)
                roots = np.concatenate([roots, chain])
        # One cross-bucket scatter covers the S-region and the final
        # L-block: the L-block follows in descending-scan order and
        # induces only into strictly earlier buckets.
        batch = np.concatenate([roots, lblock]) if len(roots) else lblock
        place_cross_s(batch, c)
    return sa


def _name_lms(
    text: np.ndarray,
    types: np.ndarray,
    lms_positions: np.ndarray,
    lms_in_sa: np.ndarray,
) -> "tuple[np.ndarray, int]":
    """Name the LMS substrings in induced-SA order, vectorised.

    Replicates the list implementation's comparison convention: two
    LMS substrings are equal iff their spans (up to, and requiring,
    the next LMS position) have the same length and agree letter- and
    type-wise; the final overlap letter is re-compared as the head of
    the following name, keeping the naming sound.  All adjacent pairs
    are compared in one ragged vectorised pass (total work bounded by
    the summed span lengths, i.e. O(n)).
    """
    n = len(text)
    span_of = np.full(n, -1, dtype=np.int64)
    span_of[lms_positions[:-1]] = np.diff(lms_positions)

    a = lms_in_sa[:-1]
    b = lms_in_sa[1:]
    length_a = span_of[a]
    candidate = (length_a == span_of[b]) & (length_a > 0)
    equal = np.zeros(len(a), dtype=bool)
    which = np.flatnonzero(candidate)
    if len(which):
        pair_id, offsets = ragged_ids_offsets(length_a[which])
        pa = a[which][pair_id] + offsets
        pb = b[which][pair_id] + offsets
        mismatch = (text[pa] != text[pb]) | (types[pa] != types[pb])
        bad = np.bincount(pair_id[mismatch], minlength=len(which))
        equal[which] = bad == 0

    names_in_sa = np.empty(len(lms_in_sa), dtype=np.int64)
    names_in_sa[0] = 0
    np.cumsum(~equal, out=names_in_sa[1:])
    name_of = np.empty(n, dtype=np.int64)
    name_of[lms_in_sa] = names_in_sa
    return name_of, int(names_in_sa[-1]) + 1


def _sais_numpy(text: np.ndarray, sigma: int) -> np.ndarray:
    """SA of *text* (which must end with a unique smallest sentinel)."""
    n = len(text)
    if n == 1:
        return np.zeros(1, dtype=np.int64)
    # Dense alphabets (mostly singleton buckets — typical for the
    # reduced LMS-name strings of low-repetition texts) defeat the
    # bucket walk's vectorisation *and* SA-IS's linear advantage at
    # once: nearly-distinct symbols mean prefix doubling finishes in
    # one or two fully vectorised rounds.  Delegate those; keep the
    # linear induced sort for the sparse/repetitive regime where it
    # genuinely wins.
    if int(np.count_nonzero(np.bincount(text, minlength=sigma))) * 8 > n:
        from repro.suffix.doubling import suffix_array_doubling

        return suffix_array_doubling(text)
    types = _classify_numpy(text)
    lms_mask = np.zeros(n, dtype=bool)
    lms_mask[1:] = types[1:] & ~types[:-1]
    lms_positions = np.flatnonzero(lms_mask)

    # Start of the maximal same-letter run containing each position
    # (bounds the analytic chain expansion of the induced sort).
    boundaries = np.zeros(n, dtype=np.int64)
    boundaries[1:] = np.where(
        text[1:] != text[:-1], np.arange(1, n, dtype=np.int64), np.int64(0)
    )
    run_start = np.maximum.accumulate(boundaries)

    sa = _induce_numpy(text, sigma, types, lms_positions, run_start)
    lms_in_sa = sa[lms_mask[sa]]
    name_of, num_names = _name_lms(text, types, lms_positions, lms_in_sa)

    if num_names == len(lms_positions):
        # All names unique: the induced order is already correct.
        order = lms_positions[np.argsort(name_of[lms_positions], kind="stable")]
    else:
        reduced = name_of[lms_positions]
        shifted = np.empty(len(reduced) + 1, dtype=np.int64)
        np.add(reduced, 1, out=shifted[:-1])
        shifted[-1] = 0
        sub_sa = _sais_numpy(shifted, num_names + 1)[1:]
        order = lms_positions[sub_sa]

    return _induce_numpy(text, sigma, types, order, run_start)


# ----------------------------------------------------------------------
# Pure-Python reference implementation (cross-check)
# ----------------------------------------------------------------------
def suffix_array_sais_list(codes: "Sequence[int] | np.ndarray") -> np.ndarray:
    """The original list-based SA-IS; slow, kept as a cross-check."""
    codes = np.asarray(codes, dtype=np.int64)
    n = len(codes)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if n == 1:
        return np.zeros(1, dtype=np.int64)
    # Shift by +1 so that 0 is free for the sentinel.
    text = [int(c) + 1 for c in codes] + [0]
    sigma = max(text) + 1
    sa = _sais(text, sigma)
    # Drop the sentinel suffix (always first).
    return np.asarray(sa[1:], dtype=np.int64)


def _classify(text: list[int]) -> list[bool]:
    """S/L types per position; the sentinel is S-type by definition."""
    n = len(text)
    types = [_S_TYPE] * n
    for i in range(n - 2, -1, -1):
        if text[i] > text[i + 1]:
            types[i] = _L_TYPE
        elif text[i] < text[i + 1]:
            types[i] = _S_TYPE
        else:
            types[i] = types[i + 1]
    return types


def _is_lms(types: list[bool], i: int) -> bool:
    return i > 0 and types[i] == _S_TYPE and types[i - 1] == _L_TYPE


def _bucket_sizes(text: list[int], sigma: int) -> list[int]:
    sizes = [0] * sigma
    for c in text:
        sizes[c] += 1
    return sizes


def _bucket_heads(sizes: list[int]) -> list[int]:
    heads = [0] * len(sizes)
    total = 0
    for c, size in enumerate(sizes):
        heads[c] = total
        total += size
    return heads


def _bucket_tails(sizes: list[int]) -> list[int]:
    tails = [0] * len(sizes)
    total = 0
    for c, size in enumerate(sizes):
        total += size
        tails[c] = total - 1
    return tails


def _induce(text: list[int], sigma: int, types: list[bool], lms_order: list[int]) -> list[int]:
    """Induced sort: place LMS suffixes then induce L- and S-types."""
    n = len(text)
    sizes = _bucket_sizes(text, sigma)
    sa = [-1] * n

    tails = _bucket_tails(sizes)
    for i in reversed(lms_order):
        c = text[i]
        sa[tails[c]] = i
        tails[c] -= 1

    heads = _bucket_heads(sizes)
    for j in range(n):
        i = sa[j] - 1
        if sa[j] > 0 and types[i] == _L_TYPE:
            c = text[i]
            sa[heads[c]] = i
            heads[c] += 1

    tails = _bucket_tails(sizes)
    for j in range(n - 1, -1, -1):
        i = sa[j] - 1
        if sa[j] > 0 and types[i] == _S_TYPE:
            c = text[i]
            sa[tails[c]] = i
            tails[c] -= 1
    return sa


def _sais(text: list[int], sigma: int) -> list[int]:
    n = len(text)
    types = _classify(text)
    lms_positions = [i for i in range(1, n) if _is_lms(types, i)]

    sa = _induce(text, sigma, types, lms_positions)

    # Name LMS substrings in the order they appear in the induced SA.
    lms_in_sa = [i for i in sa if _is_lms(types, i)]
    names = [-1] * n
    current = 0
    names[lms_in_sa[0]] = 0
    for prev, cur in zip(lms_in_sa, lms_in_sa[1:]):
        if not _lms_substrings_equal(text, types, prev, cur):
            current += 1
        names[cur] = current

    if current + 1 == len(lms_positions):
        # All names unique: the induced order is already correct.
        order = sorted(lms_positions, key=lambda i: names[i])
    else:
        reduced = [names[i] for i in lms_positions]
        sub_sa = _sais_from_names(reduced, current + 1)
        order = [lms_positions[i] for i in sub_sa]

    return _induce(text, sigma, types, order)


def _sais_from_names(reduced: list[int], sigma: int) -> list[int]:
    """Recurse on the reduced string of LMS names."""
    if len(reduced) == 1:
        return [0]
    if sigma == len(reduced):
        # All distinct: counting sort suffices.
        sa = [0] * len(reduced)
        for i, name in enumerate(reduced):
            sa[name] = i
        return sa
    # Append a sentinel name (-1 shifted to 0 by +1 trick).
    shifted = [name + 1 for name in reduced] + [0]
    sub = _sais(shifted, sigma + 1)
    return sub[1:]


def _lms_substrings_equal(text: list[int], types: list[bool], a: int, b: int) -> bool:
    """Compare two LMS substrings (letters and types, inclusive ends)."""
    n = len(text)
    offset = 0
    while True:
        ia, ib = a + offset, b + offset
        if ia >= n or ib >= n:
            return False
        a_is_lms = offset > 0 and _is_lms(types, ia)
        b_is_lms = offset > 0 and _is_lms(types, ib)
        if a_is_lms and b_is_lms:
            return True
        if a_is_lms != b_is_lms:
            return False
        if text[ia] != text[ib] or types[ia] != types[ib]:
            return False
        offset += 1
