"""Suffix-array substrate: construction, LCP, RMQ, LCE, traversals."""

from repro.suffix.doubling import (
    suffix_array_doubling,
    suffix_array_doubling_with_ranks,
)
from repro.suffix.enhanced import (
    LcpInterval,
    bottom_up_intervals,
    lcp_interval_arrays,
    leaf_edge_arrays,
    leaf_interval_arrays,
)
from repro.suffix.lce import FingerprintLce, SuffixArrayLce, naive_lce
from repro.suffix.lcp import lcp_array_kasai, lcp_from_ranks
from repro.suffix.rmq import SparseTableRmq
from repro.suffix.sais import suffix_array_sais, suffix_array_sais_list
from repro.suffix.sparse import SparseSuffixArray
from repro.suffix.suffix_array import SuffixArray, build_suffix_array

__all__ = [
    "FingerprintLce",
    "LcpInterval",
    "SparseSuffixArray",
    "SparseTableRmq",
    "SuffixArray",
    "SuffixArrayLce",
    "bottom_up_intervals",
    "build_suffix_array",
    "lcp_array_kasai",
    "lcp_from_ranks",
    "lcp_interval_arrays",
    "leaf_edge_arrays",
    "leaf_interval_arrays",
    "naive_lce",
    "suffix_array_doubling",
    "suffix_array_doubling_with_ranks",
    "suffix_array_sais",
    "suffix_array_sais_list",
]
