"""Longest-common-extension (LCE) oracles.

The paper's Approximate-Top-K uses Prezza's in-place LCE structure to
compare sampled suffixes in polylog time.  We provide two oracles with
the same interface:

* :class:`FingerprintLce` — Karp-Rabin binary search, O(log n) per
  query over an O(n) fingerprint table.  This is the substitution for
  Prezza's structure (same polylog query class; see DESIGN.md) and is
  what Approximate-Top-K uses, because it does **not** require a full
  suffix array — keeping the sampling algorithm's auxiliary space
  proportional to the sample, which is the entire point of Section VI.
* :class:`SuffixArrayLce` — exact O(1) LCE via inverse SA + LCP + RMQ,
  used as a cross-check and wherever a suffix array already exists.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.hashing.karp_rabin import KarpRabinFingerprinter
from repro.suffix.lcp import lcp_array_kasai
from repro.suffix.rmq import SparseTableRmq


class LceOracle(Protocol):
    """Minimal interface shared by the two LCE implementations."""

    def lce(self, i: int, j: int) -> int:  # pragma: no cover - protocol
        """Length of the longest common prefix of suffixes *i* and *j*."""
        ...

    def compare_suffixes(self, i: int, j: int) -> int:  # pragma: no cover
        """Three-way lexicographic comparison of suffixes *i* and *j*."""
        ...


def naive_lce(codes: np.ndarray, i: int, j: int) -> int:
    """Reference LCE by direct letter comparison (test oracle)."""
    n = len(codes)
    k = 0
    while i + k < n and j + k < n and codes[i + k] == codes[j + k]:
        k += 1
    return k


class _CompareMixin:
    """Lexicographic suffix comparison on top of an ``lce`` method."""

    _codes: np.ndarray

    def compare_suffixes(self, i: int, j: int) -> int:
        """Return <0, 0, >0 as suffix *i* compares to suffix *j*.

        A proper prefix sorts first, matching suffix-array order for
        texts without a sentinel.
        """
        if i == j:
            return 0
        n = len(self._codes)
        k = self.lce(i, j)  # type: ignore[attr-defined]
        if i + k >= n:
            return -1
        if j + k >= n:
            return 1
        return int(self._codes[i + k]) - int(self._codes[j + k])


class FingerprintLce(_CompareMixin):
    """LCE by binary search over Karp-Rabin fingerprint equality.

    With 62-bit fingerprints the per-comparison error probability is
    negligible, and every positive answer is verified against a final
    direct letter comparison being unnecessary: a fingerprint mismatch
    is always correct, and a spurious match would need a 62-bit
    collision.
    """

    def __init__(self, codes: np.ndarray, fingerprinter: "KarpRabinFingerprinter | None" = None,
                 seed: int = 0) -> None:
        self._codes = np.asarray(codes, dtype=np.int64)
        self._fp = fingerprinter or KarpRabinFingerprinter(self._codes, seed=seed)

    #: Letters compared directly before falling back to binary search.
    #: Most LCE queries on non-repetitive data resolve in this scan.
    _DIRECT_SCAN = 16

    def lce(self, i: int, j: int) -> int:
        n = len(self._codes)
        if i == j:
            return n - i
        if i >= n or j >= n:
            return 0
        max_len = n - max(i, j)
        codes = self._codes
        scan = min(self._DIRECT_SCAN, max_len)
        k = 0
        while k < scan and codes[i + k] == codes[j + k]:
            k += 1
        if k < scan or k == max_len:
            return k
        lo, hi = k, max_len  # invariant: lce >= lo, lce <= hi
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._fp.fragment(i, mid) == self._fp.fragment(j, mid):
                lo = mid
            else:
                hi = mid - 1
        return lo


class SuffixArrayLce(_CompareMixin):
    """Exact O(1) LCE from SA + LCP + sparse-table RMQ."""

    def __init__(self, codes: np.ndarray, sa: np.ndarray, lcp: "np.ndarray | None" = None) -> None:
        self._codes = np.asarray(codes, dtype=np.int64)
        self._sa = np.asarray(sa, dtype=np.int64)
        n = len(self._codes)
        if lcp is None:
            lcp = lcp_array_kasai(self._codes, self._sa)
        self._lcp = np.asarray(lcp, dtype=np.int64)
        self._rank = np.empty(n, dtype=np.int64)
        self._rank[self._sa] = np.arange(n, dtype=np.int64)
        self._rmq = SparseTableRmq(self._lcp)

    def lce(self, i: int, j: int) -> int:
        n = len(self._codes)
        if i == j:
            return n - i
        if i >= n or j >= n:
            return 0
        ri, rj = int(self._rank[i]), int(self._rank[j])
        if ri > rj:
            ri, rj = rj, ri
        return int(self._rmq.query(ri + 1, rj))
