"""Enhanced-suffix-array bottom-up traversal (Abouelhoda et al., 2004).

``bottom_up_intervals`` simulates a bottom-up traversal of the suffix
tree directly on the SA/LCP arrays, yielding one *lcp-interval* per
explicit internal node.  This is Algorithm 4.4 of Abouelhoda, Kurtz &
Ohlebusch, which the paper uses in Step 3 of Approximate-Top-K; the
exact top-K oracle of Section V is built from the same traversal.

For an internal node ``v``:

* ``lcp``         — the string depth ``sd(v)`` (length of ``str(v)``);
* ``lb, rb``      — the SA interval of all occurrences of ``str(v)``;
* ``parent_lcp``  — the string depth ``sd(p(v))`` of the parent, so
  that ``q(v) = lcp - parent_lcp`` letters label the incoming edge:
  each represents a distinct substring with the same frequency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np


@dataclass(frozen=True)
class LcpInterval:
    """An explicit suffix-tree node as an interval of the suffix array."""

    lcp: int
    lb: int
    rb: int
    parent_lcp: int

    @property
    def frequency(self) -> int:
        """Number of occurrences of the node's string: leaves below it."""
        return self.rb - self.lb + 1

    @property
    def edge_length(self) -> int:
        """``q(v)``: distinct substrings represented by this node."""
        return self.lcp - self.parent_lcp


def bottom_up_intervals(lcp: np.ndarray) -> Iterator[LcpInterval]:
    """Yield every internal lcp-interval of the suffix array, bottom-up.

    The root (``lcp == 0``) is *not* yielded: it represents the empty
    string.  Intervals are emitted child-before-parent, which is the
    order the frequency-accumulating consumers need.

    Parameters
    ----------
    lcp:
        The LCP array with ``lcp[0] == 0`` (Kasai convention).
    """
    n = len(lcp)
    if n == 0:
        return
    # Stack of (depth, left_boundary) pairs; the sentinel keeps the
    # root interval at the bottom.
    stack: list[list[int]] = [[0, 0]]
    for i in range(1, n):
        current = int(lcp[i])
        lb = i - 1
        while stack[-1][0] > current:
            depth, left = stack.pop()
            parent_depth = max(current, stack[-1][0])
            yield LcpInterval(lcp=depth, lb=left, rb=i - 1, parent_lcp=parent_depth)
            lb = left
        if stack[-1][0] < current:
            stack.append([current, lb])
    while len(stack) > 1:
        depth, left = stack.pop()
        parent_depth = stack[-1][0]
        yield LcpInterval(lcp=depth, lb=left, rb=n - 1, parent_lcp=parent_depth)


def leaf_intervals(sa: np.ndarray, lcp: np.ndarray, text_length: int) -> Iterator[LcpInterval]:
    """Yield one interval per suffix-tree *leaf* (frequency-1 substrings).

    The leaf for suffix ``SA[i]`` has string depth ``n - SA[i]`` and its
    parent's depth is ``max(lcp[i], lcp[i+1])`` — the deeper of the two
    neighbouring LCP values is the branching point above the leaf.
    Leaves whose edge is empty (a suffix equal to an internal node's
    string, impossible without duplicate suffixes) are skipped.
    """
    n = len(sa)
    for i in range(n):
        depth = text_length - int(sa[i])
        left_lcp = int(lcp[i]) if i > 0 else 0
        right_lcp = int(lcp[i + 1]) if i + 1 < n else 0
        parent_depth = max(left_lcp, right_lcp)
        if depth > parent_depth:
            yield LcpInterval(lcp=depth, lb=i, rb=i, parent_lcp=parent_depth)
