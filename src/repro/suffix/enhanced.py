"""Enhanced-suffix-array bottom-up traversal (Abouelhoda et al., 2004).

``bottom_up_intervals`` simulates a bottom-up traversal of the suffix
tree directly on the SA/LCP arrays, yielding one *lcp-interval* per
explicit internal node.  This is Algorithm 4.4 of Abouelhoda, Kurtz &
Ohlebusch, which the paper uses in Step 3 of Approximate-Top-K; the
exact top-K oracle of Section V is built from the same traversal.

For an internal node ``v``:

* ``lcp``         — the string depth ``sd(v)`` (length of ``str(v)``);
* ``lb, rb``      — the SA interval of all occurrences of ``str(v)``;
* ``parent_lcp``  — the string depth ``sd(p(v))`` of the parent, so
  that ``q(v) = lcp - parent_lcp`` letters label the incoming edge:
  each represents a distinct substring with the same frequency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np


@dataclass(frozen=True)
class LcpInterval:
    """An explicit suffix-tree node as an interval of the suffix array."""

    lcp: int
    lb: int
    rb: int
    parent_lcp: int

    @property
    def frequency(self) -> int:
        """Number of occurrences of the node's string: leaves below it."""
        return self.rb - self.lb + 1

    @property
    def edge_length(self) -> int:
        """``q(v)``: distinct substrings represented by this node."""
        return self.lcp - self.parent_lcp


def bottom_up_intervals(lcp: np.ndarray) -> Iterator[LcpInterval]:
    """Yield every internal lcp-interval of the suffix array, bottom-up.

    The root (``lcp == 0``) is *not* yielded: it represents the empty
    string.  Intervals are emitted child-before-parent, which is the
    order the frequency-accumulating consumers need.

    Parameters
    ----------
    lcp:
        The LCP array with ``lcp[0] == 0`` (Kasai convention).
    """
    n = len(lcp)
    if n == 0:
        return
    # Stack of (depth, left_boundary) pairs; the sentinel keeps the
    # root interval at the bottom.
    stack: list[list[int]] = [[0, 0]]
    for i in range(1, n):
        current = int(lcp[i])
        lb = i - 1
        while stack[-1][0] > current:
            depth, left = stack.pop()
            parent_depth = max(current, stack[-1][0])
            yield LcpInterval(lcp=depth, lb=left, rb=i - 1, parent_lcp=parent_depth)
            lb = left
        if stack[-1][0] < current:
            stack.append([current, lb])
    while len(stack) > 1:
        depth, left = stack.pop()
        parent_depth = stack[-1][0]
        yield LcpInterval(lcp=depth, lb=left, rb=n - 1, parent_lcp=parent_depth)


def _smaller_value_links(lcp: np.ndarray, previous: bool) -> np.ndarray:
    """PSV/NSV over the LCP array by vectorised pointer doubling.

    ``previous=True`` returns for each position the nearest index to
    the left holding a strictly smaller value (-1 if none);
    ``previous=False`` the nearest strictly smaller index to the right
    (``n`` if none).  Every unresolved pointer jumps to its target's
    pointer each round, so chains compress like pointer doubling:
    O(log n) rounds of O(n) vectorised work.
    """
    n = len(lcp)
    if previous:
        link = np.arange(-1, n - 1, dtype=np.int64)
        limit = np.int64(-1)
    else:
        link = np.arange(1, n + 1, dtype=np.int64)
        limit = np.int64(n)
    values = lcp
    inside = link != limit
    probe = np.where(inside, link, 0)
    active = np.flatnonzero(inside & (values[probe] >= values))
    # Work shrinks geometrically: each pass touches only the
    # still-unresolved positions.
    while len(active):
        link[active] = link[link[active]]
        targets = link[active]
        inside = targets != limit
        probe = np.where(inside, targets, 0)
        active = active[inside & (values[probe] >= values[active])]
    return link


def lcp_interval_arrays(
    lcp: np.ndarray,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Every internal lcp-interval as parallel arrays, fully vectorised.

    Returns ``(depth, lb, rb, parent_depth)`` — the same node set
    :func:`bottom_up_intervals` yields (order differs: nodes come out
    sorted by ``(lb, rb)`` key rather than bottom-up), computed
    without a Python stack: each position ``i`` with ``lcp[i] > 0``
    belongs to the node spanning ``(PSV(i), NSV(i))``; deduplicating
    those boundary pairs enumerates the explicit internal nodes, and
    the parent's depth is the larger boundary LCP value (Abouelhoda
    et al.'s interval characterisation).
    """
    lcp = np.asarray(lcp, dtype=np.int64)
    n = len(lcp)
    members = np.flatnonzero(lcp > 0)
    empty = np.empty(0, dtype=np.int64)
    if not len(members):
        return empty, empty, empty, empty
    psv = _smaller_value_links(lcp, previous=True)[members]
    nsv = _smaller_value_links(lcp, previous=False)[members]
    keys = psv * np.int64(n + 1) + nsv
    _, first = np.unique(keys, return_index=True)
    lb = psv[first]
    rb = nsv[first] - 1
    depth = lcp[members[first]]
    padded = np.append(lcp, np.int64(0))
    parent = np.maximum(lcp[lb], padded[rb + 1])
    return depth, lb, rb, parent


def leaf_edge_arrays(
    sa: np.ndarray, lcp: np.ndarray, text_length: int
) -> "tuple[np.ndarray, np.ndarray]":
    """Per-SA-slot leaf edge figures ``(depth, parent_depth)``.

    The unfiltered leaf geometry: the leaf at SA slot ``i`` has string
    depth ``text_length - SA[i]`` and hangs below the deeper of its
    two neighbouring LCP values.  Consumers filter ``depth > parent``
    for leaves with non-empty edges.
    """
    sa = np.asarray(sa, dtype=np.int64)
    lcp = np.asarray(lcp, dtype=np.int64)
    depth = np.int64(text_length) - sa
    right = np.append(lcp[1:], np.int64(0))
    return depth, np.maximum(lcp, right)


def leaf_interval_arrays(
    sa: np.ndarray, lcp: np.ndarray, text_length: int
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Suffix-tree leaves as parallel arrays, fully vectorised.

    Returns ``(depth, slot, parent_depth)`` for every leaf with a
    non-empty edge (``slot`` is the SA index, ``lb == rb``), matching
    :func:`leaf_intervals` in SA order.
    """
    depth, parent = leaf_edge_arrays(sa, lcp, text_length)
    keep = depth > parent
    slots = np.flatnonzero(keep)
    return depth[keep], slots, parent[keep]


def leaf_intervals(sa: np.ndarray, lcp: np.ndarray, text_length: int) -> Iterator[LcpInterval]:
    """Yield one interval per suffix-tree *leaf* (frequency-1 substrings).

    The leaf for suffix ``SA[i]`` has string depth ``n - SA[i]`` and its
    parent's depth is ``max(lcp[i], lcp[i+1])`` — the deeper of the two
    neighbouring LCP values is the branching point above the leaf.
    Leaves whose edge is empty (a suffix equal to an internal node's
    string, impossible without duplicate suffixes) are skipped.
    """
    n = len(sa)
    for i in range(n):
        depth = text_length - int(sa[i])
        left_lcp = int(lcp[i]) if i > 0 else 0
        right_lcp = int(lcp[i + 1]) if i + 1 < n else 0
        parent_depth = max(left_lcp, right_lcp)
        if depth > parent_depth:
            yield LcpInterval(lcp=depth, lb=i, rb=i, parent_lcp=parent_depth)
