"""Prefix-doubling suffix array construction, vectorised with numpy.

Manber-Myers prefix doubling sorts suffixes by their first ``2^k``
letters in rounds, using rank pairs.  The ``O(n log^2 n)`` bound is
worse than SA-IS on paper, but the rounds are tight vectorised
kernels, making this the fastest pure-Python option in practice and
the library default for index construction.

Two construction-time refinements over the textbook formulation:

* each round sorts one combined ``rank * (n + 1) + second`` int64 key
  with a single ``argsort`` instead of a two-key ``lexsort`` — the
  combination is collision-free because ``second + 1 <= n``, and the
  relative order of exactly-equal pairs is irrelevant (they receive
  the same new rank and are re-sorted in later rounds);
* the per-round rank arrays (suffix order by the first ``2^k``
  letters) can be retained: they are precisely the structure needed to
  derive the whole LCP array afterwards by descending-level rank
  comparisons (:func:`repro.suffix.lcp.lcp_from_ranks`), replacing the
  per-position Kasai walk with ``O(log n)`` vectorised passes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def suffix_array_doubling(codes: "Sequence[int] | np.ndarray") -> np.ndarray:
    """Suffix array of *codes* via numpy prefix doubling (``int64``)."""
    sa, _ = suffix_array_doubling_with_ranks(codes, keep_ranks=False)
    return sa


def suffix_array_doubling_with_ranks(
    codes: "Sequence[int] | np.ndarray",
    keep_ranks: bool = True,
) -> "tuple[np.ndarray, list[np.ndarray] | None]":
    """Suffix array plus the per-round rank arrays.

    Returns ``(sa, ranks)`` where ``ranks[k]`` orders the suffixes by
    their first ``2^k`` letters (``int32``; ranks are below ``n``).
    Level 0 is the letters themselves, densified; each doubling round
    appends the next level.  When *keep_ranks* is false the second
    element is ``None`` and no per-round copies are made.

    The rank arrays cost ``4n`` bytes per round (``O(log n)`` rounds,
    usually far fewer: the loop stops as soon as all ranks are
    distinct), and buy a fully vectorised LCP construction.
    """
    codes = np.asarray(codes, dtype=np.int64)
    n = len(codes)
    if n == 0:
        return np.empty(0, dtype=np.int64), ([] if keep_ranks else None)
    if n == 1:
        sa = np.zeros(1, dtype=np.int64)
        ranks = [np.zeros(1, dtype=np.int32)] if keep_ranks else None
        return sa, ranks

    # Initial ranks: the letters themselves (densified for stability).
    rank = np.unique(codes, return_inverse=True)[1].astype(np.int64)
    sa = np.argsort(rank, kind="stable").astype(np.int64)
    ranks: "list[np.ndarray] | None" = [rank.astype(np.int32)] if keep_ranks else None
    if int(rank[sa[-1]]) == n - 1:
        return sa, ranks  # all letters distinct: sorted after one pass
    step = 1
    tmp = np.empty(n, dtype=np.int64)
    base = np.int64(n + 1)
    while step < n:
        # Secondary key: rank of the suffix starting `step` later
        # (-1, i.e. "smaller than everything", past the end).  Combined
        # into one collision-free int64 key per suffix: rank < n and
        # second + 1 <= n, so rank * (n + 1) + second + 1 sorts exactly
        # like the (rank, second) pair.
        second = np.full(n, -1, dtype=np.int64)
        second[: n - step] = rank[step:]
        key = rank * base + (second + np.int64(1))
        sa = np.argsort(key)

        # Recompute dense ranks: a suffix starts a new rank class iff its
        # combined key differs from its predecessor's in SA order.
        k_sorted = key[sa]
        new_class = np.empty(n, dtype=np.int64)
        new_class[0] = 0
        changed = k_sorted[1:] != k_sorted[:-1]
        np.cumsum(changed, out=new_class[1:])
        tmp[sa] = new_class
        rank, tmp = tmp, rank
        if ranks is not None:
            ranks.append(rank.astype(np.int32))

        if int(rank[sa[-1]]) == n - 1:
            break  # all ranks distinct: fully sorted
        step <<= 1
    return sa, ranks
