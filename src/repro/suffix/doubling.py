"""Prefix-doubling suffix array construction, vectorised with numpy.

Manber-Myers prefix doubling sorts suffixes by their first ``2^k``
letters in rounds, using rank pairs and ``numpy.lexsort``.  The
``O(n log^2 n)`` bound is worse than SA-IS on paper, but the rounds
are tight vectorised kernels, making this the fastest pure-Python
option in practice and the library default for index construction.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def suffix_array_doubling(codes: "Sequence[int] | np.ndarray") -> np.ndarray:
    """Suffix array of *codes* via numpy prefix doubling (``int64``)."""
    codes = np.asarray(codes, dtype=np.int64)
    n = len(codes)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if n == 1:
        return np.zeros(1, dtype=np.int64)

    # Initial ranks: the letters themselves (densified for stability).
    rank = np.unique(codes, return_inverse=True)[1].astype(np.int64)
    sa = np.argsort(rank, kind="stable").astype(np.int64)
    step = 1
    tmp = np.empty(n, dtype=np.int64)
    while step < n:
        # Secondary key: rank of the suffix starting `step` later
        # (-1, i.e. "smaller than everything", past the end).
        second = np.full(n, -1, dtype=np.int64)
        second[: n - step] = rank[step:]
        order = np.lexsort((second, rank))
        sa = order

        # Recompute dense ranks: a suffix starts a new rank class iff its
        # (rank, second) pair differs from its predecessor's in SA order.
        r_sorted = rank[sa]
        s_sorted = second[sa]
        new_class = np.empty(n, dtype=np.int64)
        new_class[0] = 0
        changed = (r_sorted[1:] != r_sorted[:-1]) | (s_sorted[1:] != s_sorted[:-1])
        np.cumsum(changed, out=new_class[1:])
        tmp[sa] = new_class
        rank, tmp = tmp, rank

        if int(rank[sa[-1]]) == n - 1:
            break  # all ranks distinct: fully sorted
        step <<= 1
    return sa
