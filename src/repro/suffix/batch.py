"""Vectorised batch locate over a suffix array.

The scalar ``SuffixArray.interval`` walks an ``O(m log n)`` binary
search one pattern at a time in pure Python.  This module answers the
SA intervals of a whole *batch* of equal-length patterns with numpy:

* **packed keys** — when the ``m``-letter windows fit into an int64
  (``(sigma + 1)^m < 2^62``), every suffix's first ``m`` letters are
  rank-encoded into one base-``sigma+2`` integer.  In SA order those
  keys are non-decreasing (the pad digit 0 sorts before every letter),
  so one ``np.searchsorted`` per side yields all intervals at once;
* **lockstep binary search** — for long patterns or huge alphabets the
  classic two binary searches run over the whole batch in lockstep:
  each of the ``O(log n)`` rounds gathers one ``(B, m)`` window matrix
  with a single fancy-index and compares it row-wise against the
  pattern matrix.

Both paths return exactly the interval the scalar search would: the
closed SA range ``[lb, rb]`` of suffixes having the pattern as a
prefix, ``(0, -1)`` when absent.
"""

from __future__ import annotations

import math

import numpy as np

#: Packed keys are built in int64; keep one bit of headroom.
_KEY_BITS = 62


def pack_limit(base: int) -> int:
    """Longest window length whose base-``base`` key fits in 62 bits."""
    if base <= 1:
        return _KEY_BITS
    return max(1, int(_KEY_BITS / math.log2(base)))


def ragged_ids_offsets(counts: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """Expand per-group *counts* into ``(group_ids, within_offsets)``.

    The ragged-expansion kernel shared by every vectorised unroll in
    the library (suffix-tree edge expansion, LMS-substring comparison,
    induction-chain unrolling): group ``g`` with ``counts[g] == c``
    contributes ``c`` consecutive entries carrying ids ``g`` and
    offsets ``0 .. c - 1``.
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    ids = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    offsets = (
        np.arange(total, dtype=np.int64)
        - np.repeat(np.cumsum(counts) - counts, counts)
    )
    return ids, offsets


def packed_window_keys(codes: np.ndarray, sa: np.ndarray, length: int, base: int) -> np.ndarray:
    """Rank-encoded keys of every suffix's first *length* letters, SA order.

    Letters are shifted by +1 so the pad digit 0 (positions past the
    end of the text) sorts before every real letter, matching the
    prefix-aware comparison of the scalar search.  The result is
    non-decreasing along the suffix array.
    """
    n = len(codes)
    padded = np.concatenate(
        (np.asarray(codes, dtype=np.int64) + 1, np.zeros(length, dtype=np.int64))
    )
    keys = np.zeros(n, dtype=np.int64)
    for j in range(length):
        keys = keys * base + padded[sa + j]
    return keys


def pack_patterns(matrix: np.ndarray, base: int) -> np.ndarray:
    """The base-``base`` key of each pattern row (same encoding)."""
    keys = np.zeros(len(matrix), dtype=np.int64)
    for j in range(matrix.shape[1]):
        keys = keys * base + (matrix[:, j].astype(np.int64) + 1)
    return keys


def _batch_compare(padded: np.ndarray, sa: np.ndarray, mids: np.ndarray,
                   matrix: np.ndarray) -> np.ndarray:
    """Sign of (suffix at ``sa[mid]`` vs pattern) per row, prefix-aware.

    0 means the pattern is a prefix of the suffix; padding positions
    carry the sentinel -1, so a suffix shorter than the pattern
    compares below it, exactly like ``SuffixArray._compare_suffix``.
    """
    m = matrix.shape[1]
    starts = sa[mids]
    windows = padded[starts[:, None] + np.arange(m)]
    neq = windows != matrix
    any_neq = neq.any(axis=1)
    first = np.where(any_neq, neq.argmax(axis=1), 0)
    rows = np.arange(len(matrix))
    window_letter = windows[rows, first]
    pattern_letter = matrix[rows, first]
    return np.where(any_neq, np.sign(window_letter - pattern_letter), 0)


def batch_interval_lockstep(codes: np.ndarray, sa: np.ndarray,
                            matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """All SA intervals via two lockstep binary searches (any length)."""
    n = len(codes)
    batch, m = matrix.shape
    # Keep the codes' own dtype: memory-mapped int32 texts must not be
    # copied up to int64 here (comparisons broadcast across widths).
    codes = np.asarray(codes)
    padded = np.concatenate((codes, np.full(m, -1, dtype=codes.dtype)))
    matrix = np.asarray(matrix, dtype=np.int64)

    # Lower bound: first suffix comparing >= the pattern.
    lo = np.zeros(batch, dtype=np.int64)
    hi = np.full(batch, n, dtype=np.int64)
    while True:
        active = lo < hi
        if not active.any():
            break
        mid = np.minimum((lo + hi) >> 1, n - 1)
        cmp = _batch_compare(padded, sa, mid, matrix)
        go_right = active & (cmp < 0)
        lo = np.where(go_right, mid + 1, lo)
        hi = np.where(active & ~go_right, mid, hi)
    lb = lo.copy()

    # Upper bound: first suffix comparing > the pattern.
    hi = np.full(batch, n, dtype=np.int64)
    while True:
        active = lo < hi
        if not active.any():
            break
        mid = np.minimum((lo + hi) >> 1, n - 1)
        cmp = _batch_compare(padded, sa, mid, matrix)
        go_right = active & (cmp <= 0)
        lo = np.where(go_right, mid + 1, lo)
        hi = np.where(active & ~go_right, mid, hi)
    rb = lo - 1
    return lb, rb


def batch_intervals(
    codes: np.ndarray,
    sa: np.ndarray,
    matrix: np.ndarray,
    packed_keys: "np.ndarray | None" = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Closed SA intervals ``[lb, rb]`` for every row of *matrix*.

    Rows containing letters outside ``[0, max(codes)]`` cannot occur
    and report the empty interval ``(0, -1)`` directly.  When
    *packed_keys* (from :func:`packed_window_keys`, cached by the
    caller) is given or the window length packs into int64, intervals
    come from two ``np.searchsorted`` calls; otherwise the lockstep
    binary search handles arbitrary lengths.
    """
    matrix = np.ascontiguousarray(matrix, dtype=np.int64)
    if matrix.ndim != 2:
        raise ValueError("expected a 2-D pattern matrix")
    batch, m = matrix.shape
    lb = np.zeros(batch, dtype=np.int64)
    rb = np.full(batch, -1, dtype=np.int64)
    if batch == 0 or m == 0 or m > len(codes):
        return lb, rb
    max_code = int(codes.max())
    valid = (matrix.min(axis=1) >= 0) & (matrix.max(axis=1) <= max_code)
    if not valid.any():
        return lb, rb
    sub = matrix[valid]
    base = max_code + 2
    if packed_keys is not None or m <= pack_limit(base):
        if packed_keys is None:
            packed_keys = packed_window_keys(codes, sa, m, base)
        pattern_keys = pack_patterns(sub, base)
        left = np.searchsorted(packed_keys, pattern_keys, side="left")
        right = np.searchsorted(packed_keys, pattern_keys, side="right") - 1
    else:
        left, right = batch_interval_lockstep(codes, sa, sub)
    # Normalise absent patterns to the scalar search's (0, -1).
    empty = right < left
    left = np.where(empty, 0, left)
    right = np.where(empty, -1, right)
    lb[valid] = left
    rb[valid] = right
    return lb, rb
