"""Reproduction of *Indexing Strings with Utilities* (ICDE 2025).

The library implements Useful String Indexing (USI) end to end:

* :class:`~repro.core.usi.UsiIndex` — the USI_TOP-K index (UET/UAT);
* :class:`~repro.core.topk_oracle.TopKOracle` — the linear-space
  Section-V oracle (Exact-Top-K + tuning tasks);
* :class:`~repro.core.approximate.ApproximateTopK` — the space-
  efficient Section-VI miner;
* the streaming competitors (SubstringHK, TopKTrie) and the four
  baselines (BSL1-BSL4) of the paper's evaluation;
* every substrate: suffix arrays (SA-IS and prefix doubling), LCP,
  RMQ, LCE oracles, sparse suffix arrays, Ukkonen suffix trees,
  Karp-Rabin fingerprints, prefix-sum utilities;
* scaled synthetic analogues of the five evaluation datasets with
  W1/W2,p query workloads and the paper's quality metrics.

Quickstart::

    from repro import UsiIndex, WeightedString

    ws = WeightedString("ATACCCCGATAATACCCCAG",
                        [.9, 1, 3, 2, .7, 1, 1, .6, .5, .5,
                         .5, .8, 1, 1, 1, .9, 1, 1, .8, 1])
    index = UsiIndex.build(ws, k=5)
    index.query("TACCCC")   # -> 14.6 (Example 1 of the paper)

Or, backend-agnostically, through the :mod:`repro.api` facade — any
registered engine family behind the same protocol::

    index = repro.build(ws, k=5, backend="usi")   # or "uat", "fm",
    index.query("TACCCC")                         # "sharded", "bsl2", ...
    repro.save_index(index, "idx.npz")
    repro.open("idx.npz").query_batch(["TACCCC", "CCCC"])
"""

from repro.api import (
    Capabilities,
    IndexInfo,
    QueryResult,
    UtilityIndex,
    UtilityIndexBase,
    available_backends,
    get_backend,
    register_backend,
)
from repro.api import build as build
from repro.api import open_index as open  # noqa: A001 - deliberate facade name
from repro.baselines import (
    Bsl1NoCache,
    Bsl2LruCache,
    Bsl3TopKSeen,
    Bsl4SketchTopKSeen,
)
from repro.core import (
    ApproximateTopK,
    DynamicUsiIndex,
    MinedSubstring,
    OnlineFrequencyTracker,
    TopKOracle,
    TradeOffPoint,
    UsiIndex,
    enumerate_trade_offs,
    exact_top_k,
    mine_by_utility_threshold,
    naive_global_utility,
    pick_trade_off,
    skyline,
    top_utility_substrings,
)
from repro.errors import ReproError
from repro.ingest import Compactor, LiveIndex, MemtableDelta, WriteAheadLog
from repro.io import (
    load_bundle,
    load_dynamic_index,
    load_index,
    save_bundle,
    save_dynamic_index,
    save_index,
)
from repro.kernel import TextKernel
from repro.service import (
    IndexRegistry,
    LatencyRecorder,
    QueryEngine,
    ShardedUsiIndex,
    UsiServer,
)
from repro.strings import Alphabet, WeightedString
from repro.strings.collection import CollectionUsiIndex, WeightedStringCollection
from repro.streaming import SubstringHK, TopKTrie
from repro.succinct import FmIndex
from repro.utility import GlobalUtility

__version__ = "1.0.0"

__all__ = [
    "Alphabet",
    "ApproximateTopK",
    "Capabilities",
    "IndexInfo",
    "QueryResult",
    "UtilityIndex",
    "UtilityIndexBase",
    "available_backends",
    "build",
    "get_backend",
    # NB: repro.open is a deliberate facade attribute but is kept out
    # of __all__ so `from repro import *` never shadows builtins.open.
    "register_backend",
    "Bsl1NoCache",
    "Bsl2LruCache",
    "Bsl3TopKSeen",
    "Bsl4SketchTopKSeen",
    "CollectionUsiIndex",
    "Compactor",
    "DynamicUsiIndex",
    "FmIndex",
    "LiveIndex",
    "MemtableDelta",
    "WriteAheadLog",
    "GlobalUtility",
    "IndexRegistry",
    "LatencyRecorder",
    "MinedSubstring",
    "QueryEngine",
    "ShardedUsiIndex",
    "OnlineFrequencyTracker",
    "ReproError",
    "SubstringHK",
    "TextKernel",
    "TopKOracle",
    "TopKTrie",
    "TradeOffPoint",
    "UsiIndex",
    "UsiServer",
    "WeightedString",
    "WeightedStringCollection",
    "enumerate_trade_offs",
    "exact_top_k",
    "mine_by_utility_threshold",
    "load_bundle",
    "load_dynamic_index",
    "load_index",
    "save_bundle",
    "save_dynamic_index",
    "naive_global_utility",
    "pick_trade_off",
    "save_index",
    "skyline",
    "top_utility_substrings",
]
