"""Index persistence: save/load any registered backend.

Three on-disk layouts coexist:

* **v1** — the original pickle-free ``.npz`` archive for suffix-array
  backed :class:`~repro.core.usi.UsiIndex` objects: text, utilities,
  alphabet, suffix array, hash table, fingerprint bases, plus a JSON
  header.  Loading never executes arbitrary code, and files written by
  older versions of this library keep loading (and vice versa: new
  ``usi`` saves still produce plain v1 files).
* **v2** — the *tagged* ``.npz`` container for every other registered
  backend: a JSON header naming the backend plus a pickled engine
  payload.  ``repro.open`` reads the tag and rehydrates the right
  adapter, so a sharded, dynamic, collection, FM, oracle, or baseline
  index round-trips exactly like a plain USI one.
* **legacy pickle** — any non-``.npz`` extension is a bare pickle of
  the object as given (the original ``usi build --out idx.pkl``
  format); type sniffing on load recovers the backend.

Dispatch on *load* is by file contents (zip magic vs pickle), never by
extension, so renamed files keep working.  Only the v1 layout is
pickle-free; v2 containers and legacy pickles execute pickle bytecode
on load, so open only files you trust (``allow_pickle=False`` on the
loaders refuses everything but v1).
"""

from __future__ import annotations

import json
import pickle
from pathlib import Path

import numpy as np

from repro.core.usi import UsiBuildReport, UsiIndex
from repro.errors import ParameterError
from repro.hashing.karp_rabin import KarpRabinFingerprinter
from repro.strings.alphabet import Alphabet
from repro.strings.weighted import WeightedString
from repro.suffix.suffix_array import SuffixArray
from repro.utility.functions import make_global_utility, make_local_utility

FORMAT_VERSION = 1
TAGGED_FORMAT_VERSION = 2

_ZIP_MAGIC = b"PK\x03\x04"


def _unwrap(index) -> "tuple[object, str | None]":
    """Split an index into (raw engine, backend name)."""
    from repro.api import UtilityIndexBase, infer_backend_name

    if isinstance(index, UtilityIndexBase):
        inner = getattr(index, "inner", None)
        name = index.backend_name
        if inner is None or infer_backend_name(inner) is None:
            # No registered raw engine behind it (e.g. a GenericAdapter
            # over user code, or the self-contained oracle backend):
            # persist the adapter itself so it round-trips whole.
            return index, name
        return inner, name
    return index, infer_backend_name(index)


def save_index(index, path: "str | Path") -> None:
    """Persist *index* (raw engine or protocol adapter) to *path*.

    ``.npz`` paths use the pickle-free v1 format when the index is a
    suffix-array-backed :class:`UsiIndex` and the tagged v2 container
    otherwise; any other extension writes a legacy bare pickle.  A raw
    FM-backed :class:`UsiIndex` aimed at ``.npz`` is still rejected
    (the historical contract); wrap it in its backend adapter — or use
    :func:`repro.build` which returns adapters — to save it tagged.
    """
    path = Path(path)
    if path.suffix != ".npz":
        with open(path, "wb") as handle:
            pickle.dump(index, handle)
        return

    from repro.api import UtilityIndexBase

    wrapped = isinstance(index, UtilityIndexBase)
    engine, backend = _unwrap(index)
    if isinstance(engine, UsiIndex):
        if isinstance(engine.suffix_array, SuffixArray):
            _save_v1(engine, path, backend or "usi")
            return
        if not wrapped:
            raise ParameterError(
                "only suffix-array-backed indexes can be saved in the v1 "
                ".npz format; rebuild with locate_backend='sa' or save "
                "through its backend adapter (repro.build)"
            )
    _save_v2(engine, backend, path)


def _save_v1(index: UsiIndex, path: Path, backend: str) -> None:
    """The original pickle-free layout (readable by old loaders)."""
    sa = index.suffix_array
    ws = index.weighted_string
    letters = ws.alphabet.letters
    letters_kind = "str" if letters and isinstance(letters[0], str) else "int"
    keys = np.fromiter(index._table.keys(), dtype=np.int64, count=len(index._table))
    values = np.fromiter(index._table.values(), dtype=np.float64, count=len(index._table))
    header = {
        "format_version": FORMAT_VERSION,
        "backend": backend,
        "aggregator": index.utility.name,
        "local": getattr(index._psw, "local_name", "sum"),
        "letters_kind": letters_kind,
        "letters": [str(letter) for letter in letters],
        "bases": list(index._fp.bases),
        "report": {
            "miner": index.report.miner,
            "k": index.report.k,
            "tau_k": index.report.tau_k,
            "distinct_lengths": index.report.distinct_lengths,
            "hash_entries": index.report.hash_entries,
        },
    }
    np.savez_compressed(
        path,
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        codes=ws.codes,
        utilities=ws.utilities,
        sa=sa.sa,
        table_keys=keys,
        table_values=values,
    )


def _save_v2(engine, backend: "str | None", path: Path) -> None:
    """The tagged container: JSON header + pickled engine payload."""
    header = {
        "format_version": TAGGED_FORMAT_VERSION,
        "backend": backend,
        "engine_type": type(engine).__name__,
    }
    np.savez_compressed(
        path,
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        payload=np.frombuffer(pickle.dumps(engine), dtype=np.uint8),
    )


def _read_header(archive) -> dict:
    return json.loads(bytes(archive["header"].tobytes()).decode())


def load_any(
    path: "str | Path", allow_pickle: bool = True
) -> "tuple[object, str | None]":
    """Load any index file, returning ``(engine, backend name or None)``.

    The engine is the raw object (v1 reconstructs a :class:`UsiIndex`
    without unpickling anything; v2 and legacy pickles unpickle).  The
    backend name comes from the tag when present, else from type
    sniffing; ``None`` means unrecognised (wrap with
    :func:`repro.api.as_index` for a generic adapter).

    .. warning::
       v2 containers and legacy pickles execute pickle bytecode on
       load — only open index files you trust, exactly as with the
       historical ``.pkl`` format.  Pass ``allow_pickle=False`` to
       refuse both and accept only the pickle-free v1 layout.
    """
    path = Path(path)
    with open(path, "rb") as handle:
        magic = handle.read(4)
    if magic != _ZIP_MAGIC:
        if not allow_pickle:
            raise ParameterError(
                f"{path} is a pickled index and allow_pickle is False"
            )
        with open(path, "rb") as handle:
            engine = pickle.load(handle)
        from repro.api import infer_backend_name

        return engine, infer_backend_name(engine)

    with np.load(path) as archive:
        header = _read_header(archive)
        version = header.get("format_version")
        if version == FORMAT_VERSION:
            engine = _load_v1(archive, header)
            backend = header.get("backend")
            if backend is None:
                # Pre-tag file: infer (e.g. approximate-mined -> uat).
                from repro.api import infer_backend_name

                backend = infer_backend_name(engine)
            return engine, backend
        if version == TAGGED_FORMAT_VERSION:
            if not allow_pickle:
                raise ParameterError(
                    f"{path} is a tagged (pickled-payload) container and "
                    "allow_pickle is False"
                )
            engine = pickle.loads(archive["payload"].tobytes())
            return engine, header.get("backend")
    raise ParameterError(f"unsupported index format version {version}")


def _load_v1(archive, header: dict) -> UsiIndex:
    codes = archive["codes"]
    utilities = archive["utilities"]
    sa_array = archive["sa"]
    keys = archive["table_keys"]
    values = archive["table_values"]

    if header["letters_kind"] == "int":
        letters = [int(letter) for letter in header["letters"]]
    else:
        letters = list(header["letters"])
    alphabet = Alphabet(letters)
    ws = WeightedString(codes, utilities, alphabet)

    # Rebuild the suffix-array object around the persisted array; the
    # LCP is not needed for queries.
    index = SuffixArray.__new__(SuffixArray)
    index._codes = codes.astype(np.int64)
    index._sa = sa_array.astype(np.int64)
    index._lcp = None

    fingerprinter = KarpRabinFingerprinter.with_bases(ws.codes, *header["bases"])
    psw = make_local_utility(header["local"], ws.utilities)
    utility = make_global_utility(header["aggregator"])
    table = dict(zip(keys.tolist(), values.tolist()))
    report = UsiBuildReport(
        miner=header["report"]["miner"],
        k=header["report"]["k"],
        tau_k=header["report"]["tau_k"],
        distinct_lengths=header["report"]["distinct_lengths"],
        hash_entries=header["report"]["hash_entries"],
    )
    return UsiIndex(ws, index, fingerprinter, psw, utility, table, report)


def load_index(path: "str | Path", allow_pickle: bool = True):
    """Load the raw engine previously written by :func:`save_index`.

    Back-compatible entry point: v1 files return a :class:`UsiIndex`
    exactly as before; tagged and pickled files return their engine
    (unwrapped from any persisted adapter; see the pickle warning on
    :func:`load_any`).  Prefer :func:`repro.open` for the protocol
    surface.
    """
    from repro.api import UtilityIndexBase, infer_backend_name

    engine, _ = load_any(path, allow_pickle=allow_pickle)
    if isinstance(engine, UtilityIndexBase):
        inner = getattr(engine, "inner", None)
        # Only unwrap adapters over a recognised standalone engine; an
        # adapter persisted whole (oracle, external) has no meaningful
        # raw object behind it — its inner is a helper structure.
        if inner is not None and infer_backend_name(inner) is not None:
            return inner
    return engine


def peek_backend(path: "str | Path") -> "str | None":
    """The backend tag of an index file, without loading the index.

    Cheap for ``.npz`` containers (reads only the JSON header member);
    returns ``None`` for legacy pickles, whose backend is only known
    after loading.
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            if handle.read(4) != _ZIP_MAGIC:
                return None
        with np.load(path) as archive:
            header = _read_header(archive)
        if header.get("format_version") == FORMAT_VERSION:
            return header.get("backend", "usi")
        return header.get("backend")
    except Exception:
        return None
