"""Index persistence: save/load a USI index without pickle.

The on-disk format is a single ``.npz`` archive holding the text, the
utilities, the alphabet, the suffix array, the hash-table contents and
the fingerprint bases, plus a small JSON header with names and a
format version.  Loading never executes arbitrary code (unlike
pickle), and the format is inspectable with plain numpy.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.usi import UsiBuildReport, UsiIndex
from repro.errors import ParameterError
from repro.hashing.karp_rabin import KarpRabinFingerprinter
from repro.strings.alphabet import Alphabet
from repro.strings.weighted import WeightedString
from repro.suffix.suffix_array import SuffixArray
from repro.utility.functions import make_global_utility, make_local_utility

FORMAT_VERSION = 1


def save_index(index: UsiIndex, path: "str | Path") -> None:
    """Persist a :class:`UsiIndex` to *path* (a ``.npz`` file).

    Only suffix-array-backed indexes are persisted (the FM backend is
    rebuilt cheaply from the text on load if desired).
    """
    sa = index.suffix_array
    if not isinstance(sa, SuffixArray):
        raise ParameterError(
            "only suffix-array-backed indexes can be saved; "
            "rebuild with locate_backend='sa'"
        )
    ws = index.weighted_string
    letters = ws.alphabet.letters
    letters_kind = "str" if letters and isinstance(letters[0], str) else "int"
    keys = np.fromiter(index._table.keys(), dtype=np.int64, count=len(index._table))
    values = np.fromiter(index._table.values(), dtype=np.float64, count=len(index._table))
    header = {
        "format_version": FORMAT_VERSION,
        "aggregator": index.utility.name,
        "local": getattr(index._psw, "local_name", "sum"),
        "letters_kind": letters_kind,
        "letters": [str(letter) for letter in letters],
        "bases": list(index._fp.bases),
        "report": {
            "miner": index.report.miner,
            "k": index.report.k,
            "tau_k": index.report.tau_k,
            "distinct_lengths": index.report.distinct_lengths,
            "hash_entries": index.report.hash_entries,
        },
    }
    np.savez_compressed(
        Path(path),
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        codes=ws.codes,
        utilities=ws.utilities,
        sa=sa.sa,
        table_keys=keys,
        table_values=values,
    )


def load_index(path: "str | Path") -> UsiIndex:
    """Load a :class:`UsiIndex` previously written by :func:`save_index`."""
    with np.load(Path(path)) as archive:
        header = json.loads(bytes(archive["header"].tobytes()).decode())
        if header.get("format_version") != FORMAT_VERSION:
            raise ParameterError(
                f"unsupported index format version {header.get('format_version')}"
            )
        codes = archive["codes"]
        utilities = archive["utilities"]
        sa_array = archive["sa"]
        keys = archive["table_keys"]
        values = archive["table_values"]

    if header["letters_kind"] == "int":
        letters = [int(letter) for letter in header["letters"]]
    else:
        letters = list(header["letters"])
    alphabet = Alphabet(letters)
    ws = WeightedString(codes, utilities, alphabet)

    # Rebuild the suffix-array object around the persisted array; the
    # LCP is not needed for queries.
    index = SuffixArray.__new__(SuffixArray)
    index._codes = codes.astype(np.int64)
    index._sa = sa_array.astype(np.int64)
    index._lcp = None

    fingerprinter = KarpRabinFingerprinter.with_bases(
        ws.codes, *header["bases"]
    )
    psw = make_local_utility(header["local"], ws.utilities)
    utility = make_global_utility(header["aggregator"])
    table = dict(zip(keys.tolist(), values.tolist()))
    report = UsiBuildReport(
        miner=header["report"]["miner"],
        k=header["report"]["k"],
        tau_k=header["report"]["tau_k"],
        distinct_lengths=header["report"]["distinct_lengths"],
        hash_entries=header["report"]["hash_entries"],
    )
    return UsiIndex(ws, index, fingerprinter, psw, utility, table, report)
