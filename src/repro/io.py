"""Index persistence: save/load any registered backend.

Five on-disk layouts coexist:

* **v1** — the original pickle-free ``.npz`` archive for suffix-array
  backed :class:`~repro.core.usi.UsiIndex` objects: text, utilities,
  alphabet, suffix array, hash table, fingerprint bases, plus a JSON
  header.  Loading never executes arbitrary code, and files written by
  older versions of this library keep loading (and vice versa: new
  ``usi`` saves still produce plain v1 files).
* **v2** — the *tagged* ``.npz`` container for every other registered
  backend: a JSON header naming the backend plus a pickled engine
  payload.  ``repro.open`` reads the tag and rehydrates the right
  adapter, so a sharded, dynamic, collection, FM, oracle, or baseline
  index round-trips exactly like a plain USI one.
* **v3** — the *kernel-aware* container (:func:`save_bundle`): one
  pickle-free, uncompressed ``.npz`` holding the shared substrate
  (codes, utilities, suffix array, fingerprint bases) **once** plus
  one light payload per bundled engine (hash tables, parameters), so
  several kernel-backed indexes over one text no longer duplicate the
  substrate per backend.  Because members are stored uncompressed,
  reopening with ``mmap=True`` memory-maps the substrate arrays
  (``mmap_mode="r"``) instead of materialising them.
* **v4** — the *dynamic checkpoint* container
  (:func:`save_dynamic_index`): the frozen-prefix substrate of a
  :class:`~repro.core.dynamic.DynamicUsiIndex` stored exactly like a
  v1 file (codes, utilities, suffix array, hash table) plus the tail
  buffer appended since the last rebuild and the rebuild policy.
  Restoring never rebuilds and never unpickles; the live-ingest
  subsystem uses it to checkpoint its memtable so restarts skip WAL
  replay of already-checkpointed documents.
* **legacy pickle** — any non-``.npz`` extension is a bare pickle of
  the object as given (the original ``usi build --out idx.pkl``
  format); type sniffing on load recovers the backend.

Dispatch on *load* is by file contents (zip magic vs pickle), never by
extension, so renamed files keep working.  The v1, v3, and v4 layouts
are pickle-free; v2 containers and legacy pickles execute pickle
bytecode on load, so open only files you trust (``allow_pickle=False``
on the loaders refuses everything but v1/v3/v4).
"""

from __future__ import annotations

import json
import pickle
import zipfile
from pathlib import Path

import numpy as np

from repro.core.dynamic import DynamicUsiIndex
from repro.core.usi import UsiBuildReport, UsiIndex
from repro.errors import ParameterError
from repro.kernel import TextKernel
from repro.strings.alphabet import Alphabet
from repro.strings.weighted import WeightedString
from repro.suffix.suffix_array import SuffixArray
from repro.utility.functions import make_global_utility, make_local_utility

FORMAT_VERSION = 1
TAGGED_FORMAT_VERSION = 2
KERNEL_FORMAT_VERSION = 3
DYNAMIC_FORMAT_VERSION = 4

_ZIP_MAGIC = b"PK\x03\x04"


def _unwrap(index) -> "tuple[object, str | None]":
    """Split an index into (raw engine, backend name)."""
    from repro.api import UtilityIndexBase, infer_backend_name

    if isinstance(index, UtilityIndexBase):
        inner = getattr(index, "inner", None)
        name = index.backend_name
        if inner is None or infer_backend_name(inner) is None:
            # No registered raw engine behind it (e.g. a GenericAdapter
            # over user code, or the self-contained oracle backend):
            # persist the adapter itself so it round-trips whole.
            return index, name
        return inner, name
    return index, infer_backend_name(index)


def save_index(index, path: "str | Path", container: "str | None" = None) -> None:
    """Persist *index* (raw engine or protocol adapter) to *path*.

    ``.npz`` paths use the pickle-free v1 format when the index is a
    suffix-array-backed :class:`UsiIndex` and the tagged v2 container
    otherwise; any other extension writes a legacy bare pickle.  A raw
    FM-backed :class:`UsiIndex` aimed at ``.npz`` is still rejected
    (the historical contract); wrap it in its backend adapter — or use
    :func:`repro.build` which returns adapters — to save it tagged.

    Pass ``container="v3"`` to write the kernel-aware v3 layout
    instead (pickle-free, uncompressed, hence ``mmap``-openable); it
    supports the kernel-backed engines — see :func:`save_bundle`,
    which also stores *several* indexes over one shared substrate.
    """
    path = Path(path)
    if container == "v3":
        save_bundle({"index": index}, path)
        return
    if container not in (None, "auto"):
        raise ParameterError(f"unknown container {container!r}")
    if path.suffix != ".npz":
        with open(path, "wb") as handle:
            pickle.dump(index, handle)
        return

    from repro.api import UtilityIndexBase

    wrapped = isinstance(index, UtilityIndexBase)
    engine, backend = _unwrap(index)
    if isinstance(engine, UsiIndex):
        if isinstance(engine.suffix_array, SuffixArray):
            _save_v1(engine, path, backend or "usi")
            return
        if not wrapped:
            raise ParameterError(
                "only suffix-array-backed indexes can be saved in the v1 "
                ".npz format; rebuild with locate_backend='sa' or save "
                "through its backend adapter (repro.build)"
            )
    if isinstance(engine, DynamicUsiIndex) and isinstance(
        engine.base.suffix_array, SuffixArray
    ):
        save_dynamic_index(engine, path)
        return
    _save_v2(engine, backend, path)


def _usi_header(index: UsiIndex, backend: str) -> dict:
    """The v1-style JSON header fields describing one SA-backed index."""
    letters = index.weighted_string.alphabet.letters
    letters_kind = "str" if letters and isinstance(letters[0], str) else "int"
    return {
        "backend": backend,
        "aggregator": index.utility.name,
        "local": getattr(index._psw, "local_name", "sum"),
        "letters_kind": letters_kind,
        "letters": [str(letter) for letter in letters],
        "bases": list(index._fp.bases),
        "report": {
            "miner": index.report.miner,
            "k": index.report.k,
            "tau_k": index.report.tau_k,
            "distinct_lengths": index.report.distinct_lengths,
            "hash_entries": index.report.hash_entries,
        },
    }


def _usi_arrays(index: UsiIndex) -> dict:
    """The v1-style array members describing one SA-backed index."""
    keys = np.fromiter(index._table.keys(), dtype=np.int64, count=len(index._table))
    values = np.fromiter(
        index._table.values(), dtype=np.float64, count=len(index._table)
    )
    ws = index.weighted_string
    return {
        "codes": ws.codes,
        "utilities": ws.utilities,
        "sa": index.suffix_array.sa,
        "table_keys": keys,
        "table_values": values,
    }


def _save_v1(index: UsiIndex, path: Path, backend: str) -> None:
    """The original pickle-free layout (readable by old loaders)."""
    header = {"format_version": FORMAT_VERSION, **_usi_header(index, backend)}
    np.savez_compressed(
        path,
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        **_usi_arrays(index),
    )


def _save_v2(engine, backend: "str | None", path: Path) -> None:
    """The tagged container: JSON header + pickled engine payload."""
    header = {
        "format_version": TAGGED_FORMAT_VERSION,
        "backend": backend,
        "engine_type": type(engine).__name__,
    }
    np.savez_compressed(
        path,
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        payload=np.frombuffer(pickle.dumps(engine), dtype=np.uint8),
    )


def _read_header(archive) -> dict:
    return json.loads(bytes(archive["header"].tobytes()).decode())


# ----------------------------------------------------------------------
# v4: the dynamic checkpoint (frozen-prefix substrate + tail buffer)
# ----------------------------------------------------------------------
def save_dynamic_index(
    index: DynamicUsiIndex, path: "str | Path", extra: "dict | None" = None
) -> None:
    """Checkpoint a :class:`DynamicUsiIndex` without pickling.

    The frozen-prefix base is stored exactly like a v1 file; the tail
    buffer (letters appended since the last rebuild) and the rebuild
    policy ride along, so :func:`load_dynamic_index` restores the
    index to the precise pre-checkpoint state — same answers, same
    rebuild schedule — without rebuilding anything.

    *extra* is an optional JSON-serialisable dict stored verbatim in
    the header (the live-ingest subsystem records the checkpoint's
    sequence-number range there) and returned by
    :func:`load_dynamic_index`.
    """
    if not isinstance(index, DynamicUsiIndex):
        raise ParameterError("save_dynamic_index takes a DynamicUsiIndex")
    base = index.base
    if not isinstance(base.suffix_array, SuffixArray):
        raise ParameterError(
            "dynamic checkpoints require a suffix-array-backed base index"
        )
    header = {
        "format_version": DYNAMIC_FORMAT_VERSION,
        **_usi_header(base, "dynamic"),
        "k": int(index.k),
        "miner": index.miner,
        "rebuild_fraction": float(index.rebuild_fraction),
        "seed": int(index.seed),
        "rebuild_count": int(index.rebuild_count),
        "extra": extra,
    }
    np.savez_compressed(
        Path(path),
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        tail_codes=np.asarray(index.tail_codes, dtype=np.int32),
        tail_utilities=np.asarray(index.tail_utilities, dtype=np.float64),
        **_usi_arrays(base),
    )


def _load_v4(archive, header: dict) -> DynamicUsiIndex:
    base = _load_v1(archive, header)  # same member names for the base
    return DynamicUsiIndex.from_parts(
        base,
        archive["tail_codes"],
        archive["tail_utilities"],
        k=int(header["k"]),
        miner=header["miner"],
        rebuild_fraction=float(header["rebuild_fraction"]),
        seed=int(header["seed"]),
        rebuild_count=int(header["rebuild_count"]),
    )


def load_dynamic_index(path: "str | Path") -> "tuple[DynamicUsiIndex, dict | None]":
    """Restore a v4 checkpoint as ``(index, extra)``; pickle-free."""
    path = Path(path)
    with np.load(path) as archive:
        header = _read_header(archive)
        if header.get("format_version") != DYNAMIC_FORMAT_VERSION:
            raise ParameterError(f"{path} is not a v4 dynamic checkpoint")
        return _load_v4(archive, header), header.get("extra")


# ----------------------------------------------------------------------
# v3: the kernel-aware container (substrate once, engines as payloads)
# ----------------------------------------------------------------------
def _alphabet_header(ws: WeightedString) -> dict:
    letters = ws.alphabet.letters
    kind = "str" if letters and isinstance(letters[0], str) else "int"
    return {"letters_kind": kind, "letters": [str(letter) for letter in letters]}


def _alphabet_from_header(meta: dict) -> Alphabet:
    if meta["letters_kind"] == "int":
        return Alphabet([int(letter) for letter in meta["letters"]])
    return Alphabet(list(meta["letters"]))


def _v3_extract(engine, backend: "str | None") -> "tuple[dict, dict, tuple]":
    """Split one engine into (entry meta, entry arrays, substrate parts).

    Substrate parts are ``(ws, sa_array, bases-or-None)``; only
    kernel-backed engines whose full state is substrate + a light
    payload are supported — everything else belongs in a v2 container.
    """
    from repro.api.adapters import OracleBackend
    from repro.baselines.bsl1 import Bsl1NoCache
    from repro.baselines.bsl2 import Bsl2LruCache
    from repro.baselines.bsl3 import Bsl3TopKSeen

    if isinstance(engine, UsiIndex):
        if not isinstance(engine.suffix_array, SuffixArray):
            raise ParameterError(
                "v3 containers store suffix-array-backed USI indexes; "
                "FM/suffix-tree locate backends need the v2 container"
            )
        table = engine._table
        keys = np.fromiter(table.keys(), dtype=np.int64, count=len(table))
        values = np.fromiter(table.values(), dtype=np.float64, count=len(table))
        meta = {
            "kind": "usi",
            "backend": backend or "usi",
            "aggregator": engine.utility.name,
            "local": getattr(engine._psw, "local_name", "sum"),
            "report": {
                "miner": engine.report.miner,
                "k": engine.report.k,
                "tau_k": engine.report.tau_k,
                "distinct_lengths": engine.report.distinct_lengths,
                "hash_entries": engine.report.hash_entries,
            },
        }
        parts = (engine.weighted_string, engine.suffix_array.sa, engine._fp.bases)
        return meta, {"keys": keys, "values": values}, parts
    if isinstance(engine, OracleBackend):
        kernel = engine._kernel
        meta = {
            "kind": "oracle",
            "backend": "oracle",
            "aggregator": engine._utility.name,
            "local": getattr(engine._psw, "local_name", "sum"),
            "k": engine._k,
        }
        return meta, {}, (engine._ws, kernel.suffix.sa, kernel._bases)
    if isinstance(engine, (Bsl1NoCache, Bsl2LruCache, Bsl3TopKSeen)):
        inner = engine._engine
        kernel = inner.kernel
        meta = {
            "kind": type(engine).name.lower(),
            "backend": type(engine).name.lower(),
            "aggregator": inner.utility.name,
        }
        capacity = getattr(engine, "_capacity", None)
        if capacity is not None:
            meta["capacity"] = int(capacity)
        return meta, {}, (inner.weighted_string, kernel.suffix.sa, kernel._bases)
    raise ParameterError(
        f"the v3 container does not support {type(engine).__name__}; "
        "save it through the tagged v2 container instead"
    )


def save_bundle(indexes, path: "str | Path") -> None:
    """Write the kernel-aware v3 container: one substrate, many engines.

    *indexes* maps names to engines or adapters built **over the same
    text** (ideally from one shared :class:`~repro.kernel.TextKernel`);
    the codes, utilities, and suffix array are stored exactly once,
    each engine contributing only its light payload (hash table,
    parameters).  The file is pickle-free and uncompressed, so
    :func:`load_bundle`/:func:`repro.open` can reopen the substrate
    with ``mmap=True`` (``mmap_mode="r"``).
    """
    if not isinstance(indexes, dict) or not indexes:
        raise ParameterError("save_bundle takes a non-empty {name: index} dict")
    entries: list[dict] = []
    arrays: dict[str, np.ndarray] = {}
    shared_ws: "WeightedString | None" = None
    shared_sa: "np.ndarray | None" = None
    shared_bases: "tuple | None" = None
    for position, (name, index) in enumerate(indexes.items()):
        engine, backend = _unwrap(index)
        meta, entry_arrays, (ws, sa, bases) = _v3_extract(engine, backend)
        if shared_ws is None:
            shared_ws, shared_sa = ws, sa
        elif not (
            np.array_equal(ws.codes, shared_ws.codes)
            and np.array_equal(ws.utilities, shared_ws.utilities)
            and np.array_equal(sa, shared_sa)
        ):
            raise ParameterError(
                f"index {name!r} was built over a different text; a v3 "
                "container stores exactly one substrate — bundle only "
                "indexes sharing one TextKernel"
            )
        if bases is not None:
            if shared_bases is not None and tuple(bases) != tuple(shared_bases):
                raise ParameterError(
                    f"index {name!r} uses different fingerprint bases; "
                    "bundle only indexes sharing one TextKernel"
                )
            shared_bases = tuple(int(b) for b in bases)
        meta["name"] = name
        entries.append(meta)
        for key, value in entry_arrays.items():
            arrays[f"e{position}_{key}"] = value
    header = {
        "format_version": KERNEL_FORMAT_VERSION,
        # The tag repro.open/peek_backend dispatch on: single-index
        # containers behave exactly like a v1/v2 file of that backend.
        "backend": entries[0]["backend"] if len(entries) == 1 else None,
        "substrate": {
            **_alphabet_header(shared_ws),
            "bases": list(shared_bases) if shared_bases is not None else None,
        },
        "entries": entries,
    }
    payload = dict(arrays)
    payload["header"] = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
    payload["codes"] = shared_ws.codes
    payload["utilities"] = shared_ws.utilities
    payload["sa"] = np.asarray(shared_sa, dtype=np.int64)
    # Uncompressed on purpose: stored (not deflated) zip members are
    # contiguous file ranges, which is what makes mmap reopen possible.
    with open(Path(path), "wb") as handle:
        np.savez(handle, **payload)


def _mmap_member(path: Path, info: "zipfile.ZipInfo") -> "np.ndarray | None":
    """Memory-map one stored ``.npy`` zip member; None if not mappable."""
    try:
        with open(path, "rb") as handle:
            handle.seek(info.header_offset)
            local = handle.read(30)
            if local[:4] != _ZIP_MAGIC:
                return None
            name_length = int.from_bytes(local[26:28], "little")
            extra_length = int.from_bytes(local[28:30], "little")
            handle.seek(info.header_offset + 30 + name_length + extra_length)
            version = np.lib.format.read_magic(handle)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
            else:
                return None
            offset = handle.tell()
        if dtype.hasobject:
            return None
        if int(np.prod(shape)) == 0:
            return np.empty(shape, dtype=dtype)
        return np.memmap(
            path,
            mode="r",
            dtype=dtype,
            shape=shape,
            offset=offset,
            order="F" if fortran else "C",
        )
    except Exception:
        return None


def _read_npz_members(path: Path, mmap: bool) -> dict:
    """All arrays of an ``.npz``, memory-mapping stored members if asked."""
    if not mmap:
        with np.load(path) as archive:
            return {name: archive[name] for name in archive.files}
    members: dict[str, np.ndarray] = {}
    pending: list[str] = []
    with zipfile.ZipFile(path) as archive:
        infos = list(archive.infolist())
    for info in infos:
        name = info.filename[:-4] if info.filename.endswith(".npy") else info.filename
        mapped = (
            _mmap_member(path, info)
            if info.compress_type == zipfile.ZIP_STORED
            else None
        )
        if mapped is None:
            pending.append(name)
        else:
            members[name] = mapped
    if pending:  # compressed or exotic members: materialise just those
        with np.load(path) as archive:
            for name in pending:
                members[name] = archive[name]
    return members


def _load_v3(path: Path, header: dict, mmap: bool) -> "dict[str, tuple]":
    """Rehydrate every engine of a v3 container around one kernel."""
    from repro.api.adapters import OracleBackend
    from repro.baselines.bsl1 import Bsl1NoCache
    from repro.baselines.bsl2 import Bsl2LruCache
    from repro.baselines.bsl3 import Bsl3TopKSeen

    arrays = _read_npz_members(path, mmap)
    substrate = header["substrate"]
    alphabet = _alphabet_from_header(substrate)
    ws = WeightedString(arrays["codes"], arrays["utilities"], alphabet)
    bases = substrate.get("bases")
    kernel = TextKernel.from_parts(
        ws, arrays["sa"], bases=tuple(bases) if bases else None
    )
    engines: dict[str, tuple] = {}
    for position, meta in enumerate(header["entries"]):
        kind = meta["kind"]
        aggregator = make_global_utility(meta["aggregator"])
        if kind == "usi":
            table = dict(
                zip(
                    arrays[f"e{position}_keys"].tolist(),
                    arrays[f"e{position}_values"].tolist(),
                )
            )
            report = UsiBuildReport(**meta["report"])
            engine = UsiIndex(
                ws,
                kernel.suffix,
                None,  # fingerprinter resolves lazily from the kernel
                kernel.psw(meta["local"]),
                aggregator,
                table,
                report,
                kernel=kernel,
            )
        elif kind == "oracle":
            engine = OracleBackend(
                ws, kernel, kernel.psw(meta["local"]), aggregator, int(meta["k"])
            )
        elif kind == "bsl1":
            engine = Bsl1NoCache(ws, aggregator=meta["aggregator"], kernel=kernel)
        elif kind == "bsl2":
            engine = Bsl2LruCache(
                ws, int(meta["capacity"]), aggregator=meta["aggregator"], kernel=kernel
            )
        elif kind == "bsl3":
            engine = Bsl3TopKSeen(
                ws, int(meta["capacity"]), aggregator=meta["aggregator"], kernel=kernel
            )
        else:
            raise ParameterError(f"unknown v3 entry kind {kind!r}")
        engines[meta["name"]] = (engine, meta.get("backend"))
    return engines


def load_bundle(path: "str | Path", mmap: bool = False) -> dict:
    """Load a v3 container as ``{name: (engine, backend)}``.

    Every engine shares one :class:`~repro.kernel.TextKernel` rebuilt
    from the stored substrate; with ``mmap=True`` the substrate arrays
    stay memory-mapped (``mmap_mode="r"``) rather than materialised.
    """
    path = Path(path)
    with np.load(path) as archive:
        header = _read_header(archive)
    if header.get("format_version") != KERNEL_FORMAT_VERSION:
        raise ParameterError(f"{path} is not a v3 kernel container")
    return _load_v3(path, header, mmap)


def load_any(
    path: "str | Path", allow_pickle: bool = True, mmap: bool = False
) -> "tuple[object, str | None]":
    """Load any index file, returning ``(engine, backend name or None)``.

    The engine is the raw object (v1/v3 reconstruct engines without
    unpickling anything; v2 and legacy pickles unpickle).  The backend
    name comes from the tag when present, else from type sniffing;
    ``None`` means unrecognised (wrap with :func:`repro.api.as_index`
    for a generic adapter).  ``mmap=True`` memory-maps the substrate
    arrays of a v3 container (compressed legacy formats cannot be
    mapped and load eagerly).  A v3 *bundle* holding several indexes
    must go through :func:`load_bundle` instead.

    .. warning::
       v2 containers and legacy pickles execute pickle bytecode on
       load — only open index files you trust, exactly as with the
       historical ``.pkl`` format.  Pass ``allow_pickle=False`` to
       refuse both and accept only the pickle-free v1/v3 layouts.
    """
    path = Path(path)
    with open(path, "rb") as handle:
        magic = handle.read(4)
    if magic != _ZIP_MAGIC:
        if not allow_pickle:
            raise ParameterError(
                f"{path} is a pickled index and allow_pickle is False"
            )
        with open(path, "rb") as handle:
            engine = pickle.load(handle)
        from repro.api import infer_backend_name

        return engine, infer_backend_name(engine)

    with np.load(path) as archive:
        header = _read_header(archive)
        version = header.get("format_version")
        if version == FORMAT_VERSION:
            engine = _load_v1(archive, header)
            backend = header.get("backend")
            if backend is None:
                # Pre-tag file: infer (e.g. approximate-mined -> uat).
                from repro.api import infer_backend_name

                backend = infer_backend_name(engine)
            return engine, backend
        if version == TAGGED_FORMAT_VERSION:
            if not allow_pickle:
                raise ParameterError(
                    f"{path} is a tagged (pickled-payload) container and "
                    "allow_pickle is False"
                )
            engine = pickle.loads(archive["payload"].tobytes())
            return engine, header.get("backend")
        if version == DYNAMIC_FORMAT_VERSION:
            return _load_v4(archive, header), header.get("backend", "dynamic")
    if version == KERNEL_FORMAT_VERSION:
        engines = _load_v3(path, header, mmap)
        if len(engines) != 1:
            raise ParameterError(
                f"{path} is a v3 bundle holding {len(engines)} indexes; "
                "open it with repro.io.load_bundle"
            )
        return next(iter(engines.values()))
    raise ParameterError(f"unsupported index format version {version}")


def _load_v1(archive, header: dict) -> UsiIndex:
    codes = archive["codes"]
    utilities = archive["utilities"]
    sa_array = archive["sa"]
    keys = archive["table_keys"]
    values = archive["table_values"]

    if header["letters_kind"] == "int":
        letters = [int(letter) for letter in header["letters"]]
    else:
        letters = list(header["letters"])
    alphabet = Alphabet(letters)
    ws = WeightedString(codes, utilities, alphabet)

    # Rewrap the persisted suffix array in a shared kernel (the LCP is
    # not needed for queries; the fingerprint tables rebuild lazily
    # from the stored bases on first use).
    kernel = TextKernel.from_parts(
        ws, sa_array.astype(np.int64), bases=tuple(header["bases"])
    )
    psw = make_local_utility(header["local"], ws.utilities)
    utility = make_global_utility(header["aggregator"])
    table = dict(zip(keys.tolist(), values.tolist()))
    report = UsiBuildReport(
        miner=header["report"]["miner"],
        k=header["report"]["k"],
        tau_k=header["report"]["tau_k"],
        distinct_lengths=header["report"]["distinct_lengths"],
        hash_entries=header["report"]["hash_entries"],
    )
    return UsiIndex(
        ws, kernel.suffix, None, psw, utility, table, report, kernel=kernel
    )


def load_index(path: "str | Path", allow_pickle: bool = True):
    """Load the raw engine previously written by :func:`save_index`.

    Back-compatible entry point: v1 files return a :class:`UsiIndex`
    exactly as before; tagged and pickled files return their engine
    (unwrapped from any persisted adapter; see the pickle warning on
    :func:`load_any`).  Prefer :func:`repro.open` for the protocol
    surface.
    """
    from repro.api import UtilityIndexBase, infer_backend_name

    engine, _ = load_any(path, allow_pickle=allow_pickle)
    if isinstance(engine, UtilityIndexBase):
        inner = getattr(engine, "inner", None)
        # Only unwrap adapters over a recognised standalone engine; an
        # adapter persisted whole (oracle, external) has no meaningful
        # raw object behind it — its inner is a helper structure.
        if inner is not None and infer_backend_name(inner) is not None:
            return inner
    return engine


def peek_backend(path: "str | Path") -> "str | None":
    """The backend tag of an index file, without loading the index.

    Cheap for ``.npz`` containers (reads only the JSON header member);
    returns ``None`` for legacy pickles, whose backend is only known
    after loading.
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            if handle.read(4) != _ZIP_MAGIC:
                return None
        with np.load(path) as archive:
            header = _read_header(archive)
        if header.get("format_version") == FORMAT_VERSION:
            return header.get("backend", "usi")
        return header.get("backend")
    except Exception:
        return None
