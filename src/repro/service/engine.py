"""The query engine: batching, caching, and concurrency for any backend.

A :class:`QueryEngine` wraps any :class:`~repro.api.UtilityIndex` —
raw engines (a :class:`~repro.core.usi.UsiIndex`, a
:class:`~repro.service.sharding.ShardedUsiIndex`, a baseline, ...) are
coerced through :func:`repro.api.as_index`, so batch queries always go
through the protocol's ``query_batch`` (native where the backend has
one, the per-pattern fallback otherwise — no attribute probing) — and
adds what a server needs around it:

* an **LRU pattern-result cache** with hit/miss/eviction counters —
  USI already answers frequent patterns in O(m), the cache shaves that
  to O(1) dict time for the skewed workloads real traffic produces;
* a **bulk API** that forwards misses in one ``query_batch`` call, so
  fingerprinting is vectorised across the batch;
* **thread safety**: static indexes are immutable after construction,
  so only the cache and the counters are guarded, and index work runs
  outside the lock.  Mutable backends (the ``dynamic`` capability)
  expose a monotone ``data_version``; the engine probes it around
  every cached lookup, clears the cache when the version moved, and
  refuses to cache an answer computed against a version that moved
  mid-flight — so a live, ingesting index never serves stale answers
  from the cache.

All query paths share one
:class:`~repro.service.metrics.LatencyRecorder`.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Sequence

import numpy as np

from repro.api import as_index
from repro.errors import ParameterError
from repro.profiling import QueryProfile, profiled
from repro.service.metrics import LatencyRecorder

#: A pattern as received over the wire or from user code.
PatternLike = "str | bytes | Sequence[int] | np.ndarray"


def _cache_key(pattern) -> tuple:
    """A hashable identity for a pattern, O(1)-ish in the pattern length.

    Code arrays hash through their raw buffer (``tobytes`` plus the
    dtype tag, so same bytes at different widths cannot collide)
    instead of a per-element Python tuple; integer sequences go
    through ``bytes()`` when their values fit a byte, with a tuple
    fallback for exotic codes.  Keys are only compared to keys of the
    same tag, so the forms never collide with each other.
    """
    if isinstance(pattern, str):
        return ("s", pattern)
    if isinstance(pattern, (bytes, bytearray)):
        return ("b", bytes(pattern))
    if isinstance(pattern, np.ndarray):
        return ("a", pattern.dtype.str, pattern.tobytes())
    try:
        return ("q", bytes(pattern))
    except (TypeError, ValueError):
        return ("c", tuple(int(x) for x in pattern))


class QueryEngine:
    """Concurrent, caching front-end over an immutable USI index.

    Parameters
    ----------
    index:
        A protocol adapter, or any object with ``query(pattern) ->
        float`` (coerced through :func:`repro.api.as_index`).
    cache_size:
        Maximum number of cached (pattern, utility) entries; 0
        disables caching.
    metrics:
        Optional shared :class:`LatencyRecorder`; a private one is
        created when absent.
    """

    def __init__(
        self,
        index,
        cache_size: int = 4096,
        metrics: "LatencyRecorder | None" = None,
    ) -> None:
        if cache_size < 0:
            raise ParameterError("cache_size must be >= 0")
        self._proto = as_index(index)
        self._index = index
        self._cache_size = int(cache_size)
        self._cache: "OrderedDict[tuple, float]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        # Only dynamic backends can change answers after construction;
        # for everything else the version probe is skipped entirely.
        self._dynamic = bool(self._proto.capabilities.dynamic)
        self._data_version = self._current_version()
        self.metrics = metrics if metrics is not None else LatencyRecorder()
        # Cumulative per-stage seconds across every batch this engine
        # served (the `profile` block of GET /stats).
        self._profile = QueryProfile()

    def _current_version(self) -> int:
        if not self._dynamic:
            return 0
        version = getattr(self._proto, "data_version", None)
        return int(version()) if callable(version) else 0

    def _refresh_version_locked(self, version: int) -> None:
        if version != self._data_version:
            if self._cache:
                self._cache.clear()
                self._invalidations += 1
            self._data_version = version

    @property
    def index(self):
        """The index exactly as handed in (raw engine or adapter)."""
        return self._index

    @property
    def protocol(self):
        """The :class:`~repro.api.UtilityIndexBase` view of the index."""
        return self._proto

    @property
    def cache_size(self) -> int:
        return self._cache_size

    def describe_index(self) -> dict:
        """Backend name + capability flags (the ``GET /indexes`` row)."""
        return {
            "backend": self._proto.backend_name,
            "capabilities": self._proto.capabilities.as_dict(),
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, pattern: PatternLike) -> float:
        """``U(pattern)``, answered from the cache when possible."""
        t0 = time.perf_counter()
        key = _cache_key(pattern)
        version = self._current_version()
        with self._lock:
            self._refresh_version_locked(version)
            cached = self._cache_get(key)
        if cached is not None:
            self.metrics.record(time.perf_counter() - t0, 1)
            return cached
        value = float(self._proto.query(pattern))
        with self._lock:
            self._misses += 1
            # Cache only answers still known current: if the version
            # moved while we computed, the value may reflect a superseded
            # text — serve it (it was true when computed) but drop it.
            if self._current_version() == version:
                self._cache_put(key, value)
        self.metrics.record(time.perf_counter() - t0, 1)
        return value

    def query_batch(self, patterns: "Sequence[PatternLike]") -> list[float]:
        """Bulk ``U`` lookups; misses go to the index in one batch.

        Answers are identical to calling :meth:`query` per pattern, in
        input order.  Duplicate patterns inside one batch hit the
        index only once.
        """
        t0 = time.perf_counter()
        profile = QueryProfile()
        keys = [_cache_key(p) for p in patterns]
        version = self._current_version()
        results: "list[float | None]" = [None] * len(patterns)
        missing: "OrderedDict[tuple, list[int]]" = OrderedDict()
        with self._lock:
            self._refresh_version_locked(version)
            # One pass over the batch with the lock held: local
            # bindings and batched counter updates keep the per-pattern
            # cost to a dict probe + a recency bump.
            cache = self._cache
            cache_get = cache.get
            bump = cache.move_to_end
            add_missing = missing.setdefault
            hits = 0
            for slot, key in enumerate(keys):
                cached = cache_get(key)
                if cached is not None:
                    bump(key)
                    hits += 1
                    results[slot] = cached
                else:
                    add_missing(key, []).append(slot)
            self._hits += hits
        profile.add("cache", time.perf_counter() - t0)
        if missing:
            probe_slots = [slots[0] for slots in missing.values()]
            with profiled(profile):
                answers = self._index_batch([patterns[s] for s in probe_slots])
            t1 = time.perf_counter()
            with self._lock:
                self._misses += len(probe_slots)
                if self._current_version() == version:
                    for key, value in zip(missing, answers):
                        self._cache_put(key, float(value))
            profile.add("cache", time.perf_counter() - t1)
            for slots, value in zip(missing.values(), answers):
                for slot in slots:
                    results[slot] = float(value)
        profile.account(len(patterns))
        with self._lock:
            self._profile.merge(profile)
        self.metrics.record(time.perf_counter() - t0, len(patterns))
        return results  # type: ignore[return-value]

    def count(self, pattern: PatternLike) -> int:
        """``|occ(pattern)|`` — uncached passthrough (always exact).

        Recorded into the shared :class:`LatencyRecorder` like every
        other query path, so ``GET /stats`` latency covers counts too.
        """
        t0 = time.perf_counter()
        value = int(self._proto.count(pattern))
        self.metrics.record(time.perf_counter() - t0, 1)
        return value

    def _index_batch(self, patterns: list) -> list[float]:
        # The protocol guarantees query_batch: native where the backend
        # has one, the per-pattern fallback otherwise.
        return [float(v) for v in self._proto.query_batch(patterns)]

    # ------------------------------------------------------------------
    # Cache internals (call with the lock held)
    # ------------------------------------------------------------------
    def _cache_get(self, key: tuple) -> "float | None":
        value = self._cache.get(key)
        if value is None:
            return None
        self._cache.move_to_end(key)
        self._hits += 1
        return value

    def _cache_put(self, key: tuple, value: float) -> None:
        if self._cache_size == 0:
            return
        if key in self._cache:
            self._cache.move_to_end(key)
            self._cache[key] = value
            return
        if len(self._cache) >= self._cache_size:
            self._cache.popitem(last=False)
            self._evictions += 1
        self._cache[key] = value

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()

    def stats(self) -> dict:
        """Counters + latency snapshot (the ``GET /stats`` payload)."""
        with self._lock:
            hits, misses, evictions = self._hits, self._misses, self._evictions
            entries = len(self._cache)
            invalidations = self._invalidations
            data_version = self._data_version
            profile = self._profile.as_dict()
        lookups = hits + misses
        return {
            "backend": self._proto.backend_name,
            "cache_hits": hits,
            "cache_misses": misses,
            "cache_evictions": evictions,
            "cache_entries": entries,
            "cache_capacity": self._cache_size,
            "cache_invalidations": invalidations,
            "data_version": data_version,
            "hit_rate": round(hits / lookups, 4) if lookups else 0.0,
            "latency": self.metrics.snapshot().as_dict(),
            "profile": profile,
        }

    def profile_snapshot(self) -> dict:
        """Cumulative per-stage seconds served by this engine."""
        with self._lock:
            return self._profile.as_dict()
