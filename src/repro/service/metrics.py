"""Latency and throughput recording for the serving subsystem.

A :class:`LatencyRecorder` keeps a fixed-size ring buffer of recent
(timestamp, latency, batch-size) observations plus lifetime totals, and
summarises them into the numbers an operator actually watches: QPS over
the recent window, and p50/p95/p99 call latency.  One recorder is
shared between a :class:`~repro.service.engine.QueryEngine` and the
HTTP front-end, so ``GET /stats`` reflects every query regardless of
which door it came through.

The recorder is thread-safe and allocation-free on the hot path (three
array writes under a lock); summarisation cost is paid by the reader.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ParameterError


@dataclass(frozen=True)
class MetricsSnapshot:
    """A point-in-time summary of a :class:`LatencyRecorder`."""

    total_queries: int
    total_calls: int
    uptime_seconds: float
    window_queries: int
    window_seconds: float
    qps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float

    def as_dict(self) -> dict:
        return {
            "total_queries": self.total_queries,
            "total_calls": self.total_calls,
            "uptime_seconds": round(self.uptime_seconds, 6),
            "window_queries": self.window_queries,
            "window_seconds": round(self.window_seconds, 6),
            "qps": round(self.qps, 3),
            "p50_ms": round(self.p50_ms, 4),
            "p95_ms": round(self.p95_ms, 4),
            "p99_ms": round(self.p99_ms, 4),
            "mean_ms": round(self.mean_ms, 4),
        }


class LatencyRecorder:
    """Ring-buffer latency/throughput recorder.

    Parameters
    ----------
    capacity:
        How many recent calls the ring buffer remembers.  Percentiles
        and QPS are computed over this window; lifetime totals are kept
        separately and never truncate.
    clock:
        Injectable monotonic clock (tests); defaults to
        ``time.perf_counter``.
    """

    def __init__(self, capacity: int = 4096, clock=time.perf_counter) -> None:
        if capacity <= 0:
            raise ParameterError("recorder capacity must be positive")
        self._capacity = int(capacity)
        self._clock = clock
        self._latencies = np.zeros(self._capacity, dtype=np.float64)
        self._timestamps = np.zeros(self._capacity, dtype=np.float64)
        self._batch_sizes = np.zeros(self._capacity, dtype=np.int64)
        self._next = 0
        self._filled = 0
        self._total_queries = 0
        self._total_calls = 0
        self._started = clock()
        self._lock = threading.Lock()

    @property
    def capacity(self) -> int:
        return self._capacity

    def record(self, seconds: float, queries: int = 1) -> None:
        """Record one engine/server call that answered *queries* patterns."""
        now = self._clock()
        with self._lock:
            slot = self._next
            self._latencies[slot] = seconds
            self._timestamps[slot] = now
            self._batch_sizes[slot] = queries
            self._next = (slot + 1) % self._capacity
            self._filled = min(self._filled + 1, self._capacity)
            self._total_queries += queries
            self._total_calls += 1

    def measure(self, queries: int = 1) -> "_Timer":
        """``with recorder.measure(n): ...`` — records on exit."""
        return _Timer(self, queries)

    def snapshot(self) -> MetricsSnapshot:
        """Summarise the ring buffer (QPS, latency percentiles)."""
        now = self._clock()
        with self._lock:
            filled = self._filled
            latencies = self._latencies[:filled].copy()
            timestamps = self._timestamps[:filled]
            window_queries = int(self._batch_sizes[:filled].sum())
            window_start = float(timestamps.min()) if filled else now
            totals = (self._total_queries, self._total_calls)
        uptime = max(now - self._started, 0.0)
        window_seconds = max(now - window_start, 1e-9)
        if filled:
            p50, p95, p99 = np.percentile(latencies, [50, 95, 99])
            mean = float(latencies.mean())
            qps = window_queries / window_seconds
        else:
            p50 = p95 = p99 = mean = 0.0
            qps = 0.0
        return MetricsSnapshot(
            total_queries=totals[0],
            total_calls=totals[1],
            uptime_seconds=uptime,
            window_queries=window_queries,
            window_seconds=window_seconds if filled else 0.0,
            qps=float(qps),
            p50_ms=float(p50) * 1e3,
            p95_ms=float(p95) * 1e3,
            p99_ms=float(p99) * 1e3,
            mean_ms=mean * 1e3,
        )

    def reset(self) -> None:
        """Drop the window and lifetime totals (tests, epoch rollover)."""
        with self._lock:
            self._next = 0
            self._filled = 0
            self._total_queries = 0
            self._total_calls = 0
            self._started = self._clock()


@dataclass
class _Timer:
    recorder: LatencyRecorder
    queries: int
    _t0: float = field(default=0.0, init=False)

    def __enter__(self) -> "_Timer":
        self._t0 = self.recorder._clock()
        return self

    def __exit__(self, *exc) -> None:
        self.recorder.record(self.recorder._clock() - self._t0, self.queries)


#: The latency buckets every serving front-end reports: query traffic,
#: ingest traffic, and everything administrative (listings, stats,
#: health probes, unknown routes).
ENDPOINT_CLASSES = ("query", "ingest", "admin")


class EndpointMetrics:
    """Per-endpoint-class latency recorders for a serving front-end.

    One :class:`LatencyRecorder` per endpoint class, so ``GET /stats``
    can break request latency down into query vs ingest vs admin
    instead of one server-wide number.  Both the threaded server and
    the asyncio gateway publish this under the ``endpoints`` stats
    key, with identical shape (the shared stats-shape test holds the
    two to it).
    """

    def __init__(self, capacity: int = 2048, clock=time.perf_counter) -> None:
        self._recorders = {
            name: LatencyRecorder(capacity, clock) for name in ENDPOINT_CLASSES
        }

    def recorder(self, endpoint: str) -> LatencyRecorder:
        """The recorder for one endpoint class (KeyError when unknown)."""
        return self._recorders[endpoint]

    def record(self, endpoint: str, seconds: float, queries: int = 1) -> None:
        self._recorders[endpoint].record(seconds, queries)

    def measure(self, endpoint: str, queries: int = 1) -> _Timer:
        """``with metrics.measure("query"): ...`` — records on exit."""
        return self._recorders[endpoint].measure(queries)

    def snapshot(self) -> dict:
        """``{endpoint: latency-dict}`` for every endpoint class."""
        return {
            name: recorder.snapshot().as_dict()
            for name, recorder in self._recorders.items()
        }
