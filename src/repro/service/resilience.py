"""Failure-handling primitives shared across the serving stack.

:class:`Backoff` — capped exponential delays with deterministic,
seeded jitter — paces every supervised retry loop in the system: the
gateway pool's worker respawns, the compactor's build retries, and the
``usi ingest`` client's reconnects.  Jitter comes from
``random.Random(seed)`` so chaos tests replay identically.

:class:`CircuitBreaker` — the classic closed → open → half-open state
machine — protects callers from hammering a crash-looping dependency.
``CLOSED`` passes everything and counts consecutive failures; at
``failure_threshold`` it trips ``OPEN`` and sheds until
``cooldown_seconds`` elapse; then ``HALF_OPEN`` admits a single probe,
whose success closes the breaker (and whose failure re-opens it).
"""

from __future__ import annotations

import random
import threading
import time

from repro.errors import ParameterError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class Backoff:
    """Capped exponential delays with seeded jitter.

    ``next_delay()`` returns ``base * factor**attempt`` capped at
    ``max_delay``, plus up to ``jitter`` fractional noise; ``reset()``
    returns to the base delay after a success.
    """

    def __init__(
        self,
        base: float = 0.05,
        factor: float = 2.0,
        max_delay: float = 2.0,
        jitter: float = 0.25,
        seed: int = 0,
    ) -> None:
        if base <= 0 or factor < 1.0 or max_delay < base:
            raise ParameterError("backoff needs base > 0, factor >= 1, max >= base")
        self._base = float(base)
        self._factor = float(factor)
        self._max = float(max_delay)
        self._jitter = float(jitter)
        self._rng = random.Random(seed)
        self._attempt = 0
        self._lock = threading.Lock()

    @property
    def attempt(self) -> int:
        return self._attempt

    def next_delay(self) -> float:
        """The delay to sleep before the next retry (advances the count)."""
        with self._lock:
            delay = min(self._base * self._factor**self._attempt, self._max)
            self._attempt += 1
            if self._jitter:
                delay *= 1.0 + self._rng.uniform(0.0, self._jitter)
        return delay

    def reset(self) -> None:
        with self._lock:
            self._attempt = 0


class CircuitBreaker:
    """Consecutive-failure breaker with a half-open recovery probe.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker open.
    cooldown_seconds:
        How long the breaker sheds before admitting a recovery probe.
    clock:
        Injectable monotonic clock (tests).

    Thread-safe; shared between the event loop (dispatch decisions)
    and whatever thread reports outcomes.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_seconds: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ParameterError("failure_threshold must be >= 1")
        self.failure_threshold = int(failure_threshold)
        self.cooldown_seconds = float(cooldown_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        self._trips = 0
        self._shed = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.cooldown_seconds
        ):
            self._state = HALF_OPEN
            self._probe_inflight = False
        return self._state

    def allow(self) -> bool:
        """Whether a call may proceed right now.

        ``HALF_OPEN`` admits exactly one in-flight probe; its outcome
        (reported via :meth:`record_success` / :meth:`record_failure`)
        decides the next state.
        """
        with self._lock:
            state = self._state_locked()
            if state == CLOSED:
                return True
            if state == HALF_OPEN and not self._probe_inflight:
                self._probe_inflight = True
                return True
            self._shed += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probe_inflight = False
            self._state = CLOSED

    def record_failure(self) -> None:
        with self._lock:
            state = self._state_locked()
            self._consecutive_failures += 1
            self._probe_inflight = False
            if state == HALF_OPEN or (
                self._consecutive_failures >= self.failure_threshold
            ):
                if state != OPEN:
                    self._trips += 1
                self._state = OPEN
                self._opened_at = self._clock()

    def retry_after(self) -> int:
        """Whole seconds a shed client should wait (>= 1)."""
        with self._lock:
            if self._state_locked() != OPEN:
                return 1
            remaining = self.cooldown_seconds - (self._clock() - self._opened_at)
        return max(1, int(remaining) + 1)

    def stats(self) -> dict:
        with self._lock:
            return {
                "state": self._state_locked(),
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "cooldown_seconds": self.cooldown_seconds,
                "trips": self._trips,
                "shed": self._shed,
            }
