"""JSON-over-HTTP front-end for the serving subsystem (stdlib only).

Endpoints
---------
``POST /query``
    Body ``{"pattern": "..."}`` or ``{"patterns": [...]}``, plus
    optional ``"index"`` (name; defaults when exactly one index is
    registered) and ``"count": true`` to include occurrence counts.
    Responds ``{"index": ..., "results": [{"pattern", "utility",
    ("count")}]}``.

``POST /ingest``
    Body ``{"doc": "..."}`` plus optional ``"utilities"`` (one float
    per character) and ``"index"``.  Appends the document to a live
    (``dynamic``) index — the ``live`` backend's WAL-first write path —
    and responds ``{"index": ..., "seq": n}``.  400 when the target
    index does not ingest.

``GET /indexes``
    The registry listing: name, residency, pinned, backing path, plus
    each index's backend name and capability flags (``batch`` /
    ``dynamic`` / ``collection`` / ``approximate`` / ``count`` /
    ``persistent``) — any registered backend can be served, not just
    :class:`~repro.core.usi.UsiIndex`.

``GET /stats``
    Server-wide QPS / latency percentiles, a per-endpoint latency
    breakdown (``endpoints``: query vs ingest vs admin), the serving
    ``mode`` (``"threaded"`` here; ``"async"`` on the gateway) and
    worker count, per-engine cache statistics, registry
    load/eviction/replacement counters, and an ``ingest`` section
    (per-live-index generation and compaction counters; empty for
    static registries).

``GET /healthz``
    Structured health probe (shared shape with the async gateway):
    ``{"status": "ok"|"degraded", "workers_alive", "breaker",
    "quarantined", "reasons"}``.  Threaded mode has no worker pool,
    so ``workers_alive`` is 0 and ``breaker`` is ``"closed"``;
    ``degraded`` appears when a live index has quarantined memtables.

The server is a :class:`http.server.ThreadingHTTPServer` — one thread
per in-flight request — which is exactly the concurrency model
:class:`~repro.service.engine.QueryEngine` is built for: immutable
indexes below, a lock only around cache/counter updates.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import IndexLoadError, ReproError
from repro.profiling import merge_profile_dicts
from repro.service.metrics import EndpointMetrics, LatencyRecorder
from repro.service.registry import IndexRegistry
from repro.service.requests import (
    MAX_BATCH,
    MAX_BODY_BYTES,
    RequestError,
    does_not_ingest,
    endpoint_class,
    health_payload,
    parse_ingest_request,
    parse_query_request,
    unsupported_counts,
)


class _Handler(BaseHTTPRequestHandler):
    server_version = "usi-serve/1.0"
    protocol_version = "HTTP/1.1"
    # The handler writes status line, headers, and body as separate
    # unbuffered sends; without TCP_NODELAY, Nagle holds the tail of
    # the response for the client's delayed ACK (~40 ms per request
    # on Linux).  The asyncio gateway gets this from its transport
    # defaults; the threaded server has to ask.
    disable_nagle_algorithm = True

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def setup(self) -> None:
        # A connection-level timeout so a client that promises a body
        # and never sends it cannot pin this handler thread forever
        # (the read raises TimeoutError -> 400 instead of hanging).
        self.timeout = getattr(self.server, "request_timeout", 30.0)
        super().setup()

    @property
    def registry(self) -> IndexRegistry:
        return self.server.registry  # type: ignore[attr-defined]

    def _begin_request(self) -> bool:
        """Count this request in-flight; refuse it once draining."""
        condition = self.server.inflight_condition  # type: ignore[attr-defined]
        with condition:
            if self.server.draining:  # type: ignore[attr-defined]
                return False
            self.server.inflight += 1  # type: ignore[attr-defined]
        return True

    def _end_request(self) -> None:
        condition = self.server.inflight_condition  # type: ignore[attr-defined]
        with condition:
            self.server.inflight -= 1  # type: ignore[attr-defined]
            condition.notify_all()

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _error(
        self, status: int, message: str, retry_after: "int | None" = None
    ) -> None:
        # Error paths may not have drained the request body; under
        # HTTP/1.1 keep-alive the leftover bytes would be parsed as
        # the next request, desyncing the connection. Close instead.
        self.close_connection = True
        body = json.dumps({"error": message}).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(int(retry_after)))
        self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib name
        if not self._begin_request():
            self._error(503, "server is shutting down")
            return
        endpoints: EndpointMetrics = self.server.endpoint_metrics  # type: ignore[attr-defined]
        t0 = time.perf_counter()
        try:
            self._do_get()
        finally:
            self._end_request()
            endpoints.record(
                endpoint_class("GET", self.path), time.perf_counter() - t0
            )

    def _do_get(self) -> None:
        if self.path == "/indexes":
            self._send_json({"indexes": self.registry.describe()})
        elif self.path == "/stats":
            recorder: LatencyRecorder = self.server.metrics  # type: ignore[attr-defined]
            endpoints: EndpointMetrics = self.server.endpoint_metrics  # type: ignore[attr-defined]
            engines = self.registry.engine_stats()
            self._send_json(
                {
                    "mode": "threaded",
                    "workers": 0,
                    "server": recorder.snapshot().as_dict(),
                    "endpoints": endpoints.snapshot(),
                    "registry": self.registry.stats(),
                    "engines": engines,
                    "ingest": self.registry.ingest_stats(),
                    # Query-stage seconds summed over resident engines
                    # (the serving twin of `usi build --profile`).
                    "profile": merge_profile_dicts(
                        [row.get("profile") for row in engines.values()]
                    ),
                }
            )
        elif self.path == "/healthz":
            self._send_json(health_payload(self.registry))
        else:
            self._error(404, f"unknown path {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib name
        if not self._begin_request():
            self._error(503, "server is shutting down")
            return
        endpoints: EndpointMetrics = self.server.endpoint_metrics  # type: ignore[attr-defined]
        t0 = time.perf_counter()
        try:
            self._do_post()
        finally:
            self._end_request()
            endpoints.record(
                endpoint_class("POST", self.path), time.perf_counter() - t0
            )

    def _do_post(self) -> None:
        if self.path == "/query":
            self._do_query()
        elif self.path == "/ingest":
            self._do_ingest()
        else:
            self._error(404, f"unknown path {self.path!r}")

    def _read_json_body(self) -> "dict | None":
        """The request body as a JSON object, or None (error sent).

        A POST without a ``Content-Length`` is refused with 411
        (Length Required) and a malformed one with 400 — never
        guessed at.  Reading the body is bounded by the connection
        timeout, so a client that advertises more bytes than it sends
        gets a 400 instead of pinning this handler thread on a short
        read.
        """
        raw_length = self.headers.get("Content-Length")
        if raw_length is None:
            self._error(411, "Content-Length required on POST")
            return None
        try:
            length = int(raw_length)
        except ValueError:
            self._error(400, "bad Content-Length")
            return None
        if length <= 0 or length > MAX_BODY_BYTES:
            self._error(400, "request body required (JSON)")
            return None
        try:
            body = self.rfile.read(length)
        except (TimeoutError, OSError):
            self._error(400, "request body shorter than Content-Length")
            return None
        if len(body) < length:  # connection closed mid-body
            self._error(400, "request body shorter than Content-Length")
            return None
        try:
            request = json.loads(body)
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._error(400, "request body is not valid JSON")
            return None
        if not isinstance(request, dict):
            self._error(400, "request body must be a JSON object")
            return None
        return request

    def _resolve_engine(self, request: dict):
        """The ``(name, engine)`` a request addresses, or None (error sent)."""
        name = request.get("index") or self.registry.default_name()
        if name is None:
            self._error(
                400,
                "several indexes are registered; name one with 'index'",
            )
            return None
        try:
            return name, self.registry.get(name)
        except KeyError:
            self._error(404, f"unknown index {name!r}")
            return None
        except IndexLoadError as exc:
            # The file may reappear (network mount, recovering disk):
            # transient, so 503 + Retry-After rather than 500.
            self._error(503, str(exc), retry_after=1)
            return None

    def _do_query(self) -> None:
        request = self._read_json_body()
        if request is None:
            return

        try:
            patterns, with_counts = parse_query_request(request)
        except RequestError as error:
            self._error(error.status, error.message)
            return

        resolved = self._resolve_engine(request)
        if resolved is None:
            return
        name, engine = resolved

        if with_counts and not engine.protocol.capabilities.count:
            error = unsupported_counts(name, engine.protocol.backend_name)
            self._error(error.status, error.message)
            return

        utilities = engine.query_batch(patterns)
        results = [
            {"pattern": pattern, "utility": value}
            for pattern, value in zip(patterns, utilities)
        ]
        if with_counts:
            for row, pattern in zip(results, patterns):
                row["count"] = engine.count(pattern)
        self._send_json({"index": name, "results": results})

    def _do_ingest(self) -> None:
        request = self._read_json_body()
        if request is None:
            return

        try:
            doc, utilities = parse_ingest_request(request)
        except RequestError as error:
            self._error(error.status, error.message)
            return

        resolved = self._resolve_engine(request)
        if resolved is None:
            return
        name, engine = resolved

        appender = getattr(engine.protocol, "append_document", None)
        if not callable(appender):
            error = does_not_ingest(name, engine.protocol.backend_name)
            self._error(error.status, error.message)
            return
        try:
            seq = appender(doc, utilities)
        except ReproError as exc:
            self._error(400, str(exc))
            return
        except OSError as exc:
            # WAL write failure (disk full, torn write): the append
            # was not acknowledged and the memtable is untouched, so
            # the client may retry the same document later.
            self._error(503, f"ingest temporarily unavailable: {exc}", retry_after=1)
            return
        self._send_json({"index": name, "seq": int(seq)})


class UsiServer:
    """The serving front-end: a registry behind a threading HTTP server.

    ``port=0`` binds an ephemeral port (tests); read it back from
    :attr:`port`.  Use as a context manager or call :meth:`start` /
    :meth:`shutdown` explicitly.

    Examples
    --------
    >>> registry = IndexRegistry()                      # doctest: +SKIP
    >>> registry.register("corpus", index)              # doctest: +SKIP
    >>> with UsiServer(registry, port=0) as server:     # doctest: +SKIP
    ...     print(server.url)
    """

    def __init__(
        self,
        registry: IndexRegistry,
        host: str = "127.0.0.1",
        port: int = 8642,
        metrics: "LatencyRecorder | None" = None,
        verbose: bool = False,
        request_timeout: float = 30.0,
    ) -> None:
        self.registry = registry
        self.metrics = metrics if metrics is not None else registry.metrics
        self.endpoint_metrics = EndpointMetrics()
        self._http = ThreadingHTTPServer((host, port), _Handler)
        self._http.daemon_threads = True
        self._http.registry = registry  # type: ignore[attr-defined]
        self._http.metrics = self.metrics  # type: ignore[attr-defined]
        self._http.endpoint_metrics = self.endpoint_metrics  # type: ignore[attr-defined]
        self._http.request_timeout = float(request_timeout)  # type: ignore[attr-defined]
        self._http.verbose = verbose  # type: ignore[attr-defined]
        # In-flight request tracking for graceful shutdown.
        self._http.inflight = 0  # type: ignore[attr-defined]
        self._http.inflight_condition = threading.Condition()  # type: ignore[attr-defined]
        self._http.draining = False  # type: ignore[attr-defined]
        self._thread: "threading.Thread | None" = None
        self._serving = False
        self._shutdown_lock = threading.Lock()
        self._shutting_down = False
        self._shutdown_thread: "threading.Thread | None" = None
        self._previous_handlers: dict = {}

    @property
    def host(self) -> str:
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        return self._http.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "UsiServer":
        """Serve on a daemon thread and return immediately."""
        if self._thread is not None:
            return self
        self._serving = True
        self._thread = threading.Thread(
            target=self._http.serve_forever, name="usi-serve", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self, install_signal_handlers: bool = True) -> None:
        """Serve on the calling thread (the CLI path).

        With *install_signal_handlers* (the default, effective only on
        the main thread) SIGINT and SIGTERM trigger a **graceful**
        shutdown: the listener stops accepting, in-flight requests
        finish, and the registry closes — instead of the process dying
        mid-response.
        """
        if install_signal_handlers:
            self.install_signal_handlers()
        self._serving = True
        try:
            self._http.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        finally:
            self._serving = False
            self._restore_signal_handlers()
            # A signal-triggered graceful shutdown drains on a helper
            # thread; wait for it so the process exits cleanly.
            shutdown_thread = self._shutdown_thread
            if shutdown_thread is not None:
                shutdown_thread.join(timeout=30)
            self._http.server_close()

    # ------------------------------------------------------------------
    # Shutdown paths
    # ------------------------------------------------------------------
    def install_signal_handlers(self, signals=(signal.SIGINT, signal.SIGTERM)) -> None:
        """Route SIGINT/SIGTERM to :meth:`graceful_shutdown`.

        Only the main thread may install handlers; elsewhere this is a
        no-op (tests and embedded servers call
        :meth:`graceful_shutdown` directly).
        """
        for signum in signals:
            try:
                self._previous_handlers[signum] = signal.signal(
                    signum, self._handle_signal
                )
            except ValueError:  # not the main thread
                self._previous_handlers.clear()
                return

    def _restore_signal_handlers(self) -> None:
        for signum, handler in self._previous_handlers.items():
            try:
                signal.signal(signum, handler)
            except ValueError:  # pragma: no cover - non-main thread
                pass
        self._previous_handlers.clear()

    def _handle_signal(self, signum, frame) -> None:  # pragma: no cover - signals
        # serve_forever runs on this thread; draining inline would
        # deadlock on the serve loop, so delegate to a helper thread.
        if self._shutdown_thread is None:
            self._shutdown_thread = threading.Thread(
                target=self.graceful_shutdown, name="usi-shutdown", daemon=True
            )
            self._shutdown_thread.start()

    def graceful_shutdown(self, timeout: float = 10.0) -> None:
        """Finish in-flight requests, then close server and registry.

        New requests are refused with 503 the moment draining starts;
        requests already being answered get up to *timeout* seconds to
        complete.  Idempotent and safe from any thread except the
        serve loop itself (signal handlers delegate to a helper
        thread for exactly that reason).
        """
        with self._shutdown_lock:
            if self._shutting_down:
                return
            self._shutting_down = True
        condition = self._http.inflight_condition  # type: ignore[attr-defined]
        with condition:
            self._http.draining = True  # type: ignore[attr-defined]
        if self._serving:
            self._http.shutdown()  # stop accepting; unblocks serve_forever
        deadline = time.monotonic() + timeout
        with condition:
            while self._http.inflight > 0:  # type: ignore[attr-defined]
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                condition.wait(remaining)
        self.registry.close()
        if self._thread is not None and self._thread is not threading.current_thread():
            self._thread.join(timeout=5)
            self._thread = None
        self._http.server_close()

    def shutdown(self) -> None:
        """Immediate stop (the historical API): no drain, no registry close."""
        if self._serving:
            self._http.shutdown()
        self._serving = False
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self._http.server_close()

    def __enter__(self) -> "UsiServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()
