"""A persistent process pool that fans batch queries over shards.

The sequential :meth:`ShardedUsiIndex.query_batch` runs every shard's
vectorised batch on one core.  This pool applies the same trick as the
gateway's :mod:`repro.gateway.pool`: fork once, let every worker hold
its shard subset from the parent's address space (copy-on-write — the
substrate arrays are never written after construction, so nothing is
ever actually copied), and keep the workers alive across calls.  Each
``query`` round-trip sends the encoded patterns to all workers, the
workers run their shards' ``query_batch`` (and ``count_batch`` when
the merge needs counts) concurrently, and the parent reassembles the
replies **in shard order** — so the downstream exact merge sees the
same per-shard answer lists, in the same order, as the serial path,
and the merged results are bitwise identical.

Fork is required (spawn would re-pickle every shard per worker); when
it is unavailable, or process creation is forbidden (sandboxes), the
caller degrades to the serial fan-out.  A worker crash marks the pool
broken — the owning index falls back to serial and keeps answering.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Sequence

from repro import faults

__all__ = ["ShardPoolError", "ShardQueryPool"]


class ShardPoolError(OSError):
    """The pool cannot be created or has lost a worker."""


#: Shards handed to forked children through copy-on-write inheritance;
#: set only for the dt of the fork calls, then cleared.
_FORK_SHARDS: "Sequence | None" = None


def _worker_main(conn, shard_ids: "list[int]") -> None:
    """Worker loop: answer (op, payload) requests for the held shards."""
    shards = [(i, _FORK_SHARDS[i]) for i in shard_ids]
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        # Chaos site: a "crash" here kills the worker process, which
        # the parent surfaces as ShardPoolError → serial fallback.
        faults.fire("shard_pool.worker")
        try:
            op = message[0]
            if op == "query":
                _, live, need_counts = message
                reply = {}
                for shard_id, shard in shards:
                    values = shard.query_batch(live)
                    counts = shard.count_batch(live) if need_counts else None
                    reply[shard_id] = (values, counts)
                conn.send(("ok", reply))
            elif op == "ping":
                conn.send(("ok", None))
            else:
                conn.send(("error", f"unknown op {op!r}"))
        except Exception as exc:  # keep serving after a bad request
            try:
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
            except (OSError, BrokenPipeError):
                break
    conn.close()


class ShardQueryPool:
    """Persistent per-shard worker processes behind one sync facade.

    Parameters
    ----------
    shards:
        The per-shard indexes, in shard order.  Assigned round-robin
        to ``workers`` processes; each worker answers for its subset
        sequentially, different workers run concurrently.
    workers:
        Process count; defaults to ``min(len(shards), cpu_count)``.
    """

    def __init__(self, shards: Sequence, workers: "int | None" = None) -> None:
        if len(shards) < 1:
            raise ShardPoolError("a shard pool needs at least one shard")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ShardPoolError("shard pools require the fork start method")
        context = multiprocessing.get_context("fork")
        if workers is None:
            workers = min(len(shards), os.cpu_count() or 1)
        workers = max(1, min(int(workers), len(shards)))
        assignments: "list[list[int]]" = [[] for _ in range(workers)]
        for shard_id in range(len(shards)):
            assignments[shard_id % workers].append(shard_id)

        global _FORK_SHARDS
        _FORK_SHARDS = shards
        self._shard_count = len(shards)
        self._connections = []
        self._processes = []
        self._broken = False
        self.round_trips = 0
        try:
            for shard_ids in assignments:
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_worker_main,
                    args=(child_conn, shard_ids),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._connections.append(parent_conn)
                self._processes.append(process)
        except BaseException:
            self.close()
            raise
        finally:
            _FORK_SHARDS = None

    @property
    def workers(self) -> int:
        return len(self._processes)

    @property
    def broken(self) -> bool:
        return self._broken

    def query(
        self, live: Sequence, need_counts: bool
    ) -> "list[tuple[list[float], list[int] | None]]":
        """Fan one encoded batch over all workers; shard-order replies.

        Returns one ``(values, counts)`` pair per shard — ``counts``
        is ``None`` unless *need_counts*.  Raises
        :class:`ShardPoolError` if any worker is gone; the pool is
        then broken and must be replaced (or bypassed).
        """
        if self._broken:
            raise ShardPoolError("shard pool has a dead worker")
        message = ("query", list(live), bool(need_counts))
        by_shard: dict = {}
        try:
            for conn in self._connections:
                conn.send(message)
            for conn in self._connections:
                status, reply = conn.recv()
                if status != "ok":
                    raise ShardPoolError(f"shard worker failed: {reply}")
                by_shard.update(reply)
        except (EOFError, OSError, BrokenPipeError) as exc:
            self._broken = True
            raise ShardPoolError(f"shard pool worker lost: {exc}") from exc
        self.round_trips += 1
        return [by_shard[shard_id] for shard_id in range(self._shard_count)]

    def ping(self) -> bool:
        """One round-trip per worker; proves the pool is live."""
        try:
            for conn in self._connections:
                conn.send(("ping", None))
            for conn in self._connections:
                status, _ = conn.recv()
                if status != "ok":
                    return False
        except (EOFError, OSError, BrokenPipeError):
            self._broken = True
            return False
        return True

    def close(self) -> None:
        """Stop every worker (idempotent)."""
        self._broken = True
        for conn in getattr(self, "_connections", []):
            try:
                conn.send(None)
            except (OSError, BrokenPipeError):
                pass
            try:
                conn.close()
            except OSError:
                pass
        for process in getattr(self, "_processes", []):
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
        self._connections = []
        self._processes = []

    def stats(self) -> dict:
        return {
            "workers": self.workers,
            "shards": self._shard_count,
            "round_trips": self.round_trips,
            "broken": self._broken,
        }
