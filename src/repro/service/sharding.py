"""Document-aligned sharding: many small USI indexes, one answer.

A :class:`ShardedUsiIndex` partitions a
:class:`~repro.strings.collection.WeightedStringCollection` (or a
single :class:`~repro.strings.weighted.WeightedString`, treated as a
one-document collection) into contiguous groups of documents, builds
one :class:`~repro.core.usi.UsiIndex` per group — optionally in
parallel across processes — and answers queries by merging the
per-shard answers.

Correctness rests on the collection invariant from
``strings/collection.py``: documents are joined around a fresh
separator letter that no query pattern can contain, so an occurrence
never spans two documents and therefore never spans two shards.  The
occurrence multiset of a pattern is exactly the disjoint union of the
per-shard occurrence multisets, which makes the merge exact:

* ``count``  — the sum of shard counts;
* ``sum``    — the sum of shard sums (identity 0.0 for empty shards);
* ``min``/``max`` — the min/max over shards with at least one
  occurrence;
* ``avg``    — the shard averages recombined with shard counts as
  weights (the only merge that re-divides, so it is exact up to one
  extra float rounding).

Because the hash table ``H`` is a per-shard accelerator, not a source
of truth, per-shard mining parameters (``k``/``tau``) do not affect
answers — only which shard-local patterns are served in O(m).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Literal, Sequence

import numpy as np

from repro.core.usi import UsiIndex
from repro.errors import AlphabetError, ParameterError
from repro.kernel import TextKernel
from repro.profiling import record_stage
from repro.service.shard_pool import ShardPoolError, ShardQueryPool
from repro.strings.alphabet import Alphabet
from repro.strings.collection import WeightedStringCollection
from repro.strings.weighted import WeightedString
from repro.utility.functions import merge_partial_answers

ParallelMode = Literal["process", "thread", "serial"]


def _build_shard(payload: tuple) -> UsiIndex:
    """Worker entry point: rebuild the shard text and index it.

    Module-level (not a closure) so :class:`ProcessPoolExecutor` can
    pickle it; the payload carries plain arrays + the letter list.
    One :class:`TextKernel` is built per shard and injected, so every
    structure the shard's index needs (SA, PSW, fingerprints) comes
    from one substrate encode — and stays shared with any other
    consumer of the shard (e.g. document-frequency scans).
    """
    codes, utilities, letters, build_kwargs = payload
    ws = WeightedString(codes, utilities, Alphabet(letters))
    kernel = TextKernel(ws, sa_algorithm=build_kwargs.get("sa_algorithm", "doubling"))
    return UsiIndex.build(ws, kernel=kernel, **build_kwargs)


class ShardedUsiIndex:
    """A USI index split into document-aligned shards.

    Build with :meth:`build`; query with :meth:`utility` / :meth:`count`
    / :meth:`query_batch`.  Answers are exactly those of a monolithic
    :class:`~repro.core.usi.UsiIndex` over the same collection.
    """

    def __init__(
        self,
        alphabet: Alphabet,
        shards: Sequence[UsiIndex],
        shard_documents: Sequence[Sequence[int]],
    ) -> None:
        if not shards:
            raise ParameterError("a sharded index needs at least one shard")
        self._alphabet = alphabet
        self._shards = list(shards)
        self._shard_documents = [list(group) for group in shard_documents]
        names = {shard.utility.name for shard in self._shards}
        if len(names) != 1:
            raise ParameterError("all shards must share one global aggregator")
        self._aggregator = self._shards[0].utility
        self._query_pool: "ShardQueryPool | None" = None

    # The query pool holds live processes: never pickled.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_query_pool"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.__dict__.setdefault("_query_pool", None)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        source: "WeightedString | WeightedStringCollection",
        num_shards: "int | None" = None,
        *,
        parallel: ParallelMode = "process",
        workers: "int | None" = None,
        **build_kwargs,
    ) -> "ShardedUsiIndex":
        """Partition *source* into shards and index each one.

        Parameters
        ----------
        source:
            A weighted collection, or a single weighted string (then
            treated as a one-document collection).
        num_shards:
            Desired shard count; clamped to the document count.
            Defaults to ``min(documents, cpu_count)``.
        parallel:
            ``"process"`` (default) builds shards in a
            :class:`ProcessPoolExecutor`; ``"thread"`` uses threads
            (numpy kernels release the GIL part-time); ``"serial"``
            builds in-process.  If a pool cannot be created the build
            falls back to serial rather than failing.
        workers:
            Pool size (defaults to the shard count).
        build_kwargs:
            Forwarded to :meth:`UsiIndex.build` per shard (``k``,
            ``tau``, ``miner``, ``aggregator``, ...).
        """
        if build_kwargs.pop("kernel", None) is not None:
            raise ParameterError(
                "sharded builds index per-shard texts; a single shared "
                "kernel cannot cover them — drop the kernel option "
                "(each shard builds and shares its own)"
            )
        if isinstance(source, WeightedString):
            source = WeightedStringCollection([source])
        documents = source.documents
        doc_count = len(documents)
        if num_shards is None:
            num_shards = min(doc_count, os.cpu_count() or 1)
        if num_shards <= 0:
            raise ParameterError("num_shards must be positive")
        num_shards = min(num_shards, doc_count)

        groups = [
            part.tolist()
            for part in np.array_split(np.arange(doc_count), num_shards)
        ]
        payloads = []
        for group in groups:
            shard_collection = WeightedStringCollection(
                [documents[i] for i in group]
            )
            combined = shard_collection.combined
            payloads.append(
                (
                    combined.codes,
                    combined.utilities,
                    combined.alphabet.letters,
                    build_kwargs,
                )
            )

        shards = cls._build_all(payloads, parallel, workers)
        return cls(source.alphabet, shards, groups)

    @staticmethod
    def _build_all(
        payloads: list, parallel: ParallelMode, workers: "int | None"
    ) -> list[UsiIndex]:
        if parallel not in ("process", "thread", "serial"):
            raise ParameterError(f"unknown parallel mode {parallel!r}")
        if parallel == "serial" or len(payloads) == 1:
            return [_build_shard(payload) for payload in payloads]
        pool_cls = (
            ProcessPoolExecutor if parallel == "process" else ThreadPoolExecutor
        )
        try:
            with pool_cls(max_workers=workers or len(payloads)) as pool:
                return list(pool.map(_build_shard, payloads))
        except (OSError, PermissionError):
            # Sandboxes without fork/semaphores: degrade to serial.
            return [_build_shard(payload) for payload in payloads]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> list[UsiIndex]:
        return list(self._shards)

    @property
    def shard_documents(self) -> list[list[int]]:
        """Original-collection document indexes held by each shard."""
        return [list(group) for group in self._shard_documents]

    @property
    def alphabet(self) -> Alphabet:
        """The original (query-side) alphabet."""
        return self._alphabet

    @property
    def utility_name(self) -> str:
        return self._aggregator.name

    def nbytes(self) -> int:
        return sum(shard.nbytes() for shard in self._shards)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _encode(
        self, pattern: "str | bytes | Sequence[int] | np.ndarray"
    ) -> "np.ndarray | None":
        """Encode through the *original* alphabet; ``None`` = cannot occur."""
        if isinstance(pattern, np.ndarray):
            return pattern.astype(np.int64, copy=False)
        try:
            return self._alphabet.encode_pattern(pattern).astype(np.int64)
        except AlphabetError:
            return None

    def count(self, pattern: "str | bytes | Sequence[int] | np.ndarray") -> int:
        """``|occ(P)|`` across all shards (exact)."""
        codes = self._encode(pattern)
        if codes is None:
            return 0
        return sum(shard.count(codes) for shard in self._shards)

    def utility(self, pattern: "str | bytes | Sequence[int] | np.ndarray") -> float:
        """The global utility ``U(P)``, merged across shards."""
        codes = self._encode(pattern)
        if codes is None:
            return self._aggregator.identity
        values = [shard.query(codes) for shard in self._shards]
        if self._aggregator.name == "sum":
            return float(sum(values))
        counts = [shard.count(codes) for shard in self._shards]
        return self._merge(values, counts)

    # A sharded index is drop-in where a UsiIndex is expected.
    query = utility

    def query_batch(self, patterns: "Sequence") -> list[float]:
        """Batch query: per-shard vectorised batches, then one merge.

        Identical answers to calling :meth:`utility` per pattern.
        With an active query pool (:meth:`start_query_pool`) the
        per-shard batches run concurrently across worker processes;
        replies come back in shard order and feed the exact same
        merge, so pooled answers are bitwise identical to serial ones.
        Non-``sum`` aggregators merge through per-shard
        :meth:`~repro.core.usi.UsiIndex.count_batch` arrays (one batch
        locate per shard) instead of a per-pattern count loop.
        """
        t0 = time.perf_counter()
        encoded = [self._encode(p) for p in patterns]
        results = [self._aggregator.identity] * len(patterns)
        slots = [i for i, codes in enumerate(encoded) if codes is not None]
        record_stage("encode", time.perf_counter() - t0)
        if not slots:
            return results
        live = [encoded[i] for i in slots]
        need_counts = self._aggregator.name != "sum"
        per_shard = self._fan_out(live, need_counts)
        t0 = time.perf_counter()
        if not need_counts:
            merged = np.asarray(
                [values for values, _ in per_shard], dtype=np.float64
            ).sum(axis=0)
            for slot, value in zip(slots, merged.tolist()):
                results[slot] = float(value)
            record_stage("merge", time.perf_counter() - t0)
            return results
        for j, slot in enumerate(slots):
            values = [answers[j] for answers, _ in per_shard]
            counts = [shard_counts[j] for _, shard_counts in per_shard]
            results[slot] = self._merge(values, counts)
        record_stage("merge", time.perf_counter() - t0)
        return results

    def _fan_out(
        self, live: "list[np.ndarray]", need_counts: bool
    ) -> "list[tuple[list[float], list[int] | None]]":
        """Per-shard ``(values, counts)`` in shard order, pooled if possible."""
        pool = self._query_pool
        if pool is not None:
            try:
                return pool.query(live, need_counts)
            except ShardPoolError:
                # A worker died: keep answering on the serial path.
                self.stop_query_pool()
        return [
            (
                shard.query_batch(live),
                shard.count_batch(live) if need_counts else None,
            )
            for shard in self._shards
        ]

    def count_batch(self, patterns: "Sequence") -> list[int]:
        """``|occ(P)|`` across shards for many patterns (one locate per shard)."""
        encoded = [self._encode(p) for p in patterns]
        out = np.zeros(len(patterns), dtype=np.int64)
        slots = [i for i, codes in enumerate(encoded) if codes is not None]
        if not slots:
            return out.tolist()
        live = [encoded[i] for i in slots]
        slots_arr = np.asarray(slots, dtype=np.int64)
        for shard in self._shards:
            out[slots_arr] += np.asarray(shard.count_batch(live), dtype=np.int64)
        return out.tolist()

    # ------------------------------------------------------------------
    # Multi-core fan-out
    # ------------------------------------------------------------------
    def start_query_pool(self, workers: "int | None" = None) -> bool:
        """Fork a persistent worker pool over the shards (idempotent).

        Returns ``True`` when a pool is active afterwards.  Single-
        shard indexes, platforms without fork, and sandboxes that
        forbid process creation all return ``False`` — the index keeps
        serving on the serial path, answers unchanged.
        """
        if self._query_pool is not None and not self._query_pool.broken:
            return True
        if len(self._shards) < 2:
            return False
        try:
            self._query_pool = ShardQueryPool(self._shards, workers=workers)
        except (ShardPoolError, OSError, PermissionError):
            self._query_pool = None
            return False
        return True

    def stop_query_pool(self) -> None:
        """Shut the worker pool down (queries continue serially)."""
        pool = self._query_pool
        self._query_pool = None
        if pool is not None:
            pool.close()

    @property
    def query_pool_workers(self) -> int:
        """Active pool worker count (0 when serving serially)."""
        pool = self._query_pool
        return pool.workers if pool is not None and not pool.broken else 0

    def close(self) -> None:
        """Release served resources (currently: the query pool)."""
        self.stop_query_pool()

    def _merge(self, values: Sequence[float], counts: Sequence[int]) -> float:
        """Fold per-shard ``(utility, count)`` answers into one global one."""
        return merge_partial_answers(self._aggregator, values, counts)

    def document_frequency(
        self, pattern: "str | bytes | Sequence[int] | np.ndarray"
    ) -> int:
        """Documents (across all shards) containing the pattern."""
        codes = self._encode(pattern)
        if codes is None:
            return 0
        total = 0
        for shard, group in zip(self._shards, self._shard_documents):
            occurrences = shard.suffix_array.occurrences(codes)
            if occurrences.size == 0:
                continue
            boundaries = _shard_boundaries(shard, len(group))
            docs = np.unique(
                np.searchsorted(boundaries, occurrences, side="right") - 1
            )
            total += int(docs.size)
        return total


def _shard_boundaries(shard: UsiIndex, doc_count: int) -> np.ndarray:
    """Document start offsets inside a shard's combined text.

    Recovered from separator positions (the largest letter code) so the
    sharded index does not have to retain per-shard collections.
    """
    codes = shard.weighted_string.codes
    separator = shard.weighted_string.alphabet.size - 1
    if doc_count == 1:
        return np.zeros(1, dtype=np.int64)
    separators = np.flatnonzero(codes == separator)
    return np.concatenate(([0], separators + 1))
