"""Wire-protocol validation shared by every serving front-end.

The threaded :class:`~repro.service.server.UsiServer` and the asyncio
:class:`~repro.gateway.server.AsyncGateway` speak the same JSON
protocol; this module is the single place its request shapes are
validated, so the two front-ends cannot drift apart — same checks,
same status codes, same error strings, byte-identical rejections.

Validation failures raise :class:`RequestError` carrying the HTTP
status; each front-end turns that into its own JSON error response.
"""

from __future__ import annotations

MAX_BODY_BYTES = 8 * 1024 * 1024
MAX_BATCH = 10_000


class RequestError(Exception):
    """A protocol-level rejection: HTTP *status* plus a message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = int(status)
        self.message = message


def parse_query_request(request: dict) -> "tuple[list[str], bool]":
    """Validate a ``POST /query`` body; return ``(patterns, with_counts)``.

    Accepts exactly one of ``pattern`` / ``patterns``; every pattern
    must be a non-empty string and the batch must fit ``MAX_BATCH``.
    """
    single = request.get("pattern")
    batch = request.get("patterns")
    if (single is None) == (batch is None):
        raise RequestError(400, "provide exactly one of 'pattern' / 'patterns'")
    patterns = [single] if batch is None else list(batch)
    if not patterns or len(patterns) > MAX_BATCH:
        raise RequestError(400, f"batch size must be in [1, {MAX_BATCH}]")
    if not all(isinstance(p, str) and p for p in patterns):
        raise RequestError(400, "patterns must be non-empty strings")
    return patterns, bool(request.get("count"))


def health_payload(
    registry,
    *,
    workers_alive: int = 0,
    workers_target: int = 0,
    breaker_state: str = "closed",
    extra_reasons: "tuple[str, ...]" = (),
) -> dict:
    """The shared ``GET /healthz`` body for both front-ends.

    ``status`` is ``"ok"`` unless any degradation reason applies: an
    open/half-open worker breaker, missing pool workers, quarantined
    ingest memtables, or a front-end-specific *extra_reasons* entry.
    Degraded still means *answering* (exactly) — this is the signal a
    load balancer or operator watches, not a failure page.
    """
    quarantined = 0
    if registry is not None:
        for row in registry.ingest_stats().values():
            quarantined += int(row.get("quarantined", 0))
    reasons = list(extra_reasons)
    if breaker_state != "closed":
        reasons.append(f"worker breaker {breaker_state}")
    if workers_alive < workers_target:
        reasons.append(f"{workers_alive}/{workers_target} pool workers alive")
    if quarantined:
        reasons.append(f"{quarantined} quarantined memtable(s)")
    return {
        "status": "ok" if not reasons else "degraded",
        "workers_alive": int(workers_alive),
        "breaker": breaker_state,
        "quarantined": quarantined,
        "reasons": reasons,
    }


def parse_ingest_request(request: dict) -> "tuple[str, list | None]":
    """Validate a ``POST /ingest`` body; return ``(doc, utilities)``."""
    doc = request.get("doc")
    if not isinstance(doc, str) or not doc:
        raise RequestError(400, "'doc' must be a non-empty string")
    utilities = request.get("utilities")
    if utilities is not None:
        if not isinstance(utilities, list) or not all(
            isinstance(u, (int, float)) and not isinstance(u, bool)
            for u in utilities
        ):
            raise RequestError(400, "'utilities' must be a list of numbers")
        if len(utilities) != len(doc):
            raise RequestError(400, "'utilities' must have one value per character")
    return doc, utilities


def unsupported_counts(name: str, backend: str) -> RequestError:
    """The shared rejection for ``count: true`` on a countless backend."""
    return RequestError(
        400,
        f"index {name!r} (backend {backend!r}) does not support counts",
    )


def does_not_ingest(name: str, backend: str) -> RequestError:
    """The shared rejection for ``POST /ingest`` on a static backend."""
    return RequestError(
        400,
        f"index {name!r} (backend {backend!r}) does not ingest",
    )


def endpoint_class(method: str, path: str) -> str:
    """The latency bucket a request belongs to: query / ingest / admin.

    ``POST /query`` is ``query``, ``POST /ingest`` is ``ingest``, and
    everything else (listings, stats, health, 404s) is ``admin`` — the
    split :class:`~repro.service.metrics.EndpointMetrics` reports.
    """
    if method == "POST" and path == "/query":
        return "query"
    if method == "POST" and path == "/ingest":
        return "ingest"
    return "admin"
