"""Multi-index management for the serving subsystem.

An :class:`IndexRegistry` holds several named indexes behind
:class:`~repro.service.engine.QueryEngine` front-ends.  Indexes arrive
two ways:

* :meth:`register` — an in-memory index (just built).  These are
  *pinned*: the registry is their only owner, so they are never
  evicted.
* :meth:`register_path` — a path to a persisted index, loaded lazily
  on first use through :func:`repro.api.open_index`, so any registered
  backend (v1 ``.npz``, the tagged container, legacy pickles) can be
  served.  Loaded path-backed indexes are *evictable*: when
  more than ``capacity`` indexes are resident, the coldest (least
  recently used) path-backed one is dropped and transparently
  reloaded on its next query.

All operations are thread-safe; loading happens outside the lock so a
slow disk does not stall queries against already-resident indexes.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Callable

from repro import faults
from repro.errors import IndexLoadError, ParameterError
from repro.service.engine import QueryEngine
from repro.service.metrics import LatencyRecorder


def _default_loader(path: Path, mmap: bool = False):
    from repro.api import open_index

    return open_index(path, mmap=mmap)


def _same_underlying(a, b) -> bool:
    """Whether two registered objects share one underlying engine.

    Registrations may hand over a raw engine or its protocol adapter;
    a republish of either form must not close the live engine.
    """
    inner_a = getattr(a, "inner", None)
    inner_b = getattr(b, "inner", None)
    return (
        a is b
        or inner_a is b
        or a is inner_b
        or (inner_a is not None and inner_a is inner_b)
    )


class _Entry:
    __slots__ = (
        "name", "path", "engine", "pinned", "last_used", "backend", "generation"
    )

    def __init__(self, name, path, engine, pinned, backend=None):
        self.name = name
        self.path = path
        self.engine = engine
        self.pinned = pinned
        self.last_used = 0
        # The file's backend tag, peeked once at registration (None
        # for in-memory entries and untagged legacy pickles).
        self.backend = backend
        # Bumped by every replace(); lets clients observe hot swaps.
        self.generation = 1


class IndexRegistry:
    """Named indexes with lazy loading and capacity-bounded residency.

    Parameters
    ----------
    capacity:
        Soft bound on resident indexes.  Pinned (in-memory) indexes
        count toward it but are never evicted, so the bound only
        constrains path-backed ones.
    cache_size:
        Per-engine LRU result-cache size.
    metrics:
        Optional shared :class:`LatencyRecorder` handed to every
        engine, so server-wide latency statistics aggregate naturally.
    loader:
        Injectable ``path -> index`` function (tests).
    mmap:
        Open path-backed indexes with ``mmap=True`` (lazy,
        memory-mapped substrate for v3 containers; the ``usi serve
        --mmap`` flag).  Ignored when a custom *loader* is given.
    """

    def __init__(
        self,
        capacity: int = 8,
        cache_size: int = 4096,
        metrics: "LatencyRecorder | None" = None,
        loader: "Callable | None" = None,
        mmap: bool = False,
    ) -> None:
        if capacity <= 0:
            raise ParameterError("registry capacity must be positive")
        self._capacity = int(capacity)
        self._cache_size = int(cache_size)
        self._metrics = metrics if metrics is not None else LatencyRecorder()
        if loader is None:
            loader = lambda path: _default_loader(path, mmap=mmap)  # noqa: E731
        self._loader = loader
        self._entries: dict[str, _Entry] = {}
        self._clock = 0
        self._loads = 0
        self._load_failures = 0
        self._evictions = 0
        self._replacements = 0
        self._closed = False
        self._lock = threading.Lock()

    @property
    def metrics(self) -> LatencyRecorder:
        """The recorder shared by every engine this registry creates."""
        return self._metrics

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, name: str, index) -> QueryEngine:
        """Adopt an in-memory *index* under *name* (pinned)."""
        engine = self._wrap(index)
        with self._lock:
            if self._closed:
                raise ParameterError("the registry is closed")
            if name in self._entries:
                raise ParameterError(f"index {name!r} is already registered")
            self._entries[name] = _Entry(name, None, engine, pinned=True)
        return engine

    def register_path(self, name: str, path: "str | Path") -> None:
        """Register a persisted index for lazy loading (evictable)."""
        from repro.io import peek_backend

        path = Path(path)
        if not path.exists():
            raise ParameterError(f"index file {path} does not exist")
        backend = peek_backend(path)
        with self._lock:
            if self._closed:
                raise ParameterError("the registry is closed")
            if name in self._entries:
                raise ParameterError(f"index {name!r} is already registered")
            self._entries[name] = _Entry(
                name, path, None, pinned=False, backend=backend
            )

    def replace(self, name: str, index) -> QueryEngine:
        """Atomically hot-swap the index behind *name* (zero downtime).

        A fresh engine over *index* becomes visible to the next
        :meth:`get`; in-flight requests keep their old engine until
        they finish (engines are self-contained).  The entry becomes
        pinned/in-memory and its generation counter bumps.  The old
        engine is drained — its cache cleared, and its index closed
        when it is a *different* underlying object (a compactor
        republishing the same live index must not close it).
        """
        engine = self._wrap(index)
        with self._lock:
            if self._closed:
                raise ParameterError("the registry is closed")
            entry = self._entries.get(name)
            if entry is None:
                raise KeyError(name)
            old_engine = entry.engine
            entry.engine = engine
            entry.pinned = True
            entry.path = None
            entry.backend = None
            entry.generation += 1
            self._replacements += 1
        if old_engine is not None:
            old_engine.clear_cache()
            old_index = old_engine.index
            if not _same_underlying(old_index, index):
                closer = getattr(old_index, "close", None)
                if callable(closer):
                    closer()
        return engine

    def _wrap(self, index) -> QueryEngine:
        return QueryEngine(
            index, cache_size=self._cache_size, metrics=self._metrics
        )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> QueryEngine:
        """The engine for *name*, loading and evicting as needed."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                raise KeyError(name)
            self._clock += 1
            entry.last_used = self._clock
            if entry.engine is not None:
                return entry.engine
            path = entry.path
        # Load outside the lock (possibly racing another thread; the
        # second load just wins the assignment, both are equivalent).
        try:
            faults.fire("registry.load")
            index = self._loader(path)
        except Exception as error:
            # Nothing was assigned, so the entry stays lazily loadable
            # and the next get() retries; front-ends answer 503.
            with self._lock:
                self._load_failures += 1
            raise IndexLoadError(
                f"cannot load index {name!r} from {path}: {error}"
            ) from error
        engine = self._wrap(index)
        with self._lock:
            current = self._entries.get(name)
            if current is None:  # unregistered mid-load
                raise KeyError(name)
            if current is entry:
                if current.engine is None:
                    current.engine = engine
                    self._loads += 1
                result = current.engine
                # Eviction may immediately unload this entry again
                # (e.g. pinned indexes already fill the capacity); the
                # caller still gets a working engine for this request.
                self._evict_cold()
                return result
        # Unregistered and re-registered mid-load: our engine came
        # from the superseded registration; start over (lock released).
        return self.get(name)

    def _evict_cold(self) -> None:
        """Drop coldest evictable engines beyond capacity (lock held)."""
        resident = [e for e in self._entries.values() if e.engine is not None]
        excess = len(resident) - self._capacity
        if excess <= 0:
            return
        evictable = sorted(
            (e for e in resident if not e.pinned), key=lambda e: e.last_used
        )
        for entry in evictable[:excess]:
            entry.engine = None
            self._evictions += 1

    def unregister(self, name: str) -> None:
        with self._lock:
            self._entries.pop(name, None)

    def close(self) -> None:
        """Drop every entry and refuse further registrations.

        The graceful-shutdown hook: releases resident engines (and
        with them any memory-mapped substrate handles) once in-flight
        requests have drained.  Idempotent.
        """
        with self._lock:
            self._closed = True
            self._entries.clear()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def default_name(self) -> "str | None":
        """The single registered name, if exactly one (server default)."""
        with self._lock:
            if len(self._entries) == 1:
                return next(iter(self._entries))
        return None

    def describe(self) -> list[dict]:
        """One row per index (the ``GET /indexes`` payload).

        Resident indexes report their backend + capability flags from
        the protocol; non-resident path-backed ones from the file's
        backend tag peeked at registration (``None`` for untagged
        legacy pickles, resolved once the index loads).
        """
        with self._lock:
            entries = [
                (e.name, e.engine, e.pinned, e.path, e.backend, e.generation)
                for e in sorted(self._entries.values(), key=lambda e: e.name)
            ]
        rows = []
        for name, engine, pinned, path, backend, generation in entries:
            row = {
                "name": name,
                "resident": engine is not None,
                "pinned": pinned,
                "path": str(path) if path else None,
                "generation": generation,
            }
            if engine is not None:
                row.update(engine.describe_index())
            else:
                row["backend"] = backend
                row["capabilities"] = None
            rows.append(row)
        return rows

    def stats(self) -> dict:
        with self._lock:
            resident = sum(
                1 for e in self._entries.values() if e.engine is not None
            )
            return {
                "indexes": len(self._entries),
                "resident": resident,
                "capacity": self._capacity,
                "loads": self._loads,
                "load_failures": self._load_failures,
                "evictions": self._evictions,
                "replacements": self._replacements,
            }

    def engine_stats(self) -> dict:
        """Per-resident-engine statistics keyed by index name."""
        with self._lock:
            engines = {
                e.name: e.engine
                for e in self._entries.values()
                if e.engine is not None
            }
        return {name: engine.stats() for name, engine in engines.items()}

    def ingest_stats(self) -> dict:
        """Per-index ingest counters, for indexes that ingest.

        Keyed by name; only resident indexes whose protocol adapter
        exposes ``ingest_stats`` (the ``live`` backend) appear, so the
        dict is empty on a registry of static indexes.
        """
        with self._lock:
            engines = {
                e.name: e.engine
                for e in self._entries.values()
                if e.engine is not None
            }
        stats = {}
        for name, engine in engines.items():
            source = getattr(engine.protocol, "ingest_stats", None)
            if callable(source):
                stats[name] = source()
        return stats
