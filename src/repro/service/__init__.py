"""The query-serving subsystem: shard -> engine -> registry -> server.

Turns the library's one-shot indexes into a serving stack:

* :class:`ShardedUsiIndex` — document-aligned shards built in
  parallel, answers exactly equal to the monolithic index;
* :class:`QueryEngine` — batched, LRU-cached, thread-safe queries;
* :class:`IndexRegistry` — several named indexes, lazily loaded from
  disk, capacity-bounded residency;
* :class:`UsiServer` — a stdlib JSON-over-HTTP front-end
  (``usi serve``);
* :class:`LatencyRecorder` — the QPS / p50 / p95 / p99 numbers the
  other pieces share.

For heavy traffic, :mod:`repro.gateway` puts an asyncio front-end and
a multi-process worker pool in front of the same protocol
(``usi serve --async``).
"""

from repro.service.engine import QueryEngine
from repro.service.metrics import EndpointMetrics, LatencyRecorder, MetricsSnapshot
from repro.service.registry import IndexRegistry
from repro.service.requests import RequestError
from repro.service.server import UsiServer
from repro.service.sharding import ShardedUsiIndex

__all__ = [
    "EndpointMetrics",
    "IndexRegistry",
    "LatencyRecorder",
    "MetricsSnapshot",
    "QueryEngine",
    "RequestError",
    "ShardedUsiIndex",
    "UsiServer",
]
