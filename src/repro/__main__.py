"""``python -m repro`` — the `usi` command-line interface."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
