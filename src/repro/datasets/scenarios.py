"""The scenario registry: one harness, many worlds.

A :class:`Scenario` bundles everything one evaluation "world" needs:

* a **deterministic seeded corpus generator** — the six ``examples/``
  domains promoted to first-class citizens (DNA quality, web
  analytics, IoT link quality, ad sequencing, read collections), the
  Table II datasets not already covered by a domain (XML, HUM), and a
  ``pathological`` world of suffix-sorting worst cases;
* a set of **named query workloads** (see
  :mod:`repro.datasets.workloads`) with a scenario-appropriate length
  range;
* **pinned expected-metric baselines** (corpus checksum, top-k
  checksum, answer digest, utility-sum invariant) living in
  :mod:`repro.datasets.baselines` — computed once, committed, and
  re-verified by tests, examples, and the scheduled CI matrix.

The registry mirrors the backend registry in
:mod:`repro.api.registry`: string keys, duplicate registration is an
error, and everything downstream (the matrix runner in
:func:`repro.eval.harness.run_scenario_matrix`, the ``usi scenarios``
CLI, the property-test suite) dispatches by name.  Adding a new world
is ~20 lines: write a ``(n, seed) -> WeightedString`` generator and
call :func:`register_scenario` (see the README "Scenarios" section).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.datasets.synthetic import (
    _UNIFORM_GRID,
    make_adv,
    make_ecoli,
    make_hum,
    make_iot,
    make_xml,
)
from repro.datasets.workloads import WORKLOADS, build_workload
from repro.errors import ParameterError
from repro.strings.alphabet import Alphabet
from repro.strings.collection import WeightedStringCollection
from repro.strings.weighted import WeightedString

#: Every workload a scenario regresses against by default.
DEFAULT_WORKLOADS: tuple[str, ...] = (
    "w1", "w2_50", "zipfian", "bursty", "adversarial", "cache_hostile"
)

#: Exact single-string backends the matrix drives for string worlds
#: (``uat`` rides along but is excluded from exactness checks).
STRING_BACKENDS: tuple[str, ...] = (
    "usi", "uat", "fm", "oracle", "dynamic", "bsl1", "bsl2"
)

#: Collection-capable backends the matrix drives for collection worlds.
COLLECTION_BACKENDS: tuple[str, ...] = ("collection", "sharded", "live")


@dataclass(frozen=True)
class Scenario:
    """One registered evaluation world."""

    name: str
    title: str
    description: str
    generator: Callable[[int, int], "WeightedString | WeightedStringCollection"]
    default_n: int
    k_divisor: int
    query_length_range: tuple[int, int]
    kind: str = "string"  # "string" | "collection"
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS
    min_n: int = 64

    def make(self, n: "int | None" = None, seed: int = 0):
        """Generate the corpus at length *n* (default: the pinned size)."""
        n = self.default_n if n is None else int(n)
        if n < self.min_n:
            raise ParameterError(
                f"scenario {self.name!r} needs n >= {self.min_n}; got {n}"
            )
        return self.generator(n, seed)

    def default_k(self, n: "int | None" = None) -> int:
        """The top-K budget this world indexes with at length *n*."""
        return max(1, (n or self.default_n) // self.k_divisor)

    def backends(self) -> tuple[str, ...]:
        """The default backend set the matrix drives for this world."""
        return COLLECTION_BACKENDS if self.kind == "collection" else STRING_BACKENDS

    def workload_source(self, corpus) -> WeightedString:
        """The weighted string workloads are generated over.

        String worlds use the corpus itself.  Collection worlds use
        their *longest document* — never the separator-joined combined
        text, so patterns stay over the original alphabet and mean the
        same thing to the monolithic, sharded, and live backends.
        """
        if self.kind == "collection":
            return max(corpus.documents, key=lambda doc: doc.length)
        return corpus

    def combined_view(self, corpus) -> WeightedString:
        """The corpus as one weighted string (for checksums/invariants)."""
        if self.kind == "collection":
            return corpus.combined
        return corpus

    def build_workload(
        self,
        corpus,
        workload: str,
        num_queries: int,
        seed: int = 0,
        oracle=None,
    ) -> list[np.ndarray]:
        """Patterns of the named workload over this scenario's corpus."""
        if workload not in self.workloads:
            raise ParameterError(
                f"scenario {self.name!r} does not register workload "
                f"{workload!r}; registered: {sorted(self.workloads)}"
            )
        return build_workload(
            workload,
            self.workload_source(corpus),
            num_queries,
            length_range=self.query_length_range,
            seed=seed,
            oracle=oracle,
        )


# ----------------------------------------------------------------------
# The registry (mirrors repro.api.registry)
# ----------------------------------------------------------------------
_SCENARIOS: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Register *scenario* under its name; duplicate names are an error."""
    if scenario.name in _SCENARIOS:
        raise ParameterError(f"scenario {scenario.name!r} is already registered")
    unknown = [w for w in scenario.workloads if w not in WORKLOADS]
    if unknown:
        raise ParameterError(
            f"scenario {scenario.name!r} names unregistered workloads {unknown}"
        )
    _SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """The scenario registered under *name*; raises if unknown."""
    scenario = _SCENARIOS.get(name)
    if scenario is None:
        raise ParameterError(
            f"unknown scenario {name!r}; registered: {available_scenarios()}"
        )
    return scenario


def available_scenarios() -> list[str]:
    """Sorted registered scenario names."""
    return sorted(_SCENARIOS)


def describe_scenarios() -> dict[str, dict]:
    """One row per scenario (the ``usi scenarios list`` payload)."""
    rows = {}
    for name in available_scenarios():
        scenario = _SCENARIOS[name]
        rows[name] = {
            "scenario": name,
            "title": scenario.title,
            "kind": scenario.kind,
            "default_n": scenario.default_n,
            "default_k": scenario.default_k(),
            "query_length_range": list(scenario.query_length_range),
            "workloads": list(scenario.workloads),
            "backends": list(scenario.backends()),
            "description": scenario.description,
        }
    return rows


# ----------------------------------------------------------------------
# Corpus generators promoted from examples/
# ----------------------------------------------------------------------
def make_web_log(n: int = 15_000, seed: int = 0, pages: int = 26) -> WeightedString:
    """A page-visit log with session-like structure (web analytics).

    Users follow a handful of popular navigation funnels (short page
    sequences) interleaved with exploratory clicks; browsing time is
    log-normal per visit, with 'content' pages holding attention
    longer than 'navigation' pages.  Promoted verbatim from
    ``examples/web_analytics.py`` so every harness sees the same world.
    """
    rng = np.random.default_rng(seed)
    funnels = [rng.integers(0, pages, size=int(rng.integers(3, 7)))
               for _ in range(8)]
    chunks, total = [], 0
    while total < n:
        if rng.random() < 0.7:
            chunk = funnels[min(int(rng.zipf(1.4)) - 1, 7)]
        else:
            chunk = rng.integers(0, pages, size=1)
        chunks.append(chunk)
        total += len(chunk)
    codes = np.concatenate(chunks)[:n].astype(np.int32)
    base_time = rng.uniform(2.0, 40.0, size=pages)  # content vs nav pages
    times = base_time[codes] * rng.lognormal(0.0, 0.4, size=n)
    return WeightedString(codes, times, Alphabet(range(pages)))


def make_read_collection(n: int = 9_000, seed: int = 0) -> WeightedStringCollection:
    """Sequencing reads sampled from one reference, phred confidences.

    Promoted from ``examples/read_collection.py``: reads of a common
    reference with per-base confidence scores, where low-confidence
    bases are exactly the ones that miscall.  *n* is the total base
    budget; read length scales down with it so small test corpora
    still hold several overlapping reads.
    """
    rng = np.random.default_rng(seed)
    read_length = max(16, min(150, n // 8))
    count = max(2, n // read_length)
    reference = rng.integers(
        0, 4, size=max(2 * read_length, n // 4), dtype=np.int32
    )
    alphabet = Alphabet.dna()
    reads = []
    for _ in range(count):
        start = int(rng.integers(0, len(reference) - read_length + 1))
        bases = reference[start : start + read_length].copy()
        confidences = np.clip(rng.beta(9.0, 1.2, size=read_length), 0.05, 0.999)
        errors = rng.random(read_length) > confidences
        bases[errors] = rng.integers(0, 4, size=int(errors.sum()))
        reads.append(WeightedString(bases, confidences, alphabet))
    return WeightedStringCollection(reads)


def make_pathological(n: int = 8_000, seed: int = 0) -> WeightedString:
    """Suffix-sorting worst cases stitched into one corpus.

    Alternating blocks of ``a^m b^m`` (maximal same-letter chains, the
    induced-sort stressor), all-equal runs (period 1), ``abab...``
    runs (period 2), and short random spacers over a 3-letter
    alphabet.  The text that makes SA-IS, the length-bucket batch
    path, and LCP computation earn their keep.
    """
    rng = np.random.default_rng(seed)
    chunks: list[np.ndarray] = []
    total = 0
    block = 0
    while total < n:
        kind = block % 4
        block += 1
        m = int(rng.integers(max(4, n // 100), max(8, n // 25)))
        if kind == 0:  # a^m b^m
            chunk = np.concatenate(
                [np.zeros(m, dtype=np.int32), np.ones(m, dtype=np.int32)]
            )
        elif kind == 1:  # all-equal (period 1)
            chunk = np.zeros(m, dtype=np.int32)
        elif kind == 2:  # period 2
            chunk = np.tile(np.asarray([0, 1], dtype=np.int32), m)[:m]
        else:  # random spacer
            chunk = rng.integers(0, 3, size=int(rng.integers(2, 9)), dtype=np.int32)
        chunks.append(chunk)
        total += len(chunk)
    codes = np.concatenate(chunks)[:n]
    utilities = rng.choice(_UNIFORM_GRID, size=n)
    return WeightedString(codes, utilities, Alphabet("abc"))


# ----------------------------------------------------------------------
# Adversarial corpora (shared by tests/scenarios and the registry)
# ----------------------------------------------------------------------
def adversarial_corpora(n: int = 400, seed: int = 0) -> dict[str, WeightedString]:
    """The named edge-case corpora the regression tests pin.

    ``anbn`` (one maximal same-letter chain pair), ``all_equal``
    (period 1 — every suffix compares equal for its whole length),
    ``period2`` (``abab...``), and ``max_alphabet`` (every letter
    distinct — degenerate buckets, no repeated substrings at all).
    Utilities come from the paper's uniform grid so answers are
    non-trivial.
    """
    rng = np.random.default_rng(seed)

    def grid(size: int) -> np.ndarray:
        return rng.choice(_UNIFORM_GRID, size=size)

    half = n // 2
    return {
        "anbn": WeightedString(
            np.concatenate(
                [np.zeros(half, dtype=np.int32), np.ones(n - half, dtype=np.int32)]
            ),
            grid(n),
            Alphabet("ab"),
        ),
        "all_equal": WeightedString(
            np.zeros(n, dtype=np.int32), grid(n), Alphabet("a")
        ),
        "period2": WeightedString(
            np.tile(np.asarray([0, 1], dtype=np.int32), (n + 1) // 2)[:n],
            grid(n),
            Alphabet("ab"),
        ),
        "max_alphabet": WeightedString(
            np.arange(n, dtype=np.int32), grid(n), Alphabet(range(n))
        ),
    }


# ----------------------------------------------------------------------
# Registered worlds
# ----------------------------------------------------------------------
register_scenario(Scenario(
    name="ad_sequencing",
    title="Ad sequencing (ADV)",
    description="ad-category history with CTR utilities; the Section II "
                "case study where top-by-utility != top-by-frequency",
    generator=make_adv,
    default_n=20_000, k_divisor=36, query_length_range=(3, 200),
))

register_scenario(Scenario(
    name="dna_quality",
    title="DNA k-mer quality (ECOLI)",
    description="E. coli-like DNA with phred confidence utilities; "
                "frequent-mer quality profiling (the paper's Example 2)",
    generator=make_ecoli,
    default_n=20_000, k_divisor=50, query_length_range=(3, 64),
))

register_scenario(Scenario(
    name="iot_link_quality",
    title="IoT link quality (IOT)",
    description="near-periodic beacon rotations with RSSI utilities; "
                "very long frequent substrings (the streaming-miner killer)",
    generator=make_iot,
    default_n=12_000, k_divisor=60, query_length_range=(1, 2_000),
))

register_scenario(Scenario(
    name="web_analytics",
    title="Web analytics (page log)",
    description="session-structured page-visit log weighted by browsing "
                "time; navigation-path attention queries",
    generator=make_web_log,
    default_n=15_000, k_divisor=100, query_length_range=(1, 40),
))

register_scenario(Scenario(
    name="read_collection",
    title="Sequencing-read collection",
    description="a collection of DNA reads with per-base confidences; "
                "expected-frequency queries over document-aligned backends",
    generator=make_read_collection,
    default_n=9_000, k_divisor=50, query_length_range=(2, 24),
    kind="collection", min_n=128,
))

register_scenario(Scenario(
    name="table2_xml",
    title="Structured XML (Table II)",
    description="tag-structured text with grid utilities; the Table II "
                "XML dataset at reproduction scale",
    generator=make_xml,
    default_n=8_000, k_divisor=100, query_length_range=(1, 500),
    min_n=128,
))

register_scenario(Scenario(
    name="table2_hum",
    title="Human-genome DNA (Table II)",
    description="DNA with interspersed mutating repeats and grid "
                "utilities; the Table II HUM dataset at reproduction scale",
    generator=make_hum,
    default_n=8_000, k_divisor=100, query_length_range=(1, 500),
))

register_scenario(Scenario(
    name="pathological",
    title="Pathological (suffix worst cases)",
    description="a^m b^m blocks, period-1/period-2 runs, and spacers: "
                "the corpus that stresses SA-IS and the batch buckets",
    generator=make_pathological,
    default_n=8_000, k_divisor=80, query_length_range=(1, 400),
))
