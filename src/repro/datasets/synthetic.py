"""Synthetic analogues of the paper's five datasets (Table II).

The originals (ADV, IOT, XML, HUM, ECOLI) are up to 4.6 billion
letters; a pure-Python reproduction works at 10^4-10^5 letters, so
these generators reproduce the *structural* properties the experiments
depend on instead of the raw data:

* the alphabet size of each original;
* a heavy-tailed substring-frequency distribution (repeated motifs
  drawn from a Zipf-ranked vocabulary, mixed with noise);
* the one structural outlier the paper highlights: IOT contains very
  *long* frequent substrings (the exact top-22500 of the original
  include a substring of length 11816), which is precisely what breaks
  the streaming competitors — the IOT generator plants proportionally
  long repeats;
* the utility models: real-valued CTRs (ADV), normalised RSSIs (IOT),
  phred-style confidence scores (ECOLI), and — exactly as the paper
  does for the datasets without real utilities — utilities drawn
  uniformly from {0.7, 0.75, ..., 1.0} for XML and HUM.

Every generator takes ``(n, seed)`` and returns a
:class:`~repro.strings.weighted.WeightedString`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.strings.alphabet import Alphabet
from repro.strings.weighted import WeightedString

#: The paper's synthetic utility grid for XML and HUM.
_UNIFORM_GRID = np.arange(0.7, 1.0 + 1e-9, 0.05)


def _check_n(n: int, minimum: int = 64) -> None:
    if n < minimum:
        raise ParameterError(f"dataset length must be at least {minimum}; got {n}")


def _zipf_choice(rng: np.random.Generator, count: int, a: float, size: int) -> np.ndarray:
    """Zipf-ranked choice over ``[0, count)`` with exponent *a*."""
    ranks = np.arange(1, count + 1, dtype=np.float64)
    probs = ranks ** (-a)
    probs /= probs.sum()
    return rng.choice(count, size=size, p=probs)


def _motif_soup(
    rng: np.random.Generator,
    n: int,
    sigma: int,
    motif_count: int,
    motif_lengths: tuple[int, int],
    zipf_a: float,
    noise_prob: float,
    long_motifs: "list[int] | None" = None,
) -> np.ndarray:
    """Concatenate Zipf-sampled motifs and noise letters up to length n.

    *long_motifs* optionally prepends motifs of the given (large)
    lengths to the vocabulary, at the hottest Zipf ranks — the IOT
    long-repeat structure.
    """
    lo, hi = motif_lengths
    motifs: list[np.ndarray] = []
    for length in long_motifs or []:
        motifs.append(rng.integers(0, sigma, size=length, dtype=np.int32))
    for _ in range(motif_count):
        length = int(rng.integers(lo, hi + 1))
        motifs.append(rng.integers(0, sigma, size=length, dtype=np.int32))

    chunks: list[np.ndarray] = []
    total = 0
    picks = iter(_zipf_choice(rng, len(motifs), zipf_a, size=max(16, 4 * n // lo)))
    while total < n:
        if rng.random() < noise_prob:
            chunk = rng.integers(0, sigma, size=1, dtype=np.int32)
        else:
            try:
                chunk = motifs[int(next(picks))]
            except StopIteration:  # pragma: no cover - generous pick budget
                picks = iter(_zipf_choice(rng, len(motifs), zipf_a, size=4 * n // lo))
                continue
        chunks.append(chunk)
        total += len(chunk)
    return np.concatenate(chunks)[:n]


# ----------------------------------------------------------------------
# ADV: advertising categories with CTR utilities (sigma = 14)
# ----------------------------------------------------------------------
def make_adv(n: int = 20_000, seed: int = 0) -> WeightedString:
    """The ADV analogue: 14 ad categories, real-valued CTR utilities.

    Categories have different base CTRs (some keywords monetise far
    better), so top-by-utility and top-by-frequency substrings differ —
    the Table I effect.
    """
    _check_n(n)
    rng = np.random.default_rng(seed)
    sigma = 14
    codes = _motif_soup(
        rng, n, sigma,
        motif_count=40, motif_lengths=(2, 6), zipf_a=1.25, noise_prob=0.15,
    )
    # Per-category base CTR: a few lucrative categories, many cheap ones.
    base_ctr = rng.uniform(0.01, 0.08, size=sigma)
    lucrative = rng.choice(sigma, size=3, replace=False)
    base_ctr[lucrative] = rng.uniform(0.2, 0.4, size=3)
    noise = rng.uniform(-0.005, 0.005, size=n)
    utilities = np.clip(base_ctr[codes] + noise, 0.001, 0.5)
    alphabet = Alphabet("abcdefghijklmn")
    return WeightedString(codes.astype(np.int32), utilities, alphabet)


# ----------------------------------------------------------------------
# IOT: sensor readings with RSSI utilities (sigma = 63, long repeats)
# ----------------------------------------------------------------------
def make_iot(n: int = 20_000, seed: int = 0) -> WeightedString:
    """The IOT analogue: 63 letters, *very long* frequent substrings.

    Real IOT traces are near-periodic: a fixed rotation of beacons is
    observed over and over, broken by occasional noise bursts.  Such a
    text has only ~period-many distinct substrings per length, so its
    top-K contains substrings whose length grows like K / period — the
    "very long frequent substrings" the paper highlights (length 11816
    in the original's top-22500) and the property that defeats
    SubstringHK and Top-K-Trie in Figs 3-4.
    """
    _check_n(n)
    rng = np.random.default_rng(seed)
    sigma = 63
    # Two beacon rotations (periods 5 and 7) over distinct letter sets.
    cycles = [
        rng.choice(sigma, size=5, replace=False).astype(np.int32),
        rng.choice(sigma, size=7, replace=False).astype(np.int32),
    ]
    chunks: list[np.ndarray] = []
    total = 0
    while total < n:
        cycle = cycles[0] if rng.random() < 0.8 else cycles[1]
        # A long periodic run: many whole sweeps of the rotation.
        run_periods = int(rng.integers(max(4, n // 200), max(8, n // 50)))
        phase = int(rng.integers(0, len(cycle)))
        run = np.tile(cycle, run_periods + 2)[phase : phase + run_periods * len(cycle)]
        chunks.append(run)
        total += len(run)
        burst = rng.integers(0, sigma, size=int(rng.integers(2, 9)), dtype=np.int32)
        chunks.append(burst)
        total += len(burst)
    codes = np.concatenate(chunks)[:n]
    # RSSI as a clipped random walk, normalised to [0, 1] (the paper
    # normalises the dBm values the same way).
    walk = np.cumsum(rng.normal(0.0, 1.0, size=n))
    span = walk.max() - walk.min()
    utilities = (walk - walk.min()) / (span if span > 0 else 1.0)
    return WeightedString(codes.astype(np.int32), utilities, Alphabet(range(sigma)))


# ----------------------------------------------------------------------
# XML: structured text (sigma ~ 60-95)
# ----------------------------------------------------------------------
def make_xml(n: int = 20_000, seed: int = 0) -> WeightedString:
    """The XML analogue: tag-structured text, grid utilities.

    Generates nested elements over a small tag vocabulary; opening/
    closing tags are highly frequent substrings of medium length,
    giving the characteristic XML frequency profile.
    """
    _check_n(n, minimum=128)
    rng = np.random.default_rng(seed)
    tags = ["article", "title", "author", "year", "ref", "sec", "p", "item"]
    words = ["data", "index", "string", "query", "utility", "graph", "model",
             "base", "note", "test"]
    pieces: list[str] = []
    total = 0
    depth_stack: list[str] = []
    while total < n:
        action = rng.random()
        if depth_stack and (action < 0.3 or len(depth_stack) > 4):
            tag = depth_stack.pop()
            piece = f"</{tag}>"
        elif action < 0.65:
            tag = tags[int(rng.integers(0, len(tags)))]
            depth_stack.append(tag)
            piece = f"<{tag}>"
        else:
            piece = words[int(rng.integers(0, len(words)))] + " "
        pieces.append(piece)
        total += len(piece)
    text = "".join(pieces)[:n]
    utilities = rng.choice(_UNIFORM_GRID, size=n)
    return WeightedString(text, utilities)


# ----------------------------------------------------------------------
# HUM / ECOLI: DNA (sigma = 4)
# ----------------------------------------------------------------------
def _dna_with_repeats(
    rng: np.random.Generator,
    n: int,
    repeat_length: int,
    repeat_period: int,
    mutation_rate: float,
) -> np.ndarray:
    """DNA background with a planted mutating repeat element.

    Mimics the interspersed-repeat structure (Alu-like elements) that
    gives real genomes their heavy k-mer frequency tail.
    """
    codes = rng.integers(0, 4, size=n, dtype=np.int32)
    element = rng.integers(0, 4, size=repeat_length, dtype=np.int32)
    pos = int(rng.integers(0, max(1, repeat_period // 2)))
    while pos + repeat_length < n:
        copy = element.copy()
        mutations = rng.random(repeat_length) < mutation_rate
        copy[mutations] = rng.integers(0, 4, size=int(mutations.sum()), dtype=np.int32)
        codes[pos : pos + repeat_length] = copy
        pos += repeat_length + int(rng.integers(1, repeat_period))
    return codes


def make_hum(n: int = 20_000, seed: int = 0) -> WeightedString:
    """The HUM analogue: DNA with interspersed repeats, grid utilities."""
    _check_n(n)
    rng = np.random.default_rng(seed)
    codes = _dna_with_repeats(
        rng, n,
        repeat_length=max(20, n // 200), repeat_period=max(40, n // 100),
        mutation_rate=0.02,
    )
    utilities = rng.choice(_UNIFORM_GRID, size=n)
    return WeightedString(codes, utilities, Alphabet.dna())


def make_ecoli(n: int = 20_000, seed: int = 0) -> WeightedString:
    """The ECOLI analogue: DNA with phred-style confidence utilities.

    Base-calling confidence scores concentrate near 1 with a tail of
    low-confidence positions; a Beta(8, 1.5) draw reproduces that
    shape in [0, 1].
    """
    _check_n(n)
    rng = np.random.default_rng(seed)
    codes = _dna_with_repeats(
        rng, n,
        repeat_length=max(16, n // 300), repeat_period=max(30, n // 150),
        mutation_rate=0.01,
    )
    utilities = np.clip(rng.beta(8.0, 1.5, size=n), 0.0, 1.0)
    return WeightedString(codes, utilities, Alphabet.dna())
