"""Named dataset configurations mirroring Table II.

Each entry records the scaled default length, the default top-K count
(kept at the paper's K/n ratio), the default number of sampling rounds
``s`` for Approximate-Top-K, and the query-length range its workloads
use (IOT gets longer queries because its frequent substrings are long;
ADV gets short ones because the text itself is short — both choices
are the paper's).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.datasets.synthetic import make_adv, make_ecoli, make_hum, make_iot, make_xml
from repro.errors import ParameterError
from repro.strings.weighted import WeightedString


@dataclass(frozen=True)
class DatasetSpec:
    """Scaled reproduction parameters of one Table II dataset."""

    name: str
    generator: Callable[[int, int], WeightedString]
    default_n: int
    paper_n: float
    paper_sigma: int
    k_fraction: float  # default K = k_fraction * n (the paper's K/n ratio)
    default_s: int
    query_length_range: tuple[int, int]
    description: str

    def default_k(self, n: "int | None" = None) -> int:
        return max(1, int((n or self.default_n) * self.k_fraction))

    def make(self, n: "int | None" = None, seed: int = 0) -> WeightedString:
        return self.generator(n or self.default_n, seed)


DATASETS: dict[str, DatasetSpec] = {
    "ADV": DatasetSpec(
        name="ADV", generator=make_adv, default_n=20_000,
        paper_n=2.19e5, paper_sigma=14,
        k_fraction=6_000 / 218_987, default_s=6,
        query_length_range=(3, 200),
        description="advertising categories with CTR utilities",
    ),
    "IOT": DatasetSpec(
        name="IOT", generator=make_iot, default_n=20_000,
        paper_n=1.9e7, paper_sigma=63,
        k_fraction=0.18e6 / 1.9e7, default_s=8,
        query_length_range=(1, 2_000),
        description="sensor readings with RSSI utilities, long repeats",
    ),
    "XML": DatasetSpec(
        name="XML", generator=make_xml, default_n=24_000,
        paper_n=2e8, paper_sigma=95,
        k_fraction=2e6 / 2e8, default_s=6,
        query_length_range=(1, 500),
        description="structured XML text, grid utilities",
    ),
    "HUM": DatasetSpec(
        name="HUM", generator=make_hum, default_n=30_000,
        paper_n=2.9e9, paper_sigma=4,
        k_fraction=29e6 / 2.9e9, default_s=6,
        query_length_range=(1, 500),
        description="human-genome-like DNA, grid utilities",
    ),
    "ECOLI": DatasetSpec(
        name="ECOLI", generator=make_ecoli, default_n=30_000,
        paper_n=4.6e9, paper_sigma=4,
        k_fraction=45e6 / 4.6e9, default_s=8,
        query_length_range=(1, 500),
        description="E. coli-like DNA with phred confidence utilities",
    ),
}


def load(name: str, n: "int | None" = None, seed: int = 0) -> WeightedString:
    """Generate a named dataset at length *n* (default: scaled Table II)."""
    spec = DATASETS.get(name.upper())
    if spec is None:
        raise ParameterError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        )
    return spec.make(n, seed)


def table2_rows(seed: int = 0) -> list[dict]:
    """Measured properties of every generated dataset (Table II analogue)."""
    rows = []
    for spec in DATASETS.values():
        ws = spec.make(seed=seed)
        rows.append(
            {
                "dataset": spec.name,
                "length_n": ws.length,
                "alphabet_sigma": len(set(ws.codes.tolist())),
                "default_K": spec.default_k(),
                "default_s": spec.default_s,
                "paper_n": spec.paper_n,
                "paper_sigma": spec.paper_sigma,
            }
        )
    return rows
