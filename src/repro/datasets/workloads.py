"""Named query workloads: the paper's W1/W2,p plus stress families.

W1: 90% of the query patterns are drawn from the top-(n/50) frequent
substrings of the dataset; the remaining 10% are drawn either from the
already-selected frequent patterns (creating repeats, which the
caching baselines like) or uniformly from substrings whose length is
random in a dataset-specific range.

W2,p: p% of the queries are drawn from the top-(n/100) frequent
substrings; the rest are constructed as in W1.

Beyond the paper's two, the registry carries the stress families the
scenario matrix regresses against:

* ``zipfian`` — rank-skewed draws from the frequent pool (real-traffic
  skew, the shape every cache is designed for);
* ``bursty`` — the same hot pattern repeated in geometric runs (what a
  pattern going viral looks like to the coalescer);
* ``adversarial`` — a^m b^m sweeps, period-1 repeats at many distinct
  lengths, and long text prefixes: worst cases for SA-IS induced
  sorting and the per-length-bucket batch path;
* ``cache_hostile`` — a stream of pairwise-distinct patterns that
  defeats every admission cache and the gateway coalescer by
  construction.

Every builder is deterministic in ``seed`` (same seed, byte-identical
patterns) and returns numpy ``int64`` code arrays, ready for
``UsiIndex.query`` / the baselines.  :data:`WORKLOADS` is the
string-keyed registry; :func:`build_workload` dispatches through it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.topk_oracle import TopKOracle
from repro.errors import ParameterError
from repro.strings.weighted import WeightedString


def _frequent_pool(
    ws: WeightedString, oracle: TopKOracle, pool_size: int
) -> list[np.ndarray]:
    """Materialise the top-*pool_size* frequent substrings as patterns."""
    mined = oracle.top_k(max(1, pool_size))
    codes = ws.codes
    return [np.asarray(codes[m.position : m.position + m.length], dtype=np.int64)
            for m in mined]


def _random_substring(
    ws: WeightedString, rng: np.random.Generator, length_range: tuple[int, int]
) -> np.ndarray:
    lo, hi = length_range
    hi = min(hi, ws.length)
    lo = min(lo, hi)
    length = int(rng.integers(lo, hi + 1))
    start = int(rng.integers(0, ws.length - length + 1))
    return np.asarray(ws.codes[start : start + length], dtype=np.int64)


def _w1_tail(
    ws: WeightedString,
    rng: np.random.Generator,
    selected: list[np.ndarray],
    count: int,
    length_range: tuple[int, int],
) -> list[np.ndarray]:
    """The '10% remainder' rule: repeats of selected, or random substrings."""
    out: list[np.ndarray] = []
    for _ in range(count):
        if selected and rng.random() < 0.5:
            out.append(selected[int(rng.integers(0, len(selected)))])
        else:
            out.append(_random_substring(ws, rng, length_range))
    return out


def build_w1(
    ws: WeightedString,
    oracle: TopKOracle,
    num_queries: int,
    length_range: tuple[int, int] = (1, 5_000),
    frequent_fraction: float = 0.9,
    pool_divisor: int = 50,
    seed: int = 0,
) -> list[np.ndarray]:
    """The W1 workload: 90% frequent patterns, 10% mixed remainder."""
    if num_queries < 1:
        raise ParameterError("num_queries must be positive")
    rng = np.random.default_rng(seed)
    pool = _frequent_pool(ws, oracle, ws.length // pool_divisor)
    frequent_count = int(frequent_fraction * num_queries)
    picks = rng.integers(0, len(pool), size=frequent_count)
    selected = [pool[int(i)] for i in picks]
    queries = list(selected)
    queries.extend(
        _w1_tail(ws, rng, selected, num_queries - frequent_count, length_range)
    )
    rng.shuffle(queries)  # type: ignore[arg-type]
    return queries


def build_w2p(
    ws: WeightedString,
    oracle: TopKOracle,
    num_queries: int,
    p: int,
    length_range: tuple[int, int] = (1, 5_000),
    pool_divisor: int = 100,
    seed: int = 0,
) -> list[np.ndarray]:
    """The W2,p workload: p% from the top-(n/100) frequent substrings."""
    if not 0 <= p <= 100:
        raise ParameterError("p must be a percentage in [0, 100]")
    if num_queries < 1:
        raise ParameterError("num_queries must be positive")
    rng = np.random.default_rng(seed)
    pool = _frequent_pool(ws, oracle, ws.length // pool_divisor)
    frequent_count = int(p / 100 * num_queries)
    picks = rng.integers(0, len(pool), size=frequent_count)
    selected = [pool[int(i)] for i in picks]
    queries = list(selected)

    # Remaining queries follow the W1 construction.
    remaining = num_queries - frequent_count
    w1_frequent = int(0.9 * remaining)
    picks = rng.integers(0, len(pool), size=w1_frequent)
    w1_selected = [pool[int(i)] for i in picks]
    queries.extend(w1_selected)
    queries.extend(
        _w1_tail(ws, rng, w1_selected, remaining - w1_frequent, length_range)
    )
    rng.shuffle(queries)  # type: ignore[arg-type]
    return queries


# ----------------------------------------------------------------------
# Stress families
# ----------------------------------------------------------------------
def build_zipfian(
    ws: WeightedString,
    oracle: TopKOracle,
    num_queries: int,
    length_range: tuple[int, int] = (1, 5_000),
    seed: int = 0,
    zipf_a: float = 1.3,
) -> list[np.ndarray]:
    """Rank-skewed draws from the frequent pool (real-traffic skew).

    Pattern *i* of the top-(n/50) pool is drawn with probability
    proportional to ``rank**-zipf_a``, so a handful of hot patterns
    dominate — the distribution caches are built for.  A 5% tail of
    random substrings keeps the uncached path exercised.
    """
    if num_queries < 1:
        raise ParameterError("num_queries must be positive")
    rng = np.random.default_rng(seed)
    pool = _frequent_pool(ws, oracle, max(1, ws.length // 50))
    ranks = np.arange(1, len(pool) + 1, dtype=np.float64)
    probs = ranks ** (-zipf_a)
    probs /= probs.sum()
    queries: list[np.ndarray] = []
    for _ in range(num_queries):
        if rng.random() < 0.05:
            queries.append(_random_substring(ws, rng, length_range))
        else:
            queries.append(pool[int(rng.choice(len(pool), p=probs))])
    return queries


def build_bursty(
    ws: WeightedString,
    oracle: TopKOracle,
    num_queries: int,
    length_range: tuple[int, int] = (1, 5_000),
    seed: int = 0,
    mean_burst: int = 8,
) -> list[np.ndarray]:
    """Hot patterns arriving in geometric runs (a pattern going viral).

    Each burst picks one pattern from the frequent pool and repeats it
    back-to-back for a geometrically distributed run — the concurrency
    shape the request coalescer and the LRU admission path see when a
    pattern suddenly goes hot.
    """
    if num_queries < 1:
        raise ParameterError("num_queries must be positive")
    rng = np.random.default_rng(seed)
    pool = _frequent_pool(ws, oracle, max(1, ws.length // 50))
    queries: list[np.ndarray] = []
    while len(queries) < num_queries:
        pattern = pool[int(rng.integers(0, len(pool)))]
        run = 1 + int(rng.geometric(1.0 / mean_burst))
        queries.extend([pattern] * run)
    return queries[:num_queries]


def build_adversarial(
    ws: WeightedString,
    oracle: "TopKOracle | None",
    num_queries: int,
    length_range: tuple[int, int] = (1, 5_000),
    seed: int = 0,
) -> list[np.ndarray]:
    """Worst-case patterns for the suffix machinery, not for the cache.

    Round-robins three generators over the corpus's own letters:

    * **period-1 runs** ``c^L`` of the most common letter, one per
      distinct length — every pattern lands in its own length bucket,
      so the batch path degenerates to one searchsorted per pattern;
    * **a^m b^m sweeps** over the two most common letters — the
      classic induced-sorting stressor (maximal same-letter chains);
    * **text prefixes** at geometrically growing lengths — long
      patterns that overflow the packed-key fast path into the
      lockstep binary-search fallback.

    Patterns may or may not occur in the text; both sides matter
    (non-occurring worst cases still pay the full descent).
    """
    if num_queries < 1:
        raise ParameterError("num_queries must be positive")
    rng = np.random.default_rng(seed)
    lo, hi = length_range
    hi = max(1, min(hi, ws.length))
    counts = np.bincount(ws.codes)
    order = np.argsort(counts)[::-1]
    a = int(order[0])
    b = int(order[1]) if len(order) > 1 else a
    queries: list[np.ndarray] = []
    prefix_length = 1
    step = 0
    while len(queries) < num_queries:
        kind = step % 3
        step += 1
        if kind == 0:  # period-1 run, a fresh length every time
            length = 1 + (step // 3) % hi
            queries.append(np.full(length, a, dtype=np.int64))
        elif kind == 1:  # a^m b^m
            m = 1 + int(rng.integers(1, max(2, hi // 2 + 1)))
            m = min(m, max(1, hi // 2))
            queries.append(
                np.concatenate(
                    [np.full(m, a, dtype=np.int64), np.full(m, b, dtype=np.int64)]
                )
            )
        else:  # geometric text prefixes (long-pattern fallback path)
            queries.append(np.asarray(ws.codes[:prefix_length], dtype=np.int64))
            prefix_length = min(hi, prefix_length * 2)
            if prefix_length == hi:
                prefix_length = 1 + int(rng.integers(1, hi + 1)) // 2
    return queries[:num_queries]


def build_cache_hostile(
    ws: WeightedString,
    oracle: "TopKOracle | None",
    num_queries: int,
    length_range: tuple[int, int] = (1, 5_000),
    seed: int = 0,
) -> list[np.ndarray]:
    """A stream of pairwise-distinct patterns: zero cache value.

    Every pattern in the stream is unique (checked by content), so an
    LRU of any size scores zero hits after the compulsory misses, and
    the gateway coalescer never finds an identical in-flight request —
    each query pays a full worker round-trip.  Uniqueness is guaranteed
    even on degenerate corpora (an all-equal text still has ``n``
    distinct substrings ``c^1 .. c^n``); asking for more unique
    patterns than the text has distinct substrings raises.
    """
    if num_queries < 1:
        raise ParameterError("num_queries must be positive")
    rng = np.random.default_rng(seed)
    seen: set[bytes] = set()
    queries: list[np.ndarray] = []
    attempts = 0
    budget = 50 * num_queries
    while len(queries) < num_queries and attempts < budget:
        attempts += 1
        candidate = _random_substring(ws, rng, length_range)
        key = candidate.tobytes()
        if key in seen:
            continue
        seen.add(key)
        queries.append(candidate)
    # Degenerate corpora (few distinct substrings in the sampled length
    # range): fall back to prefixes of increasing length, which are
    # distinct patterns whenever their lengths are.
    length = 1
    while len(queries) < num_queries and length <= ws.length:
        candidate = np.asarray(ws.codes[:length], dtype=np.int64)
        length += 1
        key = candidate.tobytes()
        if key in seen:
            continue
        seen.add(key)
        queries.append(candidate)
    if len(queries) < num_queries:
        raise ParameterError(
            f"cannot draw {num_queries} unique patterns from a text with "
            f"n={ws.length}; lower num_queries or widen length_range"
        )
    return queries


# ----------------------------------------------------------------------
# The workload registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadSpec:
    """One named query workload: a seeded builder plus metadata."""

    name: str
    family: str
    description: str
    builder: Callable[..., "list[np.ndarray]"]
    needs_oracle: bool = True

    def build(
        self,
        ws: WeightedString,
        num_queries: int,
        length_range: tuple[int, int] = (1, 5_000),
        seed: int = 0,
        oracle: "TopKOracle | None" = None,
    ) -> list[np.ndarray]:
        if self.needs_oracle and oracle is None:
            from repro.suffix.suffix_array import SuffixArray

            oracle = TopKOracle(SuffixArray(ws.codes))
        return self.builder(
            ws, oracle, num_queries, length_range=length_range, seed=seed
        )


def _w2_50(ws, oracle, num_queries, length_range=(1, 5_000), seed=0):
    return build_w2p(
        ws, oracle, num_queries, p=50, length_range=length_range, seed=seed
    )


WORKLOADS: dict[str, WorkloadSpec] = {
    "w1": WorkloadSpec(
        name="w1", family="paper",
        description="the paper's W1: 90% top-(n/50) frequent, 10% mixed tail",
        builder=build_w1,
    ),
    "w2_50": WorkloadSpec(
        name="w2_50", family="paper",
        description="the paper's W2,p at p=50: half top-(n/100), half W1-style",
        builder=_w2_50,
    ),
    "zipfian": WorkloadSpec(
        name="zipfian", family="zipfian",
        description="rank-skewed frequent-pool draws (real-traffic skew)",
        builder=build_zipfian,
    ),
    "bursty": WorkloadSpec(
        name="bursty", family="bursty",
        description="hot patterns repeated in geometric runs (viral bursts)",
        builder=build_bursty,
    ),
    "adversarial": WorkloadSpec(
        name="adversarial", family="adversarial",
        description="a^m b^m sweeps, period-1 runs, long prefixes "
                    "(SA-IS and length-bucket worst cases)",
        builder=build_adversarial, needs_oracle=False,
    ),
    "cache_hostile": WorkloadSpec(
        name="cache_hostile", family="cache_hostile",
        description="pairwise-distinct patterns defeating LRU + coalescer",
        builder=build_cache_hostile, needs_oracle=False,
    ),
}


def available_workloads() -> list[str]:
    """Sorted registered workload names."""
    return sorted(WORKLOADS)


def workload_families() -> list[str]:
    """Sorted distinct workload families."""
    return sorted({spec.family for spec in WORKLOADS.values()})


def get_workload(name: str) -> WorkloadSpec:
    """The registered :class:`WorkloadSpec` under *name*."""
    spec = WORKLOADS.get(name)
    if spec is None:
        raise ParameterError(
            f"unknown workload {name!r}; registered: {available_workloads()}"
        )
    return spec


def build_workload(
    name: str,
    ws: WeightedString,
    num_queries: int,
    length_range: tuple[int, int] = (1, 5_000),
    seed: int = 0,
    oracle: "TopKOracle | None" = None,
) -> list[np.ndarray]:
    """Build the named workload over *ws* (dispatch through the registry)."""
    return get_workload(name).build(
        ws, num_queries, length_range=length_range, seed=seed, oracle=oracle
    )
