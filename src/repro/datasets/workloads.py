"""Query workloads W1 and W2,p (Section IX-C "Parameters").

W1: 90% of the query patterns are drawn from the top-(n/50) frequent
substrings of the dataset; the remaining 10% are drawn either from the
already-selected frequent patterns (creating repeats, which the
caching baselines like) or uniformly from substrings whose length is
random in a dataset-specific range.

W2,p: p% of the queries are drawn from the top-(n/100) frequent
substrings; the rest are constructed as in W1.

Patterns are returned as numpy code arrays, ready for
``UsiIndex.query`` / the baselines.
"""

from __future__ import annotations

import numpy as np

from repro.core.topk_oracle import TopKOracle
from repro.errors import ParameterError
from repro.strings.weighted import WeightedString


def _frequent_pool(
    ws: WeightedString, oracle: TopKOracle, pool_size: int
) -> list[np.ndarray]:
    """Materialise the top-*pool_size* frequent substrings as patterns."""
    mined = oracle.top_k(max(1, pool_size))
    codes = ws.codes
    return [np.asarray(codes[m.position : m.position + m.length], dtype=np.int64)
            for m in mined]


def _random_substring(
    ws: WeightedString, rng: np.random.Generator, length_range: tuple[int, int]
) -> np.ndarray:
    lo, hi = length_range
    hi = min(hi, ws.length)
    lo = min(lo, hi)
    length = int(rng.integers(lo, hi + 1))
    start = int(rng.integers(0, ws.length - length + 1))
    return np.asarray(ws.codes[start : start + length], dtype=np.int64)


def _w1_tail(
    ws: WeightedString,
    rng: np.random.Generator,
    selected: list[np.ndarray],
    count: int,
    length_range: tuple[int, int],
) -> list[np.ndarray]:
    """The '10% remainder' rule: repeats of selected, or random substrings."""
    out: list[np.ndarray] = []
    for _ in range(count):
        if selected and rng.random() < 0.5:
            out.append(selected[int(rng.integers(0, len(selected)))])
        else:
            out.append(_random_substring(ws, rng, length_range))
    return out


def build_w1(
    ws: WeightedString,
    oracle: TopKOracle,
    num_queries: int,
    length_range: tuple[int, int] = (1, 5_000),
    frequent_fraction: float = 0.9,
    pool_divisor: int = 50,
    seed: int = 0,
) -> list[np.ndarray]:
    """The W1 workload: 90% frequent patterns, 10% mixed remainder."""
    if num_queries < 1:
        raise ParameterError("num_queries must be positive")
    rng = np.random.default_rng(seed)
    pool = _frequent_pool(ws, oracle, ws.length // pool_divisor)
    frequent_count = int(frequent_fraction * num_queries)
    picks = rng.integers(0, len(pool), size=frequent_count)
    selected = [pool[int(i)] for i in picks]
    queries = list(selected)
    queries.extend(
        _w1_tail(ws, rng, selected, num_queries - frequent_count, length_range)
    )
    rng.shuffle(queries)  # type: ignore[arg-type]
    return queries


def build_w2p(
    ws: WeightedString,
    oracle: TopKOracle,
    num_queries: int,
    p: int,
    length_range: tuple[int, int] = (1, 5_000),
    pool_divisor: int = 100,
    seed: int = 0,
) -> list[np.ndarray]:
    """The W2,p workload: p% from the top-(n/100) frequent substrings."""
    if not 0 <= p <= 100:
        raise ParameterError("p must be a percentage in [0, 100]")
    if num_queries < 1:
        raise ParameterError("num_queries must be positive")
    rng = np.random.default_rng(seed)
    pool = _frequent_pool(ws, oracle, ws.length // pool_divisor)
    frequent_count = int(p / 100 * num_queries)
    picks = rng.integers(0, len(pool), size=frequent_count)
    selected = [pool[int(i)] for i in picks]
    queries = list(selected)

    # Remaining queries follow the W1 construction.
    remaining = num_queries - frequent_count
    w1_frequent = int(0.9 * remaining)
    picks = rng.integers(0, len(pool), size=w1_frequent)
    w1_selected = [pool[int(i)] for i in picks]
    queries.extend(w1_selected)
    queries.extend(
        _w1_tail(ws, rng, w1_selected, remaining - w1_frequent, length_range)
    )
    rng.shuffle(queries)  # type: ignore[arg-type]
    return queries
