"""Synthetic dataset generators, query workloads, and the scenario registry."""

from repro.datasets.baselines import (
    PINNED_BASELINES,
    compute_baseline,
    verify_baseline,
)
from repro.datasets.registry import DATASETS, DatasetSpec, load, table2_rows
from repro.datasets.scenarios import (
    Scenario,
    adversarial_corpora,
    available_scenarios,
    describe_scenarios,
    get_scenario,
    register_scenario,
)
from repro.datasets.synthetic import (
    make_adv,
    make_ecoli,
    make_hum,
    make_iot,
    make_xml,
)
from repro.datasets.workloads import (
    WORKLOADS,
    WorkloadSpec,
    available_workloads,
    build_w1,
    build_w2p,
    build_workload,
    get_workload,
    workload_families,
)

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "PINNED_BASELINES",
    "Scenario",
    "WORKLOADS",
    "WorkloadSpec",
    "adversarial_corpora",
    "available_scenarios",
    "available_workloads",
    "build_w1",
    "build_w2p",
    "build_workload",
    "compute_baseline",
    "describe_scenarios",
    "get_scenario",
    "get_workload",
    "load",
    "make_adv",
    "make_ecoli",
    "make_hum",
    "make_iot",
    "make_xml",
    "register_scenario",
    "table2_rows",
    "verify_baseline",
    "workload_families",
]
