"""Synthetic dataset generators and query workloads (Table II scale-downs)."""

from repro.datasets.registry import DATASETS, DatasetSpec, load, table2_rows
from repro.datasets.synthetic import (
    make_adv,
    make_ecoli,
    make_hum,
    make_iot,
    make_xml,
)
from repro.datasets.workloads import build_w1, build_w2p

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "build_w1",
    "build_w2p",
    "load",
    "make_adv",
    "make_ecoli",
    "make_hum",
    "make_iot",
    "make_xml",
    "table2_rows",
]
