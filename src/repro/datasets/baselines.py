"""Pinned expected-metric baselines for every registered scenario.

Each scenario's baseline is computed once at its pinned size
(``Scenario.default_n``, seed 0) and committed here; tests, the
rewritten examples, and the scheduled CI matrix recompute and compare.
A drift in any field means the world changed under the harness — a
generator edit, a workload edit, or a real answer regression — and
must be either fixed or deliberately re-pinned (run
``python -m repro.datasets.baselines`` and review the diff).

Fields per scenario:

* ``corpus_sha256`` — hash of the combined corpus codes + utilities
  (byte-identical generation);
* ``workload_sha256`` — hash of the canonical ``zipfian`` workload's
  patterns (byte-identical query streams);
* ``topk_checksum`` — hash of the exact top-K ``frequency:length``
  sequence (the mining contract);
* ``counts_sha256`` — hash of exact occurrence counts over the
  canonical workload (integers, bit-exact);
* ``answers_sum`` — sum of ``U(P)`` over the canonical workload
  (compared with a small relative tolerance: exact backends may
  reorder float accumulation);
* ``utility_sum`` — sum of the corpus weight function (the PSW
  invariant every prefix-sum rebuild must preserve).

The hashes are first-16-hex-digit SHA-256 prefixes: collision-safe
for regression pinning, short enough to read in a diff.

Determinism caveat: generators draw from ``numpy.random.default_rng``
streams; the pins hold for the numpy line CI runs.  If a numpy
upgrade ever changes a distribution algorithm, re-pin deliberately.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import ParameterError

#: Queries in the canonical (zipfian, seed 0) baseline workload.
BASELINE_QUERIES = 200

#: The canonical workload the answer digests are pinned over.
BASELINE_WORKLOAD = "zipfian"


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()[:16]


def compute_baseline(name: str, n: "int | None" = None, seed: int = 0) -> dict:
    """Recompute the baseline metrics for scenario *name* at size *n*.

    With the defaults (pinned size, seed 0) the result must equal
    ``PINNED_BASELINES[name]`` — that equality is the regression gate.
    """
    import repro
    from repro.core.topk_oracle import TopKOracle
    from repro.datasets.scenarios import get_scenario
    from repro.suffix.suffix_array import SuffixArray

    scenario = get_scenario(name)
    corpus = scenario.make(n, seed=seed)
    combined = scenario.combined_view(corpus)
    source = scenario.workload_source(corpus)

    k = scenario.default_k(n)
    oracle = TopKOracle(SuffixArray(source.codes))
    mined = oracle.top_k(k)
    patterns = scenario.build_workload(
        corpus, BASELINE_WORKLOAD, BASELINE_QUERIES, seed=seed, oracle=oracle
    )

    backend = "collection" if scenario.kind == "collection" else "usi"
    index = repro.build(corpus, backend=backend, k=k)
    counts = [int(c) for c in index.count_batch(patterns)]
    answers = [float(v) for v in index.query_batch(patterns)]

    return {
        "n": combined.length,
        "k": k,
        "corpus_sha256": _digest(
            combined.codes.astype(np.int64).tobytes()
            + combined.utilities.tobytes()
        ),
        "workload_sha256": _digest(
            b"|".join(p.astype(np.int64).tobytes() for p in patterns)
        ),
        "topk_checksum": _digest(
            " ".join(f"{m.frequency}:{m.length}" for m in mined).encode()
        ),
        "counts_sha256": _digest(
            np.asarray(counts, dtype=np.int64).tobytes()
        ),
        "answers_sum": float(np.sum(answers)),
        "utility_sum": float(combined.utilities.sum()),
    }


def verify_baseline(
    name: str, computed: "dict | None" = None, rtol: float = 1e-9
) -> list[str]:
    """Mismatches between the recomputed and pinned baseline (empty = ok)."""
    pinned = PINNED_BASELINES.get(name)
    if pinned is None:
        raise ParameterError(
            f"scenario {name!r} has no pinned baseline; re-pin with "
            "`python -m repro.datasets.baselines`"
        )
    if computed is None:
        computed = compute_baseline(name)
    mismatches = []
    for key, expected in pinned.items():
        actual = computed.get(key)
        if isinstance(expected, float):
            ok = actual is not None and np.isclose(actual, expected, rtol=rtol)
        else:
            ok = actual == expected
        if not ok:
            mismatches.append(f"{name}.{key}: pinned {expected!r}, got {actual!r}")
    return mismatches


def _render_pins() -> str:
    """Recompute every scenario's baseline as source text (re-pin aid)."""
    from repro.datasets.scenarios import available_scenarios

    lines = ["PINNED_BASELINES: dict[str, dict] = {"]
    for name in available_scenarios():
        baseline = compute_baseline(name)
        lines.append(f"    {name!r}: {{")
        for key, value in baseline.items():
            lines.append(f"        {key!r}: {value!r},")
        lines.append("    },")
    lines.append("}")
    return "\n".join(lines)


#: The committed pins (regenerate with ``python -m repro.datasets.baselines``).
PINNED_BASELINES: dict[str, dict] = {
    'ad_sequencing': {
        'n': 20000,
        'k': 555,
        'corpus_sha256': 'ad67632fdc2eae22',
        'workload_sha256': 'dd7fbf6bd02a7e16',
        'topk_checksum': '6ac5245907ce5aca',
        'counts_sha256': '549b00be8e0da5c5',
        'answers_sum': 38808.53914230167,
        'utility_sum': 1920.0146998033454,
    },
    'dna_quality': {
        'n': 20000,
        'k': 400,
        'corpus_sha256': 'b5ca36d067550ff8',
        'workload_sha256': '6deb2a160301278c',
        'topk_checksum': 'a3c6739f7b803a9d',
        'counts_sha256': 'b2ffa5157b2e47ec',
        'answers_sum': 589430.8394983541,
        'utility_sum': 16840.82885132319,
    },
    'iot_link_quality': {
        'n': 12000,
        'k': 200,
        'corpus_sha256': '3d1bbe4b82479c08',
        'workload_sha256': 'a0b5d7a854527eda',
        'topk_checksum': 'dc23f9612ad156ce',
        'counts_sha256': '4d605691de9d790f',
        'answers_sum': 1971996.5016146041,
        'utility_sum': 6327.061958162691,
    },
    'pathological': {
        'n': 8000,
        'k': 100,
        'corpus_sha256': '1976e551971021ce',
        'workload_sha256': '572b6fdf53878621',
        'topk_checksum': '521119682939e3cf',
        'counts_sha256': '4aa50a55d50200ee',
        'answers_sum': 8245350.649999826,
        'utility_sum': 6796.200000000001,
    },
    'read_collection': {
        'n': 9059,
        'k': 180,
        'corpus_sha256': 'b20d87d61eb02fc7',
        'workload_sha256': '56995b5db37c0421',
        'topk_checksum': '30b329559fb18d03',
        'counts_sha256': '0fc740f1f1053bf3',
        'answers_sum': 395919.59579666436,
        'utility_sum': 7996.413834721061,
    },
    'table2_hum': {
        'n': 8000,
        'k': 80,
        'corpus_sha256': '0c80b9d56a59493e',
        'workload_sha256': 'd729e743d443856a',
        'topk_checksum': '9cf854cdf28acdfc',
        'counts_sha256': 'e0872f9be8085403',
        'answers_sum': 248546.44999999573,
        'utility_sum': 6790.650000000001,
    },
    'table2_xml': {
        'n': 8000,
        'k': 80,
        'corpus_sha256': '138f825af5c8003c',
        'workload_sha256': 'e08ccafb1899d2e1',
        'topk_checksum': '20a9835ce7e0f626',
        'counts_sha256': 'f08e0256421cbf3b',
        'answers_sum': 110134.69999999748,
        'utility_sum': 6789.6,
    },
    'web_analytics': {
        'n': 15000,
        'k': 150,
        'corpus_sha256': '84c087af5e89d7b5',
        'workload_sha256': '07c7c61934d826af',
        'topk_checksum': 'd3d4449ed94e91f7',
        'counts_sha256': 'ced65043fc4e4ebe',
        'answers_sum': 6043788.951148261,
        'utility_sum': 307168.62185740744,
    },
}


if __name__ == "__main__":
    print(_render_pins())
