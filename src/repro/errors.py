"""Exception hierarchy for the USI reproduction library.

Every error raised deliberately by this package derives from
:class:`ReproError`, so callers can catch library failures without
swallowing unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class AlphabetError(ReproError):
    """A letter is outside the alphabet, or an alphabet is malformed."""


class WeightedStringError(ReproError):
    """The text and its utility array disagree (length, dtype, values)."""


class PatternError(ReproError):
    """A query pattern is empty, too long, or cannot be encoded."""


class ParameterError(ReproError):
    """A construction parameter (K, tau, s, ...) is out of range."""


class ConstructionError(ReproError):
    """An index could not be constructed from the given inputs."""


class NotBuiltError(ReproError):
    """An operation requires a structure that has not been built yet."""


class IndexLoadError(ReproError):
    """A registered index failed to load from its backing file.

    Transient from the serving stack's point of view (the file may
    reappear, the disk may recover); front-ends answer 503 +
    ``Retry-After`` rather than 500.
    """
