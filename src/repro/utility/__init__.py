"""Utility functions: local (sliding-window) and global aggregators."""

from repro.utility.functions import (
    GlobalUtility,
    LocalUtility,
    PrefixSumLocalUtility,
    ProductLocalUtility,
    RangeMaxLocalUtility,
    RangeMinLocalUtility,
    make_global_utility,
    make_local_utility,
)
from repro.utility.prefix_sums import PswArray

__all__ = [
    "GlobalUtility",
    "LocalUtility",
    "PrefixSumLocalUtility",
    "ProductLocalUtility",
    "PswArray",
    "RangeMaxLocalUtility",
    "RangeMinLocalUtility",
    "make_global_utility",
    "make_local_utility",
]
