"""Local and global utility functions (the class ``U`` of Section III).

A *local* utility function aggregates the position utilities of one
occurrence (fragment); a *global* utility function aggregates the
local utilities of all occurrences.  The paper's class ``U`` requires
the local function to have the sliding-window property (sum does) and
the global aggregator to be linear-time computable (sum, min, max,
avg).

:class:`GlobalUtility` bundles the two together with:

* ``identity`` — the value reported for patterns with no occurrences;
* scalar aggregation (query-path, one occurrence at a time);
* vectorised aggregation over a numpy array of local utilities
  (construction-path and SA-query batch path).

The RMQ-backed ``min``/``max`` *local* utilities are an extension
beyond the paper's sliding-window requirement: they are not
sliding-window but still O(1) per fragment, so the USI machinery works
with them unchanged.
"""

from __future__ import annotations

from typing import Callable, Literal, Protocol, Sequence

import numpy as np

from repro.errors import ParameterError
from repro.suffix.rmq import SparseTableRmq
from repro.utility.prefix_sums import PswArray

AggregatorName = Literal["sum", "min", "max", "avg"]


class LocalUtility(Protocol):
    """O(1)-per-fragment local utility over a fixed weight array."""

    def local_utility(self, i: int, length: int) -> float:  # pragma: no cover
        ...

    def local_utilities(self, positions: np.ndarray, length: int) -> np.ndarray:  # pragma: no cover
        ...


class PrefixSumLocalUtility(PswArray):
    """The canonical sliding-window local utility: the sum.

    Identical to :class:`PswArray`; the alias exists so call sites can
    speak the paper's vocabulary.
    """


class ProductLocalUtility:
    """Local utility = product of position utilities (expected frequency).

    The paper's bioinformatics motivation: with per-base correctness
    probabilities ``w``, the *expected frequency* of a pattern is the
    sum over occurrences of the product of probabilities — "sum of
    products".  Products of a fragment have the sliding-window
    property in log space, so ``PSW`` becomes prefix sums of
    ``log w`` and every fragment product is one ``exp`` away.

    Requires strictly positive utilities.
    """

    def __init__(self, utilities: "Sequence[float] | np.ndarray") -> None:
        w = np.asarray(utilities, dtype=np.float64)
        if w.ndim != 1 or len(w) == 0:
            raise ParameterError("product utilities require a non-empty 1-D array")
        if not np.all(w > 0):
            raise ParameterError(
                "product local utilities require strictly positive weights"
            )
        self._log_psw = np.concatenate(([0.0], np.cumsum(np.log(w))))

    @property
    def length(self) -> int:
        return len(self._log_psw) - 1

    def local_utility(self, i: int, length: int) -> float:
        """``u(i, length) = w[i] * ... * w[i + length - 1]``."""
        if length <= 0 or i < 0 or i + length > self.length:
            raise ParameterError(
                f"fragment ({i}, {length}) out of range for n={self.length}"
            )
        return float(np.exp(self._log_psw[i + length] - self._log_psw[i]))

    def local_utilities(self, positions: np.ndarray, length: int) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size and (
            int(positions.min()) < 0 or int(positions.max()) + length > self.length
        ):
            raise ParameterError("fragment positions out of range")
        return np.exp(self._log_psw[positions + length] - self._log_psw[positions])

    def nbytes(self) -> int:
        return int(self._log_psw.nbytes)


LocalUtilityName = Literal["sum", "product", "min", "max"]


def make_local_utility(
    name: LocalUtilityName, utilities: "Sequence[float] | np.ndarray"
) -> LocalUtility:
    """Instantiate a local utility function by name.

    The instance is tagged with ``local_name`` so persisted indexes can
    record which local function they were built with.
    """
    classes = {
        "sum": PrefixSumLocalUtility,
        "product": ProductLocalUtility,
        "min": RangeMinLocalUtility,
        "max": RangeMaxLocalUtility,
    }
    if name not in classes:
        raise ParameterError(f"unknown local utility {name!r}")
    instance = classes[name](utilities)
    instance.local_name = name  # type: ignore[attr-defined]
    return instance


class _RangeLocalUtility:
    """Shared machinery for RMQ-backed min/max local utilities."""

    def __init__(self, utilities: "Sequence[float] | np.ndarray", maximum: bool) -> None:
        w = np.asarray(utilities, dtype=np.float64)
        if w.ndim != 1 or len(w) == 0:
            raise ParameterError("range utilities require a non-empty 1-D array")
        self._w = w
        self._rmq = SparseTableRmq(w, maximum=maximum)

    @property
    def length(self) -> int:
        return len(self._w)

    def local_utility(self, i: int, length: int) -> float:
        if length <= 0 or i < 0 or i + length > len(self._w):
            raise ParameterError(
                f"fragment ({i}, {length}) out of range for n={len(self._w)}"
            )
        return float(self._rmq.query(i, i + length - 1))

    def local_utilities(self, positions: np.ndarray, length: int) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.int64)
        return np.asarray(
            [self.local_utility(int(p), length) for p in positions],
            dtype=np.float64,
        )

    def nbytes(self) -> int:
        return int(self._w.nbytes)


class RangeMinLocalUtility(_RangeLocalUtility):
    """Local utility = min position utility in the fragment."""

    def __init__(self, utilities: "Sequence[float] | np.ndarray") -> None:
        super().__init__(utilities, maximum=False)


class RangeMaxLocalUtility(_RangeLocalUtility):
    """Local utility = max position utility in the fragment."""

    def __init__(self, utilities: "Sequence[float] | np.ndarray") -> None:
        super().__init__(utilities, maximum=True)


class GlobalUtility:
    """A global aggregator from the paper's class ``U``.

    Parameters
    ----------
    name:
        One of ``"sum"``, ``"min"``, ``"max"``, ``"avg"``.  The paper's
        experiments use the commonly-used "sum of sums".
    """

    def __init__(self, name: AggregatorName = "sum") -> None:
        if name not in ("sum", "min", "max", "avg"):
            raise ParameterError(f"unknown global aggregator {name!r}")
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    @property
    def identity(self) -> float:
        """Value reported for a pattern with zero occurrences.

        The paper defines ``u = 0`` outside valid fragments and sums
        over an empty set for absent patterns, so every aggregator
        reports 0.0 for no occurrences.
        """
        return 0.0

    def aggregate(self, local_utilities: np.ndarray) -> float:
        """Fold a batch of local utilities into the global utility."""
        values = np.asarray(local_utilities, dtype=np.float64)
        if values.size == 0:
            return self.identity
        if self._name == "sum":
            return float(values.sum())
        if self._name == "min":
            return float(values.min())
        if self._name == "max":
            return float(values.max())
        return float(values.mean())

    def grouped_aggregate(self, group_index: np.ndarray, values: np.ndarray,
                          group_count: int) -> np.ndarray:
        """Aggregate *values* per group — the construction-phase kernel.

        ``group_index[k]`` says which group ``values[k]`` belongs to
        (e.g. which distinct fingerprint); returns one aggregated value
        per group.  Vectorised with ``bincount`` / ``ufunc.at``.
        """
        values = np.asarray(values, dtype=np.float64)
        if self._name in ("sum", "avg"):
            sums = np.bincount(group_index, weights=values, minlength=group_count)
            if self._name == "sum":
                return sums
            counts = np.bincount(group_index, minlength=group_count)
            with np.errstate(invalid="ignore"):
                return np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
        if self._name == "min":
            out = np.full(group_count, np.inf)
            np.minimum.at(out, group_index, values)
            return out
        out = np.full(group_count, -np.inf)
        np.maximum.at(out, group_index, values)
        return out

    # ------------------------------------------------------------------
    # Mergeable running state (used by the dynamic index and streaming)
    # ------------------------------------------------------------------
    def fresh_state(self) -> tuple[float, int]:
        """An empty running-aggregate state ``(accumulator, count)``."""
        if self._name == "min":
            return (np.inf, 0)
        if self._name == "max":
            return (-np.inf, 0)
        return (0.0, 0)

    def push(self, state: tuple[float, int], value: float) -> tuple[float, int]:
        """Fold one local utility into a running state."""
        acc, count = state
        if self._name == "min":
            return (min(acc, value), count + 1)
        if self._name == "max":
            return (max(acc, value), count + 1)
        return (acc + value, count + 1)

    def finalize(self, state: tuple[float, int]) -> float:
        """Extract the global utility from a running state."""
        acc, count = state
        if count == 0:
            return self.identity
        if self._name == "avg":
            return acc / count
        return float(acc)


def make_global_utility(name: "AggregatorName | GlobalUtility") -> GlobalUtility:
    """Coerce a name or instance into a :class:`GlobalUtility`."""
    if isinstance(name, GlobalUtility):
        return name
    return GlobalUtility(name)


def merge_partial_answers(
    aggregator: "AggregatorName | GlobalUtility",
    values: Sequence[float],
    counts: Sequence[int],
) -> float:
    """Fold disjoint partial answers ``(U_i, |occ_i|)`` into one global one.

    When a text is split so that no occurrence spans two parts (the
    document-aligned sharding invariant, or the prefix/tail split of
    the dynamic index), the occurrence multiset is the disjoint union
    of the per-part multisets and every class-``U`` aggregator merges
    exactly from per-part ``(value, count)`` pairs:

    * ``sum``    — the sum of part sums;
    * ``min``/``max`` — the min/max over parts with >= 1 occurrence;
    * ``avg``    — part averages recombined with part counts as
      weights (the only merge that re-divides, so it is exact up to
      one extra float rounding).

    Parts with ``count == 0`` contribute nothing (their ``value`` is
    the identity placeholder and must not poison a min/max).
    """
    aggregator = make_global_utility(aggregator)
    occupied = [(v, c) for v, c in zip(values, counts) if c > 0]
    if not occupied:
        return aggregator.identity
    name = aggregator.name
    if name == "min":
        return float(min(v for v, _ in occupied))
    if name == "max":
        return float(max(v for v, _ in occupied))
    if name == "avg":
        total = sum(c for _, c in occupied)
        return float(sum(v * c for v, c in occupied) / total)
    return float(sum(v for v, _ in occupied))
