"""The PSW array: prefix sums of position utilities.

``PSW[i] = u(0, i + 1)`` stores the local utility of every prefix of
``S`` (Section IV).  With the sum local-utility function this is a
plain cumulative sum, and the local utility of any fragment comes from
two lookups:

    u(i, l) = PSW[i + l - 1] - PSW[i - 1]        (PSW[-1] := 0)

The class also exposes a vectorised batch form used by the USI
construction's sliding-window phase and by the suffix-array query
path, which aggregate thousands of occurrences at once.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ParameterError


class PswArray:
    """Prefix-sum local utilities over a weight array ``w``.

    Supports O(1) fragment utilities and O(1) *appends* (needed by the
    dynamic USI of Section X), while keeping a vectorised numpy view
    for batch queries.
    """

    def __init__(self, utilities: "Sequence[float] | np.ndarray") -> None:
        w = np.asarray(utilities, dtype=np.float64)
        if w.ndim != 1 or len(w) == 0:
            raise ParameterError("PSW requires a non-empty 1-D utility array")
        # _psw[0] = 0 and _psw[i] = w[0] + ... + w[i-1]: the shift-by-one
        # removes the i = 0 special case from every lookup.
        self._psw = np.concatenate(([0.0], np.cumsum(w)))
        self._appended: list[float] = []

    def _flush(self) -> None:
        """Fold buffered appends into the numpy array."""
        if self._appended:
            base = self._psw[-1]
            extra = base + np.cumsum(np.asarray(self._appended, dtype=np.float64))
            self._psw = np.concatenate((self._psw, extra))
            self._appended.clear()

    @property
    def length(self) -> int:
        """Number of text positions covered."""
        return len(self._psw) - 1 + len(self._appended)

    def append(self, utility: float) -> None:
        """Extend by one position (dynamic USI letter append)."""
        self._appended.append(float(utility))

    def local_utility(self, i: int, length: int) -> float:
        """``u(i, length)``: sum of ``w[i .. i + length - 1]``."""
        if length <= 0 or i < 0 or i + length > self.length:
            raise ParameterError(
                f"fragment ({i}, {length}) out of range for n={self.length}"
            )
        self._flush()
        return float(self._psw[i + length] - self._psw[i])

    def local_utilities(self, positions: np.ndarray, length: int) -> np.ndarray:
        """Vectorised ``u(i, length)`` for many start positions."""
        self._flush()
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size and (
            int(positions.min()) < 0 or int(positions.max()) + length > self.length
        ):
            raise ParameterError("fragment positions out of range")
        return self._psw[positions + length] - self._psw[positions]

    def prefix_utility(self, i: int) -> float:
        """``PSW[i] = u(0, i + 1)`` in the paper's indexing."""
        self._flush()
        return float(self._psw[i + 1])

    def nbytes(self) -> int:
        self._flush()
        return int(self._psw.nbytes)
