"""Integer alphabets and text encoding.

The paper assumes an integer alphabet ``Sigma = [0, sigma)`` with
``sigma = n^O(1)``.  This module maps user-facing texts (``str``,
``bytes``, or integer sequences) onto that canonical form, so every
index in the library operates on a ``numpy.int32`` code array.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import AlphabetError, PatternError

TextLike = "str | bytes | Sequence[int] | np.ndarray"


class Alphabet:
    """A bijection between user letters and codes ``0 .. sigma - 1``.

    Letters are arbitrary hashable symbols (usually 1-char strings or
    ints).  Codes are assigned in sorted order of first appearance so
    that lexicographic order of encoded texts matches the natural
    order of the letters.

    Parameters
    ----------
    letters:
        The full set of letters the alphabet must cover.  Duplicates
        are ignored.  Letters must be mutually comparable (all ``str``
        or all ``int``).
    """

    def __init__(self, letters: Iterable) -> None:
        unique = sorted(set(letters))
        if not unique:
            raise AlphabetError("an alphabet needs at least one letter")
        self._letters: list = unique
        self._code_of: dict = {letter: code for code, letter in enumerate(unique)}

    @classmethod
    def from_text(cls, text: "str | bytes | Sequence[int]") -> "Alphabet":
        """Build the alphabet of exactly the letters occurring in *text*."""
        if isinstance(text, (bytes, bytearray)):
            return cls(bytes(text))
        return cls(text)

    @classmethod
    def dna(cls) -> "Alphabet":
        """The 4-letter DNA alphabet used by the HUM/ECOLI datasets."""
        return cls("ACGT")

    @property
    def size(self) -> int:
        """Number of letters, i.e. ``sigma``."""
        return len(self._letters)

    @property
    def letters(self) -> list:
        """Letters in code order (a copy; the alphabet is immutable)."""
        return list(self._letters)

    def __len__(self) -> int:
        return self.size

    def __contains__(self, letter) -> bool:
        return letter in self._code_of

    def __eq__(self, other) -> bool:
        return isinstance(other, Alphabet) and self._letters == other._letters

    def __repr__(self) -> str:
        preview = "".join(map(str, self._letters[:8]))
        suffix = "..." if self.size > 8 else ""
        return f"Alphabet(size={self.size}, letters={preview!r}{suffix})"

    def code(self, letter) -> int:
        """Return the integer code of *letter*.

        Raises :class:`AlphabetError` for unknown letters.
        """
        try:
            return self._code_of[letter]
        except KeyError:
            raise AlphabetError(f"letter {letter!r} is not in the alphabet") from None

    def letter(self, code: int):
        """Return the letter with integer *code*."""
        if not 0 <= code < self.size:
            raise AlphabetError(f"code {code} out of range [0, {self.size})")
        return self._letters[code]

    def encode(self, text: "str | bytes | Sequence[int]") -> np.ndarray:
        """Encode *text* into an ``int32`` code array.

        Unknown letters raise :class:`AlphabetError`.
        """
        if isinstance(text, (bytes, bytearray)):
            text = bytes(text)
        try:
            return np.fromiter(
                (self._code_of[letter] for letter in text),
                dtype=np.int32,
                count=len(text),
            )
        except KeyError as exc:
            raise AlphabetError(f"letter {exc.args[0]!r} is not in the alphabet") from None

    def encode_pattern(self, pattern: "str | bytes | Sequence[int]") -> np.ndarray:
        """Encode a query pattern; empty patterns raise :class:`PatternError`.

        A pattern containing a letter absent from the alphabet cannot
        occur in any text over this alphabet, which callers treat as
        "zero occurrences" rather than an error; such patterns raise
        :class:`AlphabetError` and callers map that to an empty match.
        """
        if len(pattern) == 0:
            raise PatternError("query patterns must be non-empty")
        return self.encode(pattern)

    def try_encode_pattern(self, pattern: TextLike) -> "np.ndarray | None":
        """:meth:`encode_pattern` with ``None`` for unencodable patterns.

        The shared query-side coercion: ``np.ndarray`` input passes
        through as ``int64`` codes (already encoded), empty patterns
        raise :class:`PatternError`, and a pattern using letters
        outside the alphabet — which cannot occur in any text over it
        — returns ``None`` so callers report the no-occurrence answer.
        """
        if isinstance(pattern, np.ndarray):
            if len(pattern) == 0:
                raise PatternError("query patterns must be non-empty")
            return pattern.astype(np.int64, copy=False)
        try:
            return self.encode_pattern(pattern).astype(np.int64)
        except AlphabetError:
            return None

    def decode(self, codes: "Sequence[int] | np.ndarray") -> str:
        """Decode a code array back into a string.

        Integer-letter alphabets are decoded by joining ``str`` forms,
        which is primarily useful for debugging and reports.
        """
        return "".join(str(self._letters[int(code)]) for code in codes)


def as_code_array(text: "str | bytes | Sequence[int] | np.ndarray",
                  alphabet: "Alphabet | None" = None) -> tuple[np.ndarray, Alphabet]:
    """Normalise *text* to ``(codes, alphabet)``.

    If *alphabet* is ``None`` one is inferred from the text itself.
    ``numpy`` integer arrays are validated to be non-negative and then
    used as codes directly, with an identity alphabet over
    ``[0, max_code]``.
    """
    if isinstance(text, np.ndarray):
        if text.ndim != 1 or not np.issubdtype(text.dtype, np.integer):
            raise AlphabetError("ndarray texts must be 1-D integer arrays")
        if text.size and int(text.min()) < 0:
            raise AlphabetError("ndarray texts must contain non-negative codes")
        if alphabet is None:
            top = int(text.max()) + 1 if text.size else 1
            alphabet = Alphabet(range(top))
        return text.astype(np.int32, copy=False), alphabet
    if alphabet is None:
        alphabet = Alphabet.from_text(text)
    return alphabet.encode(text), alphabet
