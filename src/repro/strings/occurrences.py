"""Naive string primitives used as test oracles.

Everything here is deliberately simple and quadratic-ish: these
functions define *correct* answers against which the real indexes are
checked, both in unit tests and in hypothesis property tests.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

import numpy as np


def _as_tuple(text: "str | Sequence[int] | np.ndarray") -> tuple:
    if isinstance(text, np.ndarray):
        return tuple(int(c) for c in text)
    if isinstance(text, str):
        return tuple(text)
    return tuple(text)


def naive_occurrences(
    text: "str | Sequence[int] | np.ndarray",
    pattern: "str | Sequence[int] | np.ndarray",
) -> list[int]:
    """All starting positions of *pattern* in *text*, by direct scan."""
    t = _as_tuple(text)
    p = _as_tuple(pattern)
    m = len(p)
    if m == 0 or m > len(t):
        return []
    return [i for i in range(len(t) - m + 1) if t[i : i + m] == p]


def naive_substring_frequencies(
    text: "str | Sequence[int] | np.ndarray",
    max_length: "int | None" = None,
) -> Counter:
    """Frequency of every distinct substring of *text* (up to *max_length*).

    Returns a :class:`collections.Counter` mapping substring tuples to
    their number of occurrences.  Quadratic in ``len(text)``; intended
    for texts of at most a few thousand letters.
    """
    t = _as_tuple(text)
    n = len(t)
    limit = n if max_length is None else min(max_length, n)
    counts: Counter = Counter()
    for i in range(n):
        for j in range(i + 1, min(i + limit, n) + 1):
            counts[t[i:j]] += 1
    return counts


def all_distinct_substrings(
    text: "str | Sequence[int] | np.ndarray",
    max_length: "int | None" = None,
) -> set:
    """The set of distinct substrings of *text* as tuples."""
    return set(naive_substring_frequencies(text, max_length))


def naive_top_k_frequent(
    text: "str | Sequence[int] | np.ndarray",
    k: int,
) -> list[tuple[tuple, int]]:
    """Exact top-K frequent substrings by brute force.

    Ties are broken as in the paper's oracle: by frequency descending,
    then by substring length ascending, then lexicographically (the
    final key only pins down a deterministic order for tests; the
    paper allows arbitrary tie-breaking).
    """
    counts = naive_substring_frequencies(text)
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], len(kv[0]), kv[0]))
    return ranked[:k]


def tie_threshold_frequency(
    text: "str | Sequence[int] | np.ndarray",
    k: int,
) -> int:
    """``tau_K``: the smallest frequency among the true top-K substrings.

    Any tie-consistent top-K algorithm must report substrings whose
    frequencies are at least this value.
    """
    ranked = naive_top_k_frequent(text, k)
    if not ranked:
        return 0
    return ranked[-1][1]
