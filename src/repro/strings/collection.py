"""Weighted string collections.

The paper's bioinformatics motivation speaks of "a collection of DNA
strings with confidence scores".  A :class:`WeightedStringCollection`
turns a set of weighted documents into one indexable weighted string
by concatenating them around a fresh separator letter: patterns over
the original alphabet can never span a separator, so occurrence sets
(and therefore global utilities) are exactly the per-document ones
summed — no index change needed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ParameterError, WeightedStringError
from repro.strings.alphabet import Alphabet
from repro.strings.weighted import WeightedString


class WeightedStringCollection:
    """Documents ``(S_1, w_1) .. (S_d, w_d)`` over a shared alphabet.

    Parameters
    ----------
    documents:
        The weighted documents.  All must use equal alphabets.
    """

    def __init__(self, documents: Sequence[WeightedString]) -> None:
        if not documents:
            raise ParameterError("a collection needs at least one document")
        alphabet = documents[0].alphabet
        for doc in documents[1:]:
            if doc.alphabet != alphabet:
                raise WeightedStringError(
                    "all documents in a collection must share one alphabet"
                )
        self._documents = list(documents)
        self._alphabet = alphabet
        self._separator = alphabet.size  # a fresh letter code

        codes_parts: list[np.ndarray] = []
        utility_parts: list[np.ndarray] = []
        boundaries: list[int] = []  # start of each document in the text
        offset = 0
        separator_codes = np.asarray([self._separator], dtype=np.int32)
        # Separators never fall inside a matched window (patterns over
        # the original alphabet cannot contain the separator letter),
        # so their utility is never read; 1.0 keeps every local-utility
        # implementation happy, including the strictly-positive product.
        separator_utility = np.asarray([1.0])
        for index, doc in enumerate(self._documents):
            boundaries.append(offset)
            codes_parts.append(doc.codes)
            utility_parts.append(doc.utilities)
            offset += doc.length
            if index != len(self._documents) - 1:
                codes_parts.append(separator_codes)
                utility_parts.append(separator_utility)
                offset += 1
        self._boundaries = np.asarray(boundaries, dtype=np.int64)
        # The combined text uses an extended alphabet with the separator
        # as its largest letter; queries still encode through the
        # original alphabet, so they can never contain it.
        extended = Alphabet(list(range(alphabet.size + 1)))
        self._combined = WeightedString(
            np.concatenate(codes_parts),
            np.concatenate(utility_parts),
            extended,
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def document_count(self) -> int:
        return len(self._documents)

    @property
    def documents(self) -> list[WeightedString]:
        return list(self._documents)

    @property
    def alphabet(self) -> Alphabet:
        """The *original* (per-document) alphabet."""
        return self._alphabet

    @property
    def combined(self) -> WeightedString:
        """The separator-joined weighted string, ready for indexing."""
        return self._combined

    def encode_pattern(self, pattern: "str | bytes | Sequence[int] | np.ndarray") -> np.ndarray:
        """Encode a pattern through the original alphabet."""
        if isinstance(pattern, np.ndarray):
            return pattern.astype(np.int64, copy=False)
        return self._alphabet.encode_pattern(pattern).astype(np.int64)

    def document_of(self, position: int) -> int:
        """Which document the combined-text *position* belongs to."""
        if not 0 <= position < self._combined.length:
            raise ParameterError(f"position {position} out of range")
        return int(np.searchsorted(self._boundaries, position, side="right") - 1)


class CollectionUsiIndex:
    """USI over a collection: global utilities plus document statistics.

    Builds one :class:`~repro.core.usi.UsiIndex` over the combined
    string.  ``query`` returns the collection-wide global utility;
    ``document_frequency`` reports in how many documents a pattern
    occurs (the IR-style df, useful for the expected-frequency
    use case).
    """

    def __init__(self, collection: WeightedStringCollection, **build_kwargs) -> None:
        from repro.core.usi import UsiIndex  # local import: avoid a cycle

        self._collection = collection
        self._index = UsiIndex.build(collection.combined, **build_kwargs)

    @property
    def collection(self) -> WeightedStringCollection:
        return self._collection

    @property
    def index(self):
        """The underlying combined-string USI index."""
        return self._index

    def _encode(self, pattern) -> "np.ndarray | None":
        try:
            return self._collection.encode_pattern(pattern)
        except Exception:
            return None

    def query(self, pattern: "str | bytes | Sequence[int] | np.ndarray") -> float:
        """The global utility of *pattern* across all documents."""
        codes = self._encode(pattern)
        if codes is None:
            return self._index.utility.identity
        return self._index.query(codes)

    def query_batch(self, patterns: "Sequence") -> list[float]:
        """Batch query: encodes through the original alphabet, then
        delegates to the combined index's vectorised batch path.

        Answers are identical to calling :meth:`query` per pattern.
        """
        encoded = [self._encode(pattern) for pattern in patterns]
        results = [self._index.utility.identity] * len(patterns)
        slots = [i for i, codes in enumerate(encoded) if codes is not None]
        if slots:
            answers = self._index.query_batch([encoded[i] for i in slots])
            for slot, value in zip(slots, answers):
                results[slot] = float(value)
        return results

    def count(self, pattern: "str | bytes | Sequence[int] | np.ndarray") -> int:
        """Total occurrences across the collection."""
        codes = self._encode(pattern)
        if codes is None:
            return 0
        return self._index.count(codes)

    def document_frequency(self, pattern: "str | bytes | Sequence[int] | np.ndarray") -> int:
        """Number of documents containing at least one occurrence."""
        codes = self._encode(pattern)
        if codes is None:
            return 0
        occurrences = self._index.suffix_array.occurrences(codes)
        if occurrences.size == 0:
            return 0
        docs = {
            self._collection.document_of(int(position))
            for position in occurrences
        }
        return len(docs)
