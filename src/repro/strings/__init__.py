"""String substrate: alphabets, weighted strings, naive oracles."""

from repro.strings.alphabet import Alphabet
from repro.strings.occurrences import (
    all_distinct_substrings,
    naive_occurrences,
    naive_substring_frequencies,
    naive_top_k_frequent,
)
from repro.strings.weighted import WeightedString

__all__ = [
    "Alphabet",
    "WeightedString",
    "all_distinct_substrings",
    "naive_occurrences",
    "naive_substring_frequencies",
    "naive_top_k_frequent",
]
