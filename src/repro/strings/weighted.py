"""Weighted strings: the pair ``(S, w)`` from the paper.

A :class:`WeightedString` couples a text with a per-position utility
array ``w`` (the weight function of Section III) and is the input to
every USI index in this library.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import WeightedStringError
from repro.strings.alphabet import Alphabet, as_code_array


class WeightedString:
    """An immutable text with one real-valued utility per position.

    Parameters
    ----------
    text:
        The text ``S`` as ``str``, ``bytes``, an integer sequence, or a
        pre-encoded integer ``numpy`` array.
    utilities:
        The weight function ``w`` as a length-``n`` sequence of finite
        real numbers; ``w[i]`` is the utility of ``S[i]``.
    alphabet:
        Optional explicit alphabet.  Inferred from the text when absent.

    Examples
    --------
    >>> ws = WeightedString("ATACCCC", [0.9, 1, 3, 2, 0.7, 1, 1])
    >>> ws.length
    7
    >>> ws.letter(0)
    'A'
    """

    def __init__(
        self,
        text: "str | bytes | Sequence[int] | np.ndarray",
        utilities: "Sequence[float] | np.ndarray",
        alphabet: "Alphabet | None" = None,
    ) -> None:
        if len(text) == 0:
            raise WeightedStringError("weighted strings must be non-empty")
        codes, alpha = as_code_array(text, alphabet)
        w = np.asarray(utilities, dtype=np.float64)
        if w.ndim != 1:
            raise WeightedStringError("utilities must be a 1-D array")
        if len(w) != len(codes):
            raise WeightedStringError(
                f"text has {len(codes)} positions but got {len(w)} utilities"
            )
        if not np.all(np.isfinite(w)):
            raise WeightedStringError("utilities must be finite numbers")
        self._codes = codes
        self._codes.setflags(write=False)
        self._utilities = w
        self._utilities.setflags(write=False)
        self._alphabet = alpha
        if isinstance(text, str):
            self._raw: "str | None" = text
        else:
            self._raw = None

    @classmethod
    def uniform(
        cls,
        text: "str | bytes | Sequence[int] | np.ndarray",
        utility: float = 1.0,
        alphabet: "Alphabet | None" = None,
    ) -> "WeightedString":
        """A weighted string whose every position has the same utility.

        With ``utility=1`` the "sum of sums" global utility of a
        pattern ``P`` equals ``|P| * |occ(P)|``, which is convenient in
        tests and examples.
        """
        codes, alpha = as_code_array(text, alphabet)
        return cls(codes, np.full(len(codes), float(utility)), alpha)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def codes(self) -> np.ndarray:
        """The text as a read-only ``int32`` code array."""
        return self._codes

    @property
    def utilities(self) -> np.ndarray:
        """The weight function ``w`` as a read-only ``float64`` array."""
        return self._utilities

    @property
    def alphabet(self) -> Alphabet:
        return self._alphabet

    @property
    def length(self) -> int:
        """``n``, the length of the text."""
        return len(self._codes)

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return (
            f"WeightedString(n={self.length}, sigma={self._alphabet.size})"
        )

    def letter(self, i: int):
        """The user-facing letter at position *i*."""
        return self._alphabet.letter(int(self._codes[i]))

    def text(self) -> str:
        """The text decoded back to a string (cached for ``str`` inputs)."""
        if self._raw is None:
            self._raw = self._alphabet.decode(self._codes)
        return self._raw

    # ------------------------------------------------------------------
    # Fragments
    # ------------------------------------------------------------------
    def fragment(self, i: int, length: int) -> np.ndarray:
        """``frag_S(i, length) = S[i .. i + length - 1]`` as codes."""
        if length <= 0 or i < 0 or i + length > self.length:
            raise WeightedStringError(
                f"fragment ({i}, {length}) out of range for n={self.length}"
            )
        return self._codes[i : i + length]

    def fragment_text(self, i: int, length: int) -> str:
        """``frag_S(i, length)`` decoded to a string."""
        return self._alphabet.decode(self.fragment(i, length))

    def fragment_utilities(self, i: int, length: int) -> np.ndarray:
        """The utilities ``w[i .. i + length - 1]`` of a fragment."""
        self.fragment(i, length)  # bounds check
        return self._utilities[i : i + length]

    def prefix_sums(self) -> np.ndarray:
        """Inclusive prefix sums of ``w`` (the raw material of ``PSW``)."""
        return np.cumsum(self._utilities)
