"""repro.kernel — the shared text-index substrate.

One :class:`TextKernel` per text: encoded codes, suffix array (+ lazy
LCP), position-utility prefix sums, and Karp-Rabin tables, built once
and injected into every backend (``repro.build(..., kernel=kernel)``),
plus the vectorised batch locate/aggregate path every backend's
``query_batch`` routes through.
"""

from repro.kernel.text_kernel import (
    TextKernel,
    add_build_listener,
    iter_length_buckets,
    record_kernel_builds,
    remove_build_listener,
)

__all__ = [
    "TextKernel",
    "add_build_listener",
    "iter_length_buckets",
    "record_kernel_builds",
    "remove_build_listener",
]
