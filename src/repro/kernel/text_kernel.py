"""The shared text-index substrate: build once, inject everywhere.

Every engine family in this library rests on the same four primitives
over one encoded text: the int64 code array, the suffix array (plus a
lazily built LCP), the position-utility prefix sums (``PSW``), and the
Karp-Rabin fingerprint tables.  Before this module each backend built
and owned private copies; a :class:`TextKernel` builds them exactly
once and is injected into every backend constructed over the same
text (``repro.build(..., kernel=kernel)``), so building ``usi`` +
``bsl1`` + ``fm`` from one kernel encodes the text a single time.

The kernel also owns the **vectorised batch query path**: pattern
batches are grouped by length, located with the suffix-array batch
kernel (:mod:`repro.suffix.batch`), and their occurrence utilities
gathered from ``PSW`` with one fancy-index + one grouped aggregation —
the NumPy-bound warm path behind every backend's ``query_batch``.

Construction is observable: :func:`record_kernel_builds` registers a
listener fed one event dict per substrate build, which is how the
``tests/kernel`` suite asserts the build-once discipline.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Sequence

import numpy as np

from repro.errors import ParameterError
from repro.hashing.karp_rabin import KarpRabinFingerprinter
from repro.profiling import record_stage
from repro.strings.weighted import WeightedString
from repro.suffix.suffix_array import SuffixArray
from repro.utility.functions import (
    GlobalUtility,
    LocalUtility,
    ProductLocalUtility,
    make_global_utility,
    make_local_utility,
)
from repro.utility.prefix_sums import PswArray

#: How many SA-order window-utility arrays one kernel caches for the
#: fused gather (each is one float64 per suffix, like a packed-key row).
_WINDOW_CACHE_LIMIT = 8

#: Listeners fed one dict per TextKernel substrate build/open.
_LISTENERS: "list[Callable[[dict], None]]" = []


def add_build_listener(listener: "Callable[[dict], None]") -> None:
    """Register *listener* to observe every kernel build (tests/metrics)."""
    _LISTENERS.append(listener)


def remove_build_listener(listener: "Callable[[dict], None]") -> None:
    _LISTENERS.remove(listener)


@contextmanager
def record_kernel_builds():
    """Collect kernel build events within a ``with`` block.

    Yields a list that receives one dict per :class:`TextKernel`
    created while the context is active: ``{"event": "build" | "open",
    "n": ..., "sa_algorithm": ...}``.  ``"build"`` events mark a full
    substrate construction (text encode + suffix array); ``"open"``
    marks a zero-construction rewrap of persisted parts.
    """
    events: list[dict] = []
    add_build_listener(events.append)
    try:
        yield events
    finally:
        remove_build_listener(events.append)


def _notify(event: dict) -> None:
    for listener in list(_LISTENERS):
        listener(event)


def iter_length_buckets(encoded: "Sequence[np.ndarray | None]"):
    """Yield ``(length, slots, matrix)`` per pattern-length bucket.

    The one bucketing implementation behind every vectorised batch
    path: ``None`` and empty entries are skipped (their slots keep the
    caller's default answer), the rest are grouped by length and
    stacked into one matrix per bucket, one pattern per row.
    """
    by_length: dict[int, list[int]] = {}
    for slot, codes in enumerate(encoded):
        if codes is not None and len(codes):
            by_length.setdefault(len(codes), []).append(slot)
    for length, slots in by_length.items():
        yield length, slots, np.vstack([encoded[slot] for slot in slots])


class TextKernel:
    """The build-once substrate for one weighted string.

    Parameters
    ----------
    ws:
        The weighted string (use :meth:`build` for the coercing entry
        point that also accepts text and collections).
    sa_algorithm:
        Suffix-array construction algorithm (``"doubling"``/``"sais"``).
    seed:
        Karp-Rabin fingerprint seed.

    The suffix array is built eagerly (it *is* the substrate); the
    fingerprint tables and each local-utility ``PSW`` variant are
    built lazily on first use and cached, so a kernel reopened from a
    memory-mapped container stays cheap until queried.
    """

    def __init__(
        self,
        ws: WeightedString,
        *,
        sa_algorithm: str = "doubling",
        seed: int = 0,
    ) -> None:
        self._ws = ws
        self._codes = np.asarray(ws.codes, dtype=np.int64)
        self._seed = int(seed)
        self._sa_algorithm = sa_algorithm
        t0 = time.perf_counter()
        self._suffix = SuffixArray(self._codes, algorithm=sa_algorithm, with_lcp=False)  # type: ignore[arg-type]
        self.build_seconds = time.perf_counter() - t0
        self._bases: "tuple[int, int] | None" = None
        self._fp: "KarpRabinFingerprinter | None" = None
        self._psw_cache: dict[str, LocalUtility] = {}
        self._window_cache: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self._window_seen: dict[tuple, int] = {}
        self._arange_buf: "np.ndarray | None" = None
        _notify({"event": "build", "n": ws.length, "sa_algorithm": sa_algorithm})

    @classmethod
    def build(
        cls,
        source,
        *,
        sa_algorithm: str = "doubling",
        seed: int = 0,
    ) -> "TextKernel":
        """Build a kernel over text, a weighted string, or a collection.

        Collections are indexed through their separator-joined
        ``combined`` string (the same text every collection backend
        indexes), so one kernel serves them too.
        """
        from repro.strings.collection import WeightedStringCollection

        if isinstance(source, WeightedStringCollection):
            source = source.combined
        elif isinstance(source, (str, bytes)):
            source = WeightedString.uniform(source)
        elif not isinstance(source, WeightedString):
            raise ParameterError(
                f"cannot build a TextKernel over {type(source).__name__}; "
                "expected text, a WeightedString, or a collection"
            )
        return cls(source, sa_algorithm=sa_algorithm, seed=seed)

    @classmethod
    def from_parts(
        cls,
        ws: WeightedString,
        sa: np.ndarray,
        *,
        bases: "tuple[int, int] | None" = None,
        seed: int = 0,
    ) -> "TextKernel":
        """Rewrap persisted substrate arrays without any construction.

        *sa* and the weighted string's codes are adopted as given —
        including their dtype, so memory-mapped int32 codes stay
        mapped instead of being copied up to int64; every substrate
        consumer handles either width.  *bases* restores the exact
        Karp-Rabin pair the substrate was fingerprinted with, so
        persisted hash tables keep matching.
        """
        kernel = cls.__new__(cls)
        kernel._ws = ws
        kernel._codes = np.asarray(ws.codes)
        kernel._seed = int(seed)
        kernel._sa_algorithm = "persisted"
        kernel._suffix = SuffixArray.from_parts(kernel._codes, np.asarray(sa))
        kernel.build_seconds = 0.0
        kernel._bases = tuple(int(b) for b in bases) if bases is not None else None
        kernel._fp = None
        kernel._psw_cache = {}
        kernel._window_cache = OrderedDict()
        kernel._window_seen = {}
        kernel._arange_buf = None
        _notify({"event": "open", "n": ws.length, "sa_algorithm": "persisted"})
        return kernel

    # Pickle: the fused-gather window cache and the scratch arange are
    # derived accelerators rebuilt on demand; drop them from the state.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_window_cache", None)
        state.pop("_window_seen", None)
        state.pop("_arange_buf", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._window_cache = OrderedDict()
        self._window_seen = {}
        self._arange_buf = None

    # ------------------------------------------------------------------
    # Substrate accessors
    # ------------------------------------------------------------------
    @property
    def ws(self) -> WeightedString:
        return self._ws

    @property
    def codes(self) -> np.ndarray:
        """The text as a shared int64 code array."""
        return self._codes

    @property
    def length(self) -> int:
        return len(self._codes)

    @property
    def suffix(self) -> SuffixArray:
        """The shared :class:`SuffixArray` (LCP built lazily on it)."""
        return self._suffix

    @property
    def sa_algorithm(self) -> str:
        return self._sa_algorithm

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def fingerprinter(self) -> KarpRabinFingerprinter:
        """The shared Karp-Rabin tables (built on first use)."""
        if self._fp is None:
            if self._bases is not None:
                self._fp = KarpRabinFingerprinter.with_bases(self._codes, *self._bases)
            else:
                self._fp = KarpRabinFingerprinter(self._codes, seed=self._seed)
                self._bases = self._fp.bases
        return self._fp

    def psw(self, local: str = "sum") -> LocalUtility:
        """The shared local-utility structure for *local* (cached)."""
        cached = self._psw_cache.get(local)
        if cached is None:
            cached = make_local_utility(local, self._ws.utilities)  # type: ignore[arg-type]
            self._psw_cache[local] = cached
        return cached

    def matches(self, ws: WeightedString) -> bool:
        """Whether this kernel's substrate covers *ws*.

        Both the codes *and* the utilities must agree — the kernel's
        ``PSW`` answers utility queries, so a same-text kernel with
        different weights would silently return wrong utilities.
        """
        if ws is self._ws:
            return True
        return (
            ws.length == len(self._codes)
            and bool(np.array_equal(np.asarray(ws.codes), self._codes))
            and bool(np.array_equal(ws.utilities, self._ws.utilities))
        )

    def require_match(self, ws: WeightedString) -> None:
        if not self.matches(ws):
            raise ParameterError(
                "the supplied TextKernel was built over a different "
                "weighted string (text or utilities differ); build one "
                "kernel per distinct weighted string"
            )

    # ------------------------------------------------------------------
    # Vectorised batch query path
    # ------------------------------------------------------------------
    def batch_intervals(self, matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """SA intervals of a batch of equal-length patterns (one per row)."""
        return self._suffix.interval_batch(matrix)

    def batch_utilities(
        self,
        encoded: "Sequence[np.ndarray | None]",
        utility: "str | GlobalUtility",
        *,
        psw: "LocalUtility | None" = None,
        local: str = "sum",
    ) -> list[float]:
        """Global utilities of many encoded patterns, vectorised.

        ``None`` entries (unencodable patterns) report the aggregator
        identity.  Patterns are bucketed by length; each bucket is one
        batch locate, one fancy-indexed ``PSW`` gather over *all*
        occurrences, and one grouped aggregation — the same occurrence
        sets and utilities as the scalar SA path, in input order (sums
        may differ from the scalar path in the last float ULP because
        the grouped aggregation accumulates in a different order).

        Hot buckets run **fused**: once a ``(local, length)`` pair has
        gathered about one text's worth of occurrences, the kernel
        caches the window utility of every suffix *in SA order* — then
        locate's interval ranks index that array directly, replacing
        the SA gather + two ``PSW`` gathers with a single fancy index.
        The cached values are the exact floats ``PSW`` produces and the
        grouped aggregation order is unchanged, so fused answers are
        bitwise identical to the unfused path.
        """
        utility = make_global_utility(utility)  # type: ignore[arg-type]
        if psw is None:
            psw = self.psw(local)
        out = np.full(len(encoded), utility.identity, dtype=np.float64)
        sa = self._suffix.sa
        for length, slots, matrix in iter_length_buckets(encoded):
            lb, rb = self._suffix.interval_batch(matrix)
            t0 = time.perf_counter()
            counts = np.maximum(rb - lb + 1, 0)
            total = int(counts.sum())
            if total == 0:
                record_stage("gather", time.perf_counter() - t0)
                continue
            row_ids = np.repeat(np.arange(len(slots)), counts)
            starts = np.cumsum(counts) - counts
            ranks = self._scratch_arange(total) - np.repeat(starts - lb, counts)
            window = self._window_locals(psw, length, total)
            if window is not None:
                locals_ = window[ranks]
            else:
                locals_ = psw.local_utilities(sa[ranks], length)
            values = utility.grouped_aggregate(row_ids, locals_, len(slots))
            occupied = np.flatnonzero(counts > 0)
            out[np.asarray(slots, dtype=np.int64)[occupied]] = values[occupied]
            record_stage("gather", time.perf_counter() - t0)
        return out.tolist()

    def _scratch_arange(self, total: int) -> np.ndarray:
        """A read-only ``arange`` slice reused across batches (grow-only).

        Callers only read the slice (arithmetic on it allocates fresh
        output arrays), so sharing one buffer across concurrent batch
        queries is safe; a resize swaps in a new array, never mutates.
        """
        buf = self._arange_buf
        if buf is None or len(buf) < total:
            buf = np.arange(max(total, 4096), dtype=np.int64)
            self._arange_buf = buf
        return buf[:total]

    def _window_locals(self, psw, length: int, total: int) -> "np.ndarray | None":
        """SA-order window utilities for the fused gather, or ``None``.

        Entry ``i`` holds ``psw.local_utility(sa[i], length)`` (0.0
        where the suffix is shorter than *length* — such ranks never
        fall inside a match interval).  Built lazily per ``(local,
        length)`` once the cumulative gathered occurrences reach the
        text length — the O(n) build is then amortised — and only for
        the O(1)-per-position locals (sum/product); RMQ-backed locals
        would pay a Python loop per suffix to build it.  Foreign PSW
        instances (not this kernel's own) are never cached: there is
        no stable identity to key them by.
        """
        if not isinstance(psw, (PswArray, ProductLocalUtility)):
            return None
        name = getattr(psw, "local_name", None)
        if name is None or self._psw_cache.get(name) is not psw:
            return None
        cache = self._window_cache
        key = (name, length)
        window = cache.get(key)
        if window is not None:
            cache.move_to_end(key)
            return window
        n = len(self._codes)
        seen = self._window_seen.get(key, 0) + total
        self._window_seen[key] = seen
        if seen < n:
            return None
        sa = self._suffix.sa
        window = np.zeros(n, dtype=np.float64)
        valid = np.flatnonzero(sa <= n - length)
        if valid.size:
            window[valid] = psw.local_utilities(sa[valid], length)
        cache[key] = window
        if len(cache) > _WINDOW_CACHE_LIMIT:
            evicted, _ = cache.popitem(last=False)
            self._window_seen.pop(evicted, None)
        return window

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Substrate bytes: codes + SA(+LCP) + every built PSW + KR."""
        total = int(self._codes.nbytes) + self._suffix.nbytes()
        for psw in self._psw_cache.values():
            size = getattr(psw, "nbytes", None)
            if callable(size):
                total += int(size())
        if self._fp is not None:
            # Two prefix tables + two power tables, n+1 int64 each.
            total += 4 * 8 * (self.length + 1)
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TextKernel(n={self.length}, sa={self._sa_algorithm!r}, "
            f"fp={'built' if self._fp is not None else 'lazy'})"
        )
