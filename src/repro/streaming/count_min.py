"""Count-min sketch (Cormode & Muthukrishnan).

Used by the BSL4 baseline (query-frequency estimation) and as the
sketch component style of HeavyKeeper.  Estimates are one-sided:
``estimate(x) >= true_count(x)`` always.
"""

from __future__ import annotations

import random

import numpy as np

from repro.errors import ParameterError

_PRIME = (1 << 61) - 1


class CountMinSketch:
    """A depth x width counter matrix with pairwise-independent hashing.

    Parameters
    ----------
    width:
        Counters per row; error scales as ``total_count / width``.
    depth:
        Number of rows; failure probability scales as ``2^-depth``.
    seed:
        Seed for the row hash functions.
    """

    def __init__(self, width: int = 1024, depth: int = 4, seed: int = 0) -> None:
        if width < 1 or depth < 1:
            raise ParameterError("width and depth must be positive")
        rng = random.Random(seed)
        self._width = width
        self._depth = depth
        self._a = [rng.randrange(1, _PRIME) for _ in range(depth)]
        self._b = [rng.randrange(0, _PRIME) for _ in range(depth)]
        self._table = np.zeros((depth, width), dtype=np.int64)

    @property
    def width(self) -> int:
        return self._width

    @property
    def depth(self) -> int:
        return self._depth

    def _buckets(self, key: int) -> list[int]:
        return [
            ((a * key + b) % _PRIME) % self._width
            for a, b in zip(self._a, self._b)
        ]

    def add(self, key: int, amount: int = 1) -> None:
        """Count *amount* occurrences of *key* (a non-negative int)."""
        for row, bucket in enumerate(self._buckets(int(key))):
            self._table[row, bucket] += amount

    def estimate(self, key: int) -> int:
        """An upper bound on the true count of *key*."""
        return int(
            min(
                self._table[row, bucket]
                for row, bucket in enumerate(self._buckets(int(key)))
            )
        )

    def reset(self) -> None:
        """Zero all counters (hash functions are kept)."""
        self._table.fill(0)

    def nbytes(self) -> int:
        return int(self._table.nbytes)
