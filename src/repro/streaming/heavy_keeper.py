"""HeavyKeeper (Yang et al., 2019): count-with-exponential-decay.

The state-of-the-art top-K *item* finder that SubstringHK adapts to
substrings.  Each sketch bucket stores a (fingerprint, count) pair;
a colliding item decays the bucket's count with probability
``decay^-count`` and captures the bucket when the count reaches zero.
Hot items are therefore protected by their high counts while cold
items fight over buckets — "count-with-exponential-weakening-decay".
"""

from __future__ import annotations

import heapq
import random

import numpy as np

from repro.errors import ParameterError

_PRIME = (1 << 61) - 1


class HeavyKeeper:
    """HeavyKeeper sketch + a top-K min-heap summary.

    Parameters
    ----------
    k:
        Summary capacity (how many hot keys to track).
    width, depth:
        Sketch dimensions.
    decay:
        The decay base ``b > 1``; the paper's recommended 1.08.
    """

    def __init__(
        self,
        k: int,
        width: int = 2048,
        depth: int = 2,
        decay: float = 1.08,
        seed: int = 0,
    ) -> None:
        if k < 1:
            raise ParameterError("k must be a positive integer")
        if decay <= 1.0:
            raise ParameterError("decay base must exceed 1")
        self._k = k
        self._width = width
        self._depth = depth
        self._decay = decay
        self._rng = random.Random(seed)
        rng = random.Random(seed + 1)
        self._a = [rng.randrange(1, _PRIME) for _ in range(depth)]
        self._b = [rng.randrange(0, _PRIME) for _ in range(depth)]
        self._bucket_fp = np.full((depth, width), -1, dtype=np.int64)
        self._bucket_count = np.zeros((depth, width), dtype=np.int64)
        self._summary: dict[int, int] = {}  # key -> estimated count
        self._heap: list[tuple[int, int]] = []  # lazy (count, key)
        # Stale heap entries are compacted past this size so the
        # structure stays O(K) regardless of stream length.
        self._heap_limit = max(64, 8 * k)

    @property
    def capacity(self) -> int:
        return self._k

    def __len__(self) -> int:
        return len(self._summary)

    # ------------------------------------------------------------------
    # Sketch
    # ------------------------------------------------------------------
    def _sketch_add(self, key: int) -> int:
        """One HeavyKeeper insertion; returns the new estimate."""
        best = 0
        for row in range(self._depth):
            bucket = ((self._a[row] * key + self._b[row]) % _PRIME) % self._width
            fp = self._bucket_fp[row, bucket]
            count = int(self._bucket_count[row, bucket])
            if fp == key:
                count += 1
                self._bucket_count[row, bucket] = count
            elif count == 0:
                self._bucket_fp[row, bucket] = key
                self._bucket_count[row, bucket] = 1
                count = 1
            else:
                if self._rng.random() < self._decay ** (-count):
                    count -= 1
                    if count == 0:
                        self._bucket_fp[row, bucket] = key
                        self._bucket_count[row, bucket] = 1
                        count = 1
                    else:
                        self._bucket_count[row, bucket] = count
                        count = 0
                else:
                    count = 0
            best = max(best, count)
        return best

    def estimate(self, key: int) -> int:
        """The sketch's current estimate for *key* (0 if untracked)."""
        best = 0
        for row in range(self._depth):
            bucket = ((self._a[row] * key + self._b[row]) % _PRIME) % self._width
            if self._bucket_fp[row, bucket] == key:
                best = max(best, int(self._bucket_count[row, bucket]))
        return best

    # ------------------------------------------------------------------
    # Summary
    # ------------------------------------------------------------------
    def _compact_heap(self) -> None:
        """Drop stale heap entries (evicted keys, outdated counts)."""
        if len(self._heap) <= self._heap_limit:
            return
        self._heap = [(count, key) for key, count in self._summary.items()]
        heapq.heapify(self._heap)

    def _summary_min(self) -> int:
        """Count of the weakest summary member (0 when not full)."""
        if len(self._summary) < self._k:
            return 0
        while self._heap:
            count, key = self._heap[0]
            if self._summary.get(key) == count:
                return count
            heapq.heappop(self._heap)
        return 0

    def offer(self, key: int) -> bool:
        """Process one stream item; returns True if it is in the summary."""
        key = int(key)
        self._compact_heap()
        estimate = self._sketch_add(key)
        if key in self._summary:
            if estimate > self._summary[key]:
                self._summary[key] = estimate
                heapq.heappush(self._heap, (estimate, key))
            return True
        if len(self._summary) < self._k:
            self._summary[key] = max(estimate, 1)
            heapq.heappush(self._heap, (self._summary[key], key))
            return True
        weakest = self._summary_min()
        if estimate > weakest:
            _, evicted = heapq.heappop(self._heap)
            self._summary.pop(evicted, None)
            self._summary[key] = estimate
            heapq.heappush(self._heap, (estimate, key))
            return True
        return False

    def contains(self, key: int) -> bool:
        return int(key) in self._summary

    def top(self, k: "int | None" = None) -> list[tuple[int, int]]:
        """Summary keys by estimated count descending."""
        ranked = sorted(self._summary.items(), key=lambda kv: -kv[1])
        return ranked[: k or self._k]

    def nbytes(self) -> int:
        return int(self._bucket_fp.nbytes + self._bucket_count.nbytes) + 32 * len(self._summary)
