"""Top-K-Trie: a Misra-Gries-style trie (Dinklage et al., SEA 2024).

Maintains a trie of at most K nodes (excluding the root), each node
representing the substring spelled by its root path and carrying a
Space-Saving-style counter.  Processing position ``i`` walks the trie
along ``S[i ..]``, incrementing counters, and then tries to grow the
deepest matched node by one letter: if the node budget is exhausted, a
minimum-count *leaf* is evicted and the newcomer inherits its count
plus one (the Misra-Gries/Space-Saving step — evicting leaves keeps
the trie prefix-closed).

The structural weakness the paper proves (Section VII): every length-l
substring needs an l-node chain to survive the whole pass, so long
frequent substrings get repeatedly truncated by evictions — the
algorithm "can fail to report half of the output" already on
``(AB)^(n/2)``.  Counters may *overestimate* (unlike Approximate-
Top-K's one-sided error), which tests assert explicitly.
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from repro.core.types import MinedSubstring
from repro.errors import ParameterError
from repro.strings.alphabet import as_code_array
from repro.strings.weighted import WeightedString

_ROOT = 0


class TopKTrie:
    """The TT competitor: O(K) nodes, one pass, O(n + K) reporting."""

    def __init__(
        self,
        text: "str | Sequence[int] | np.ndarray | WeightedString",
        k: int,
    ) -> None:
        if isinstance(text, WeightedString):
            codes = text.codes
        else:
            codes, _ = as_code_array(text)
        # Kept as a reference to the caller's array: the trie's own
        # auxiliary space must stay O(K), not O(n).
        self._codes = codes
        if k < 1:
            raise ParameterError("k must be a positive integer")
        self._k = k
        # Node arrays; index 0 is the root.
        self._parent: list[int] = [-1]
        self._letter: list[int] = [-1]
        self._count: list[int] = [0]
        self._depth: list[int] = [0]
        self._witness: list[int] = [-1]
        self._children: list[dict[int, int]] = [{}]
        self._alive: list[bool] = [True]
        self._free: list[int] = []
        self._node_budget_used = 0
        # Lazy min-heap of (count, node) for leaf eviction; compacted
        # past the limit so the trie's space stays O(K) on any stream.
        self._heap: list[tuple[int, int]] = []
        self._heap_limit = max(64, 8 * k)

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------
    def _new_node(self, parent: int, letter: int, count: int, witness: int) -> int:
        if self._free:
            node = self._free.pop()
            self._parent[node] = parent
            self._letter[node] = letter
            self._count[node] = count
            self._depth[node] = self._depth[parent] + 1
            self._witness[node] = witness
            self._children[node] = {}
            self._alive[node] = True
        else:
            node = len(self._parent)
            self._parent.append(parent)
            self._letter.append(letter)
            self._count.append(count)
            self._depth.append(self._depth[parent] + 1)
            self._witness.append(witness)
            self._children.append({})
            self._alive.append(True)
        self._children[parent][letter] = node
        self._node_budget_used += 1
        heapq.heappush(self._heap, (count, node))
        return node

    def _compact_heap(self) -> None:
        """Rebuild the heap from the live leaves when it grows stale."""
        if len(self._heap) <= self._heap_limit:
            return
        self._heap = [
            (self._count[node], node)
            for node in range(1, len(self._parent))
            if self._alive[node] and not self._children[node]
        ]
        heapq.heapify(self._heap)

    def _evict_min_leaf(self, protected: int) -> "int | None":
        """Remove the minimum-count leaf (not *protected*); its count."""
        pending: list[tuple[int, int]] = []
        evicted_count: "int | None" = None
        while self._heap:
            count, node = heapq.heappop(self._heap)
            stale = (
                not self._alive[node]
                or self._count[node] != count
                or self._children[node]
            )
            if stale:
                if self._alive[node] and not self._children[node]:
                    heapq.heappush(self._heap, (self._count[node], node))
                continue
            if node == protected:
                pending.append((count, node))
                continue
            parent = self._parent[node]
            del self._children[parent][self._letter[node]]
            self._alive[node] = False
            self._free.append(node)
            self._node_budget_used -= 1
            evicted_count = count
            if parent != _ROOT and not self._children[parent]:
                # The parent just became a leaf: make it evictable again.
                heapq.heappush(self._heap, (self._count[parent], parent))
            break
        for entry in pending:
            heapq.heappush(self._heap, entry)
        return evicted_count

    # ------------------------------------------------------------------
    # Mining
    # ------------------------------------------------------------------
    def mine(self) -> list[MinedSubstring]:
        """Process every suffix start and report the top-K nodes."""
        codes = self._codes
        n = len(codes)
        for i in range(n):
            self._compact_heap()
            node = _ROOT
            depth = 0
            while i + depth < n:
                child = self._children[node].get(int(codes[i + depth]))
                if child is None:
                    break
                self._count[child] += 1
                heapq.heappush(self._heap, (self._count[child], child))
                node = child
                depth += 1
            if i + depth >= n:
                continue
            letter = int(codes[i + depth])
            if self._node_budget_used < self._k:
                self._new_node(node, letter, 1, i)
            else:
                evicted = self._evict_min_leaf(protected=node)
                if evicted is not None:
                    self._new_node(node, letter, evicted + 1, i)
        return self._report()

    def _report(self) -> list[MinedSubstring]:
        ranked = sorted(
            (
                node
                for node in range(1, len(self._parent))
                if self._alive[node]
            ),
            key=lambda v: (-self._count[v], self._depth[v]),
        )
        return [
            MinedSubstring(
                position=self._witness[node],
                length=self._depth[node],
                frequency=self._count[node],
            )
            for node in ranked[: self._k]
        ]

    @property
    def node_count(self) -> int:
        """Live trie nodes (excluding the root); always <= K."""
        return self._node_budget_used

    def nbytes(self) -> int:
        """Analytic O(K) structure size."""
        return 64 * self._node_budget_used
