"""Space-Saving / Misra-Gries frequent-item summary (Metwally et al.).

Maintains at most *k* counters.  A new item arriving when the summary
is full replaces the minimum-count item and inherits its count plus
one, guaranteeing ``estimate(x) in [true(x), true(x) + N/k]`` — the
classic (over-estimating) item-stream guarantee that Section VII shows
breaks down when items become substrings.
"""

from __future__ import annotations

import heapq
from typing import Hashable, Iterable

from repro.errors import ParameterError


class SpaceSaving:
    """The Space-Saving summary over a stream of hashable items."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ParameterError("k must be a positive integer")
        self._k = k
        self._counts: dict[Hashable, int] = {}
        # Lazy min-heap of (count, item); stale entries are skipped.
        self._heap: list[tuple[int, Hashable]] = []

    @property
    def capacity(self) -> int:
        return self._k

    def __len__(self) -> int:
        return len(self._counts)

    def offer(self, item: Hashable) -> None:
        """Process one stream item."""
        count = self._counts.get(item)
        if count is not None:
            self._counts[item] = count + 1
            heapq.heappush(self._heap, (count + 1, item))
            return
        if len(self._counts) < self._k:
            self._counts[item] = 1
            heapq.heappush(self._heap, (1, item))
            return
        # Evict the current minimum; the newcomer inherits its count + 1.
        while self._heap:
            min_count, min_item = self._heap[0]
            if self._counts.get(min_item) == min_count:
                break
            heapq.heappop(self._heap)  # stale
        min_count, min_item = heapq.heappop(self._heap)
        del self._counts[min_item]
        self._counts[item] = min_count + 1
        heapq.heappush(self._heap, (min_count + 1, item))

    def offer_all(self, items: Iterable[Hashable]) -> None:
        for item in items:
            self.offer(item)

    def estimate(self, item: Hashable) -> int:
        """Estimated count (0 when the item is not tracked)."""
        return self._counts.get(item, 0)

    def top(self, k: "int | None" = None) -> list[tuple[Hashable, int]]:
        """The tracked items by estimated count descending."""
        ranked = sorted(self._counts.items(), key=lambda kv: -kv[1])
        return ranked[: k or self._k]
