"""Streaming frequent-item structures and their substring adaptations.

Section VII of the paper argues that space-efficient top-K *item*
mining strategies (count-min sketches, Misra-Gries/Space-Saving,
HeavyKeeper) do not translate smoothly to *substrings*.  This package
implements the item-level building blocks and the two substring
adaptations the paper evaluates as competitors: SubstringHK and
Top-K-Trie.
"""

from repro.streaming.count_min import CountMinSketch
from repro.streaming.heavy_keeper import HeavyKeeper
from repro.streaming.space_saving import SpaceSaving
from repro.streaming.substring_hk import SubstringHK
from repro.streaming.topk_trie import TopKTrie

__all__ = [
    "CountMinSketch",
    "HeavyKeeper",
    "SpaceSaving",
    "SubstringHK",
    "TopKTrie",
]
