"""SubstringHK: HeavyKeeper adapted to substrings (Section VII).

The adaptation rule from the paper: for every text position ``i``, try
to insert ``S[i]`` into the summary, and then try to insert
``S[i .. i + l]`` only if ``S[i .. i + l - 1]`` made it into the
summary; the extension to the next letter of a current length-``l``
substring additionally fires with probability ``1 / c^l`` for a
constant ``c > 1``, keeping the expected work per letter constant.

Substrings are hashed with Karp-Rabin fingerprints extended *rolling*,
one letter at a time, in O(1) per substring and O(1) auxiliary space —
the whole algorithm's auxiliary footprint is O(K) (sketch + summary),
independent of the text length, exactly the regime the paper places it
in.  It is implemented faithfully so that its *failure mode* — missing
long frequent substrings, because reaching length ``l`` requires
~``c^(-l^2/2)`` luck — reproduces the paper's negative result
(Figs 3-4) and its counterexample on ``(AB)^(n/2)``.
"""

from __future__ import annotations

import random
from typing import Sequence

import numpy as np

from repro.core.types import MinedSubstring
from repro.errors import ParameterError
from repro.strings.alphabet import as_code_array
from repro.strings.weighted import WeightedString
from repro.streaming.heavy_keeper import HeavyKeeper

_MOD1 = (1 << 31) - 1
_MOD2 = (1 << 31) - 99

#: How many summary insertions between witness-table prunes.
_PRUNE_INTERVAL = 4096


class SubstringHK:
    """The SH competitor: one pass, O(K) summary + sketch space.

    Parameters
    ----------
    text:
        The text to mine.
    k:
        Summary capacity / how many substrings to report.
    extension_base:
        The constant ``c > 1`` of the probabilistic extension rule.
    width, depth, decay:
        HeavyKeeper sketch parameters.
    """

    def __init__(
        self,
        text: "str | Sequence[int] | np.ndarray | WeightedString",
        k: int,
        extension_base: float = 1.01,
        width: "int | None" = None,
        depth: int = 2,
        decay: float = 1.08,
        seed: int = 0,
    ) -> None:
        if isinstance(text, WeightedString):
            codes = text.codes
        else:
            codes, _ = as_code_array(text)
        # A reference, not a copy: SH's own space must stay O(K).
        self._codes = codes
        if k < 1:
            raise ParameterError("k must be a positive integer")
        if extension_base <= 1.0:
            raise ParameterError("extension base c must exceed 1")
        self._k = k
        self._c = extension_base
        rng = random.Random(seed)
        self._base1 = rng.randrange(1 << 20, _MOD1 - 1)
        self._base2 = rng.randrange(1 << 20, _MOD2 - 1)
        self._rng = random.Random(seed + 7)
        sketch_width = width if width is not None else max(1024, 4 * k)
        self._hk = HeavyKeeper(
            k=k, width=sketch_width, depth=depth, decay=decay, seed=seed
        )
        self._witness: dict[int, tuple[int, int]] = {}
        self._inserts_since_prune = 0
        self.hashed_substrings = 0  # the paper's work measure ``z``

    def _prune_witnesses(self) -> None:
        """Keep the witness table at O(K): drop evicted-summary keys."""
        self._witness = {
            key: value
            for key, value in self._witness.items()
            if self._hk.contains(key)
        }

    def mine(self) -> list[MinedSubstring]:
        """One pass over the text; returns the estimated top-K."""
        codes = self._codes
        n = len(codes)
        base1, base2 = self._base1, self._base2
        for i in range(n):
            f1 = 0
            f2 = 0
            length = 0
            while i + length < n:
                c = int(codes[i + length]) + 1
                f1 = (f1 * base1 + c) % _MOD1
                f2 = (f2 * base2 + c) % _MOD2
                length += 1
                key = (f1 << 31) | f2
                self.hashed_substrings += 1
                in_summary = self._hk.offer(key)
                if in_summary and key not in self._witness:
                    self._witness[key] = (i, length)
                    self._inserts_since_prune += 1
                    if self._inserts_since_prune >= _PRUNE_INTERVAL:
                        self._prune_witnesses()
                        self._inserts_since_prune = 0
                if not in_summary:
                    break
                # Probabilistic extension: expected O(1) work per letter.
                if self._rng.random() >= self._c ** (-length):
                    break
        out: list[MinedSubstring] = []
        for key, estimate in self._hk.top(self._k):
            witness = self._witness.get(key)
            if witness is None:  # pragma: no cover - defensive
                continue
            position, length = witness
            out.append(
                MinedSubstring(position=position, length=length, frequency=estimate)
            )
        return out

    def nbytes(self) -> int:
        """Sketch + summary space (O(K); independent of n)."""
        return self._hk.nbytes() + 48 * len(self._witness)
