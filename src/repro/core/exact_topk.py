"""Exact-Top-K as a stand-alone mining function (Theorem 2).

Thin functional facade over :class:`repro.core.topk_oracle.TopKOracle`
for callers who only want to mine (the ET method of Section IX-B)
without keeping the oracle around.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.topk_oracle import TopKOracle
from repro.core.types import MinedSubstring
from repro.strings.alphabet import as_code_array
from repro.strings.weighted import WeightedString
from repro.suffix.suffix_array import SuffixArray


def exact_top_k(
    text: "str | Sequence[int] | np.ndarray | WeightedString",
    k: int,
    include_leaves: bool = True,
    sa_algorithm: str = "doubling",
) -> list[MinedSubstring]:
    """The exact top-K frequent substrings of *text*, O(n + K).

    Builds the suffix array, LCP array and Section-V oracle, then runs
    Task (i).  Ties are broken by frequency descending then length
    ascending (the paper allows arbitrary tie-breaking).
    """
    if isinstance(text, WeightedString):
        codes = text.codes
    else:
        codes, _ = as_code_array(text)
    index = SuffixArray(codes, algorithm=sa_algorithm)  # type: ignore[arg-type]
    oracle = TopKOracle(index, include_leaves=include_leaves)
    return oracle.top_k(k)
