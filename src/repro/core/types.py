"""Shared result types for the top-K substring miners.

Every miner in this library — exact, approximate, and the two
streaming competitors — reports its findings as a list of
:class:`MinedSubstring` witness tuples ``<j, l, f>`` (Section VI):
``S[j .. j + l - 1]`` is a witness occurrence of the substring and
``f`` is the miner's frequency estimate.  A uniform output type lets
the evaluation metrics treat all miners identically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MinedSubstring:
    """A mined substring as a witness tuple ``<j, l, f>``."""

    position: int
    length: int
    frequency: int

    def codes(self, text: np.ndarray) -> np.ndarray:
        """Materialise the substring's letter codes from the text."""
        return text[self.position : self.position + self.length]

    def key(self, text: np.ndarray) -> tuple:
        """A hashable content key (for set comparisons in tests)."""
        return tuple(int(c) for c in self.codes(text))


def materialize(results: "list[MinedSubstring]", text: np.ndarray) -> list[tuple]:
    """Content keys of all mined substrings, in reported order."""
    return [r.key(text) for r in results]


def frequencies(results: "list[MinedSubstring]") -> list[int]:
    """Reported frequency estimates, in reported order."""
    return [r.frequency for r in results]
