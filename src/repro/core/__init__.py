"""Core contribution: top-K substring mining and the USI index."""

from repro.core.approximate import ApproximateTopK
from repro.core.dynamic import DynamicUsiIndex
from repro.core.exact_topk import exact_top_k
from repro.core.mining import mine_by_utility_threshold, top_utility_substrings
from repro.core.naive import naive_global_utility
from repro.core.online import OnlineFrequencyTracker
from repro.core.topk_oracle import TopKOracle, TuningPoint
from repro.core.tradeoff import (
    TradeOffPoint,
    enumerate_trade_offs,
    pick_trade_off,
    skyline,
)
from repro.core.types import MinedSubstring
from repro.core.usi import UsiIndex

__all__ = [
    "ApproximateTopK",
    "DynamicUsiIndex",
    "MinedSubstring",
    "OnlineFrequencyTracker",
    "TopKOracle",
    "TradeOffPoint",
    "TuningPoint",
    "UsiIndex",
    "enumerate_trade_offs",
    "exact_top_k",
    "mine_by_utility_threshold",
    "naive_global_utility",
    "pick_trade_off",
    "skyline",
    "top_utility_substrings",
]
