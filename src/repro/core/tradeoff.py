"""(K, tau) trade-off selection — the Section-X tuning direction.

The paper's future work: "Our data structure from Section V allows us
to produce a large number of (K, tau) values efficiently, which could
then be used to select a good trade-off [skyline operator]."  This
module implements that pipeline:

* enumerate candidate tuning points from the oracle (every distinct
  frequency is one point on the curve);
* estimate each point's costs with the Theorem-1 bounds — index size
  ~ n + K words, expected query time ~ m + tau, construction time
  ~ n * L_K;
* compute the *skyline* (Pareto front) over (size, query-time) and
  pick a point under user budgets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.topk_oracle import TopKOracle
from repro.errors import ParameterError


@dataclass(frozen=True)
class TradeOffPoint:
    """One candidate USI configuration with its Theorem-1 cost model."""

    k: int
    tau: int
    distinct_lengths: int
    size_words: int
    query_cost: int
    construction_cost: int


def enumerate_trade_offs(
    oracle: TopKOracle,
    text_length: int,
    pattern_length: int = 8,
    max_points: int = 64,
) -> list[TradeOffPoint]:
    """All candidate (K, tau) points with modelled costs.

    ``pattern_length`` is the expected query length ``m`` entering the
    O(m + tau) query bound; it shifts every point equally and only
    matters when comparing against external budgets.
    """
    if text_length < 1:
        raise ParameterError("text_length must be positive")
    points = []
    for tuning in oracle.trade_off_curve(max_points=max_points):
        points.append(
            TradeOffPoint(
                k=tuning.k,
                tau=tuning.tau,
                distinct_lengths=tuning.distinct_lengths,
                size_words=text_length + tuning.k,
                query_cost=pattern_length + tuning.tau,
                construction_cost=text_length * max(tuning.distinct_lengths, 1),
            )
        )
    return points


def skyline(points: list[TradeOffPoint]) -> list[TradeOffPoint]:
    """The Pareto front over (size_words, query_cost), both minimised.

    A point survives iff no other point is at least as good on both
    axes and strictly better on one (the classic skyline operator the
    paper cites).  Returned sorted by size ascending.
    """
    ordered = sorted(points, key=lambda p: (p.size_words, p.query_cost))
    front: list[TradeOffPoint] = []
    best_query = None
    for point in ordered:
        if best_query is None or point.query_cost < best_query:
            front.append(point)
            best_query = point.query_cost
    return front


def pick_trade_off(
    oracle: TopKOracle,
    text_length: int,
    max_size_words: "int | None" = None,
    max_query_cost: "int | None" = None,
    pattern_length: int = 8,
) -> TradeOffPoint:
    """Choose a skyline point under the given budgets.

    With a size budget: the fastest point that fits.  With a query
    budget: the smallest point that meets it.  With both: the fastest
    point satisfying both (error if impossible).  With neither: the
    "knee" — the skyline point minimising the product of normalised
    size and query cost.
    """
    points = skyline(enumerate_trade_offs(oracle, text_length, pattern_length))
    if not points:
        raise ParameterError("the oracle exposes no tuning points")

    feasible = points
    if max_size_words is not None:
        feasible = [p for p in feasible if p.size_words <= max_size_words]
    if max_query_cost is not None:
        feasible = [p for p in feasible if p.query_cost <= max_query_cost]
    if not feasible:
        raise ParameterError(
            "no (K, tau) point satisfies the given budgets; relax one of them"
        )
    if max_size_words is not None and max_query_cost is None:
        return min(feasible, key=lambda p: (p.query_cost, p.size_words))
    if max_query_cost is not None and max_size_words is None:
        return min(feasible, key=lambda p: (p.size_words, p.query_cost))
    if max_size_words is not None and max_query_cost is not None:
        return min(feasible, key=lambda p: (p.query_cost, p.size_words))

    max_size = max(p.size_words for p in feasible)
    max_query = max(p.query_cost for p in feasible)
    return min(
        feasible,
        key=lambda p: (p.size_words / max_size) * (p.query_cost / max_query),
    )
