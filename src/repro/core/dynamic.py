"""Dynamic USI under letter appends (Section X).

The paper sketches a partial solution for appending letters and notes
that maintaining suffix-tree node frequencies and the hash table
online "can in general be very costly", deferring it to future work.
This module implements a *correct and practical* dynamic index with
the standard static-to-dynamic transformation:

* a static :class:`~repro.core.usi.UsiIndex` over a frozen prefix
  ``S[0 .. n0-1]``;
* a growing *tail* buffer of appended letters plus an incrementally
  extended ``PSW`` (O(1) per append, exactly as in the paper's
  sketch);
* queries merge (a) the static answer over occurrences fully inside
  the prefix with (b) a vectorised sliding-window scan of the
  boundary-plus-tail region, whose length is bounded by the rebuild
  threshold;
* when the tail outgrows ``rebuild_fraction * n`` the whole index is
  rebuilt, giving amortised O(construction / threshold) per append.

This preserves the paper's query semantics exactly (property-tested
against a from-scratch rebuild) while keeping appends cheap.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.usi import MinerName, UsiIndex
from repro.errors import ParameterError
from repro.strings.weighted import WeightedString
from repro.utility.functions import (
    AggregatorName,
    make_global_utility,
    merge_partial_answers,
)


class DynamicUsiIndex:
    """An appendable USI index.

    Parameters
    ----------
    ws:
        The initial weighted string.
    k:
        Top-K parameter forwarded to every (re)build.
    rebuild_fraction:
        Rebuild when the tail exceeds this fraction of the total
        length (minimum :attr:`MIN_TAIL` letters, so small indexes do
        not rebuild on every append).
    """

    MIN_TAIL = 64

    def __init__(
        self,
        ws: WeightedString,
        k: int,
        aggregator: "AggregatorName" = "sum",
        miner: MinerName = "exact",
        rebuild_fraction: float = 0.25,
        seed: int = 0,
    ) -> None:
        if not 0.0 < rebuild_fraction <= 1.0:
            raise ParameterError("rebuild_fraction must be in (0, 1]")
        self._k = k
        self._aggregator_name = aggregator
        self._utility = make_global_utility(aggregator)
        self._miner: MinerName = miner
        self._fraction = rebuild_fraction
        self._seed = seed
        self._tail_codes: list[int] = []
        self._tail_utilities: list[float] = []
        self._psw_cache: "tuple[int, np.ndarray] | None" = None
        self.rebuild_count = 0
        self._base = UsiIndex.build(ws, k=k, miner=miner, aggregator=aggregator, seed=seed)

    @classmethod
    def from_parts(
        cls,
        base: UsiIndex,
        tail_codes,
        tail_utilities,
        *,
        k: int,
        miner: MinerName = "exact",
        rebuild_fraction: float = 0.25,
        seed: int = 0,
        rebuild_count: int = 0,
    ) -> "DynamicUsiIndex":
        """Reassemble an index from a frozen-prefix base plus a tail.

        The checkpoint-restore path (:func:`repro.io.load_index` on a
        v4 container): *base* is a prebuilt static index over the
        frozen prefix and the tails are the letters appended since, so
        no rebuild happens on restore.
        """
        if not 0.0 < rebuild_fraction <= 1.0:
            raise ParameterError("rebuild_fraction must be in (0, 1]")
        if len(tail_codes) != len(tail_utilities):
            raise ParameterError("tail codes and utilities must have equal length")
        self = cls.__new__(cls)
        self._k = int(k)
        self._aggregator_name = base.utility.name
        self._utility = base.utility
        self._miner = miner
        self._fraction = rebuild_fraction
        self._seed = seed
        self._tail_codes = [int(code) for code in tail_codes]
        self._tail_utilities = [float(utility) for utility in tail_utilities]
        self._psw_cache = None
        self.rebuild_count = int(rebuild_count)
        self._base = base
        return self

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------
    @property
    def base(self) -> UsiIndex:
        """The static index over the frozen prefix (checkpoint payload)."""
        return self._base

    @property
    def k(self) -> int:
        return self._k

    @property
    def miner(self) -> MinerName:
        return self._miner

    @property
    def rebuild_fraction(self) -> float:
        return self._fraction

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def tail_codes(self) -> list[int]:
        return list(self._tail_codes)

    @property
    def tail_utilities(self) -> list[float]:
        return list(self._tail_utilities)

    @property
    def length(self) -> int:
        """Current total text length (prefix + tail)."""
        return self._base.weighted_string.length + len(self._tail_codes)

    @property
    def tail_length(self) -> int:
        return len(self._tail_codes)

    def append(self, letter, utility: float) -> None:
        """Append one letter with its utility (amortised cheap).

        The letter must already belong to the alphabet of the initial
        string (appending novel letters would change every index's
        alphabet; reject explicitly rather than guess).
        """
        alphabet = self._base.weighted_string.alphabet
        code = alphabet.code(letter) if not isinstance(letter, (int, np.integer)) else int(letter)
        if not 0 <= code < alphabet.size:
            raise ParameterError(f"letter code {code} outside alphabet")
        self._tail_codes.append(code)
        self._tail_utilities.append(float(utility))
        threshold = max(self.MIN_TAIL, int(self._fraction * self.length))
        if len(self._tail_codes) > threshold:
            self._rebuild()

    def extend(self, letters, utilities: "Sequence[float]") -> None:
        """Append many letters (still amortised through rebuilds)."""
        if len(letters) != len(utilities):
            raise ParameterError("letters and utilities must have equal length")
        for letter, utility in zip(letters, utilities):
            self.append(letter, utility)

    def _rebuild(self) -> None:
        ws = self.to_weighted_string()
        self._base = UsiIndex.build(
            ws,
            k=self._k,
            miner=self._miner,
            aggregator=self._aggregator_name,
            seed=self._seed,
        )
        self._tail_codes.clear()
        self._tail_utilities.clear()
        self._psw_cache = None
        self.rebuild_count += 1

    def to_weighted_string(self) -> WeightedString:
        """The full current text as a fresh :class:`WeightedString`."""
        base_ws = self._base.weighted_string
        codes = np.concatenate(
            (base_ws.codes, np.asarray(self._tail_codes, dtype=np.int32))
        )
        utilities = np.concatenate(
            (base_ws.utilities, np.asarray(self._tail_utilities, dtype=np.float64))
        )
        return WeightedString(codes, utilities, base_ws.alphabet)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _encode(
        self, pattern: "str | bytes | Sequence[int] | np.ndarray"
    ) -> "np.ndarray | None":
        """Encode a pattern; ``None`` means it cannot occur in the text."""
        return self._base.weighted_string.alphabet.try_encode_pattern(pattern)

    def query(self, pattern: "str | bytes | Sequence[int] | np.ndarray") -> float:
        """``U(pattern)`` over the *current* text (prefix + tail)."""
        codes = self._encode(pattern)
        if codes is None or len(codes) == 0:
            return self._utility.identity

        m = len(codes)
        n0 = self._base.weighted_string.length
        if m > self.length:
            return self._utility.identity

        # Occurrences fully inside the frozen prefix: the static index.
        base_value = self._base.query(codes) if m <= n0 else self._utility.identity

        # Occurrences crossing the boundary or inside the tail: one
        # vectorised sliding-window comparison over the short region.
        positions = self._tail_matches(codes, m, n0)
        if positions.size == 0:
            return float(base_value)
        psw_all = self._full_prefix_sums()
        locals_ = psw_all[positions + m] - psw_all[positions]
        if self._utility.name == "sum":
            return float(base_value + locals_.sum())
        # min / max / avg need the static count to merge the disjoint
        # prefix and boundary-plus-tail occurrence sets exactly.
        base_count = self._base.count(codes) if m <= n0 else 0
        tail_value = self._utility.aggregate(locals_)
        return merge_partial_answers(
            self._utility,
            (float(base_value), float(tail_value)),
            (int(base_count), int(positions.size)),
        )

    def query_batch(self, patterns: "Sequence") -> list[float]:
        """Batch query over the current text (per-pattern; order kept).

        The dynamic index has no cross-pattern vectorisation (the tail
        scan dominates), but exposing the protocol method keeps it a
        drop-in behind :class:`~repro.service.engine.QueryEngine`.
        """
        return [self.query(pattern) for pattern in patterns]

    def count(self, pattern: "str | bytes | Sequence[int] | np.ndarray") -> int:
        """``|occ(pattern)|`` over the current text (prefix + tail)."""
        codes = self._encode(pattern)
        if codes is None or len(codes) == 0:
            return 0
        m = len(codes)
        n0 = self._base.weighted_string.length
        if m > self.length:
            return 0
        count = self._base.count(codes) if m <= n0 else 0
        return count + int(self._tail_matches(codes, m, n0).size)

    def _tail_matches(self, codes: np.ndarray, m: int, n0: int) -> np.ndarray:
        """Start positions of matches crossing the boundary or in the tail.

        Every window starting at >= n0 - m + 1 crosses the boundary or
        lies in the tail, so these positions are disjoint from the
        static index's occurrence set and never double-count it.
        """
        region_start = max(0, n0 - m + 1)
        full = self._full_codes_region(region_start)
        if len(full) < m:
            return np.empty(0, dtype=np.int64)
        windows = np.lib.stride_tricks.sliding_window_view(full, m)
        hits = np.flatnonzero(
            (windows == np.asarray(codes, dtype=np.int64)).all(axis=1)
        )
        positions = hits.astype(np.int64) + region_start
        # Windows fully inside the prefix were already answered by the
        # static index (only possible when region_start clamps to 0).
        return positions[positions + m > n0]

    def _full_codes_region(self, start: int) -> np.ndarray:
        base_ws = self._base.weighted_string
        tail = np.asarray(self._tail_codes, dtype=np.int64)
        return np.concatenate((base_ws.codes[start:].astype(np.int64), tail))

    def _full_prefix_sums(self) -> np.ndarray:
        cached = self._psw_cache
        if cached is not None and cached[0] == len(self._tail_utilities):
            return cached[1]
        base_ws = self._base.weighted_string
        all_w = np.concatenate(
            (base_ws.utilities, np.asarray(self._tail_utilities, dtype=np.float64))
        )
        psw = np.concatenate(([0.0], np.cumsum(all_w)))
        self._psw_cache = (len(self._tail_utilities), psw)
        return psw
