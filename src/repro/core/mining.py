"""Utility-oriented substring mining (the Section II case study).

The case study ranks *all* substrings in a length band by global
utility: "use USI to query all patterns P that are substrings of S,
thus mining all patterns satisfying a global utility (or a length)
constraint" (Section I).  This module implements that mining loop as a
vectorised per-length sweep: for each length, fingerprint every
window, group windows by fingerprint, and aggregate local utilities
per group.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.hashing.karp_rabin import KarpRabinFingerprinter
from repro.strings.weighted import WeightedString
from repro.utility.functions import AggregatorName, make_global_utility
from repro.utility.functions import PrefixSumLocalUtility


@dataclass(frozen=True)
class UtilitySubstring:
    """A substring ranked by global utility (Table I rows)."""

    position: int
    length: int
    frequency: int
    utility: float

    def text(self, ws: WeightedString) -> str:
        """Materialise the substring for reports."""
        return ws.fragment_text(self.position, self.length)


def mine_by_utility_threshold(
    ws: WeightedString,
    threshold: float,
    min_length: int = 1,
    max_length: "int | None" = None,
    aggregator: AggregatorName = "sum",
    seed: int = 0,
) -> list[UtilitySubstring]:
    """All substrings whose global utility reaches *threshold*.

    The Section-I remark made concrete: USI generalises mining, so
    "query all patterns that are substrings of S, thus mining all
    patterns satisfying a global utility (or a length) constraint".
    Results are sorted by utility descending (ties: shorter first).
    """
    n = ws.length
    if min_length < 1 or min_length > n:
        raise ParameterError(f"min_length {min_length} out of range [1, {n}]")
    if max_length is None:
        max_length = n
    max_length = min(max_length, n)
    if max_length < min_length:
        raise ParameterError("max_length must be >= min_length")

    fingerprinter = KarpRabinFingerprinter(ws.codes, seed=seed)
    psw = PrefixSumLocalUtility(ws.utilities)
    utility = make_global_utility(aggregator)

    out: list[UtilitySubstring] = []
    for length in range(min_length, max_length + 1):
        fps = fingerprinter.all_windows(length)
        locals_ = psw.local_utilities(np.arange(len(fps)), length)
        unique, inverse, counts = np.unique(fps, return_inverse=True, return_counts=True)
        aggregated = utility.grouped_aggregate(inverse, locals_, len(unique))
        first = np.full(len(unique), len(fps), dtype=np.int64)
        np.minimum.at(first, inverse, np.arange(len(fps), dtype=np.int64))
        hits = np.flatnonzero(aggregated >= threshold)
        for group in hits:
            out.append(
                UtilitySubstring(
                    position=int(first[group]),
                    length=length,
                    frequency=int(counts[group]),
                    utility=float(aggregated[group]),
                )
            )
    out.sort(key=lambda u: (-u.utility, u.length, u.position))
    return out


def top_utility_substrings(
    ws: WeightedString,
    top: int,
    min_length: int = 1,
    max_length: "int | None" = None,
    aggregator: AggregatorName = "sum",
    seed: int = 0,
) -> list[UtilitySubstring]:
    """The *top* substrings of ``ws`` by global utility, by full sweep.

    Considers every distinct substring with length in
    ``[min_length, max_length]``; O(n) work per length.  This is the
    computation behind Table Ia (top substrings by utility, which the
    case study shows differ from the top substrings by frequency).
    """
    if top <= 0:
        raise ParameterError("top must be positive")
    n = ws.length
    if min_length < 1 or min_length > n:
        raise ParameterError(f"min_length {min_length} out of range [1, {n}]")
    if max_length is None:
        max_length = n
    max_length = min(max_length, n)
    if max_length < min_length:
        raise ParameterError("max_length must be >= min_length")

    fingerprinter = KarpRabinFingerprinter(ws.codes, seed=seed)
    psw = PrefixSumLocalUtility(ws.utilities)
    utility = make_global_utility(aggregator)

    best: list[tuple[float, int, int, int]] = []  # (utility, length, pos, freq)
    for length in range(min_length, max_length + 1):
        fps = fingerprinter.all_windows(length)
        locals_ = psw.local_utilities(np.arange(len(fps)), length)
        unique, inverse, counts = np.unique(fps, return_inverse=True, return_counts=True)
        aggregated = utility.grouped_aggregate(inverse, locals_, len(unique))
        # Witness: the first window holding each fingerprint.
        first = np.full(len(unique), len(fps), dtype=np.int64)
        np.minimum.at(first, inverse, np.arange(len(fps), dtype=np.int64))
        for group in np.argsort(aggregated)[::-1][: top]:
            best.append(
                (
                    float(aggregated[group]),
                    length,
                    int(first[group]),
                    int(counts[group]),
                )
            )
    best.sort(key=lambda item: (-item[0], item[1], item[2]))
    return [
        UtilitySubstring(position=pos, length=length, frequency=freq, utility=value)
        for value, length, pos, freq in best[:top]
    ]
