"""Online substring-frequency tracking (the Section-X machinery).

The paper's dynamic sketch maintains, alongside Ukkonen's online
suffix tree, the frequencies of all explicit nodes so that the top-K
frequent substrings of the growing text are always available.  It
notes that "incrementing the frequencies of all ancestors ... is
challenging as there could be many such ancestors" — this module
implements exactly that design, with the cost where the paper says it
is: O(depth) ancestor updates per new leaf.

One subtlety the paper glosses over: Ukkonen keeps up to ``remainder``
suffixes *implicit* (no leaf yet), so raw node counts lag behind true
occurrence counts by at most that many.  :class:`OnlineFrequencyTracker`
compensates at query time by scanning the pending suffixes — queries
are exact at every moment, which the tests verify letter by letter
against brute force.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.types import MinedSubstring
from repro.errors import ParameterError, PatternError
from repro.suffix_tree.ukkonen import SuffixTree


class _CountingSuffixTree(SuffixTree):
    """A suffix tree that maintains parents and leaf counts online."""

    def __init__(self) -> None:
        super().__init__()
        self.parents: list[int] = [0]
        self.counts: list[int] = [0]

    def _new_node(self, start: int, end: "int | None") -> int:
        node = super()._new_node(start, end)
        self.parents.append(0)
        self.counts.append(0)
        return node

    def _on_new_leaf(self, leaf: int, parent: int) -> None:
        """A new suffix became explicit: +1 along the root path."""
        self.parents[leaf] = parent
        self.counts[leaf] = 1
        node = parent
        while node != 0:
            self.counts[node] += 1
            node = self.parents[node]
        self.counts[0] += 1

    def _on_split(self, split: int, parent: int, child: int) -> None:
        """An edge split: the new internal node inherits the child's count."""
        self.parents[split] = parent
        self.parents[child] = split
        self.counts[split] = self.counts[child]

    @property
    def pending(self) -> int:
        """Suffixes still implicit (no leaf yet)."""
        return self._remainder


class OnlineFrequencyTracker:
    """Exact substring frequencies over a letter-by-letter stream.

    Examples
    --------
    >>> tracker = OnlineFrequencyTracker()
    >>> for letter in [0, 1, 0, 1, 0]:
    ...     tracker.extend(letter)
    >>> tracker.count([0, 1])
    2
    """

    def __init__(self) -> None:
        self._tree = _CountingSuffixTree()

    # ------------------------------------------------------------------
    # Stream side
    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        """Letters consumed so far."""
        return len(self._tree.text)

    def extend(self, letter: int) -> None:
        """Consume one letter (amortised O(1) tree work + O(depth) counts)."""
        letter = int(letter)
        if letter < 0:
            raise ParameterError("letters must be non-negative codes")
        self._tree.extend(letter)

    def extend_all(self, letters: "Sequence[int] | np.ndarray") -> None:
        for letter in letters:
            self.extend(int(letter))

    # ------------------------------------------------------------------
    # Query side
    # ------------------------------------------------------------------
    def _descend(self, pattern: list[int]) -> "int | None":
        """Locus node below which all *explicit* occurrences sit."""
        tree = self._tree
        node = 0
        i = 0
        m = len(pattern)
        text = tree.text
        while i < m:
            child = tree.children(node).get(pattern[i])
            if child is None:
                return None
            start = tree._start[child]
            end = tree._end[child]
            if end is None:
                end = len(text)
            span = min(end - start, m - i)
            for k in range(span):
                if text[start + k] != pattern[i + k]:
                    return None
            i += span
            node = child
        return node

    def _pending_starts(self) -> range:
        """Start positions of the suffixes that have no leaf yet."""
        n = self.length
        pending = self._tree.pending
        return range(n - pending, n)

    def count(self, pattern: "Sequence[int] | np.ndarray") -> int:
        """Exact ``|occ(pattern)|`` in the text consumed so far."""
        pattern = [int(c) for c in pattern]
        if not pattern:
            raise PatternError("patterns must be non-empty")
        locus = self._descend(pattern)
        explicit = self._tree.counts[locus] if locus is not None else 0
        # Pending (implicit) suffixes are not below any leaf yet: scan.
        text = self._tree.text
        m = len(pattern)
        correction = 0
        for j in self._pending_starts():
            if j + m <= len(text) and text[j : j + m] == pattern:
                correction += 1
        return explicit + correction

    def top_k(self, k: int) -> list[MinedSubstring]:
        """The current top-K frequent substrings (exact, ties by length).

        Node counts are corrected with the pending (implicit) suffixes'
        paths.  A pending suffix that ends *mid-edge* raises the
        frequency of only the shallow prefix of that edge, so edges are
        split into uniform-frequency segments before the Section-V
        style sorted expansion.  O(nodes + pending * depth + K).
        """
        if k <= 0:
            raise ParameterError("K must be a positive integer")
        tree = self._tree
        n = self.length
        if n == 0:
            return []
        text = tree.text

        # Depths via DFS (leaf edges read up to the current end).
        depths = [0] * tree.node_count
        order: list[int] = []
        stack = [0]
        while stack:
            node = stack.pop()
            order.append(node)
            for child in tree.children(node).values():
                start = tree._start[child]
                end = tree._end[child]
                if end is None:
                    end = n
                depths[child] = depths[node] + (end - start)
                stack.append(child)

        # Pending-suffix corrections: full (+1 for every fully covered
        # node) and partial (the pending suffix ends mid-edge at string
        # depth p: lengths <= p on that edge gain +1).
        full: dict[int, int] = {}
        partial: dict[int, list[int]] = {}
        for j in self._pending_starts():
            node = 0
            i = j
            while i < n:
                child = tree.children(node).get(text[i])
                if child is None:  # pragma: no cover - suffix paths exist
                    break
                start = tree._start[child]
                end = tree._end[child]
                if end is None:
                    end = n
                length = end - start
                if i + length > n:
                    matched = n - i
                    if text[start : start + matched] == text[i:n]:
                        partial.setdefault(child, []).append((i - j) + matched)
                    break
                if text[start : start + length] != text[i : i + length]:
                    break  # pragma: no cover - defensive
                i += length
                node = child
                full[node] = full.get(node, 0) + 1

        # Uniform-frequency segments: (freq, first_len, last_len, witness).
        segments: list[tuple[int, int, int, int]] = []
        for node in order:
            if node == 0:
                continue
            base = tree.counts[node] + full.get(node, 0)
            depth = min(depths[node], n)
            parent_depth = depths[tree.parents[node]]
            if depth <= parent_depth:
                continue
            end = tree._end[node]
            if end is None:
                end = n
            witness = max(end - depth, 0)
            cuts = sorted(
                {p for p in partial.get(node, []) if parent_depth < p < depth}
            )
            boundaries = [parent_depth] + cuts + [depth]
            partials = partial.get(node, [])
            for lo, hi in zip(boundaries, boundaries[1:]):
                # Lengths in (lo, hi]: every partial with p >= hi applies.
                extra = sum(1 for p in partials if p >= hi)
                freq = base + extra
                if freq > 0:
                    segments.append((freq, lo + 1, hi, witness))

        segments.sort(key=lambda s: (-s[0], s[1]))
        out: list[MinedSubstring] = []
        for freq, first, last, witness in segments:
            for length in range(first, last + 1):
                out.append(
                    MinedSubstring(position=witness, length=length, frequency=freq)
                )
                if len(out) == k:
                    return out
        return out
