"""Approximate-Top-K: space-efficient top-K estimation (Section VI).

The algorithm runs ``s`` rounds.  Round ``i`` samples the text
positions ``i + r*s``, builds a *sparse* suffix array over just those
suffixes (Step 2), extracts the sample's top-K frequent substrings via
the bottom-up lcp-interval traversal (Step 3), and merges them into
the running top-K list, summing frequencies of substrings found in
multiple rounds (Step 4).

Because each text position belongs to exactly one round's sample,
summed sample frequencies never exceed true frequencies: the error is
**one-sided** (frequencies are lower bounds), the key invariant of
Theorem 3, and it is property-tested in this repository.

Substitutions relative to the paper (see DESIGN.md): Prezza's in-place
LCE is replaced by the Karp-Rabin fingerprint LCE (same polylog query
class), and the content-comparison merge is keyed by O(1) fragment
fingerprints — equal substrings collide w.h.p. exactly like the
paper's hash table ``H`` keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.types import MinedSubstring
from repro.errors import ParameterError
from repro.hashing.karp_rabin import KarpRabinFingerprinter
from repro.strings.alphabet import as_code_array
from repro.strings.weighted import WeightedString
from repro.suffix.batch import ragged_ids_offsets
from repro.suffix.enhanced import lcp_interval_arrays, leaf_interval_arrays
from repro.suffix.lce import FingerprintLce
from repro.suffix.sparse import SparseSuffixArray


@dataclass
class ApproximateStats:
    """Bookkeeping for the space/runtime experiments of Fig. 5."""

    rounds: int = 0
    sample_sizes: list[int] = field(default_factory=list)
    peak_auxiliary_bytes: int = 0

    def record_round(self, sample_size: int, merged_size: int) -> None:
        self.rounds += 1
        self.sample_sizes.append(sample_size)
        # SSA + SLCP (8 bytes each per sampled suffix) plus the merged
        # candidate list (three machine words per candidate).
        round_bytes = sample_size * 16 + merged_size * 24
        self.peak_auxiliary_bytes = max(self.peak_auxiliary_bytes, round_bytes)


class ApproximateTopK:
    """The Approximate-Top-K (AT) miner.

    Parameters
    ----------
    text:
        The text, in any form accepted by the library.
    k:
        How many substrings to report.
    s:
        Number of sampling rounds; trades accuracy and time for space.
        ``s = 1`` indexes every suffix and is exact; the paper
        recommends ``s = O(log n)``.
    seed:
        Fingerprint seed (determinism only).
    round_capacity:
        Over-provisioning factor for the per-round candidate lists.
        Each round lists the sample's top-``round_capacity * K``
        substrings before merging (the merged list is pruned to the
        same capacity; the final output is always exactly top-K).
        The paper keeps strict top-K lists (factor 1.0); at the
        scaled-down text lengths of this reproduction the per-round
        tie tail is proportionally much larger, and a small factor
        (default 4) compensates for tie churn between rounds without
        affecting the one-sided-error guarantee or the O(K) space
        class.
    """

    def __init__(
        self,
        text: "str | Sequence[int] | np.ndarray | WeightedString",
        k: int,
        s: int,
        seed: int = 0,
        round_capacity: float = 4.0,
        fingerprinter: "KarpRabinFingerprinter | None" = None,
    ) -> None:
        if isinstance(text, WeightedString):
            codes = text.codes
        else:
            codes, _ = as_code_array(text)
        self._codes = np.asarray(codes, dtype=np.int64)
        n = len(self._codes)
        if k <= 0:
            raise ParameterError("K must be a positive integer")
        if not 1 <= s <= n:
            raise ParameterError(f"s must be in [1, n]; got {s} for n={n}")
        if round_capacity < 1.0:
            raise ParameterError("round_capacity must be at least 1.0")
        self._k = k
        self._s = s
        self._capacity = max(k, int(round(k * round_capacity)))
        if fingerprinter is not None and fingerprinter.length != n:
            raise ParameterError(
                "the supplied fingerprinter covers a different text length"
            )
        # A kernel-shared fingerprinter avoids rebuilding the prefix
        # tables; absent one, build privately exactly as before.
        self._fp = (
            fingerprinter
            if fingerprinter is not None
            else KarpRabinFingerprinter(self._codes, seed=seed)
        )
        self._lce = FingerprintLce(self._codes, self._fp)
        self.stats = ApproximateStats()

    @property
    def fingerprinter(self) -> KarpRabinFingerprinter:
        """The shared fingerprinter (reused by UAT construction)."""
        return self._fp

    # ------------------------------------------------------------------
    # Steps 2-3: one round
    # ------------------------------------------------------------------
    def _round_candidates(
        self, round_index: int
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Top-K frequent substrings of one round's sample.

        Returns parallel witness arrays ``(j, l, f_sample)``.  Explicit
        nodes of the sample's compacted trie come from the vectorised
        PSV/NSV interval arrays (internal nodes) plus the vectorised
        leaf pass, exactly the node set of Task (i); the top
        ``capacity`` nodes are preselected with ``np.argpartition`` on
        the combined ``(frequency desc, depth asc)`` key — each node
        represents at least one substring, so nothing the expansion
        could report is ever partitioned away — and only that bounded
        subset is fully sorted and edge-expanded.
        """
        n = len(self._codes)
        positions = np.arange(round_index, n, self._s, dtype=np.int64)
        ssa = SparseSuffixArray(self._codes, positions, self._lce)
        order = np.asarray(ssa.positions, dtype=np.int64)
        slcp = np.asarray(ssa.slcp, dtype=np.int64)

        depths, lbs, rbs, parents = lcp_interval_arrays(slcp)
        leaf_depths, slots, leaf_parents = leaf_interval_arrays(order, slcp, n)
        freqs = np.concatenate(
            [rbs - lbs + 1, np.ones(len(slots), dtype=np.int64)]
        )
        depths = np.concatenate([depths, leaf_depths])
        parents = np.concatenate([parents, leaf_parents])
        lbs = np.concatenate([lbs, slots])
        if not len(freqs):
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty

        base = np.int64(int(depths.max()) + 2)
        keys = depths - freqs * base  # ascending == (frequency desc, depth asc)
        if len(keys) > self._capacity:
            picked = np.argpartition(keys, self._capacity - 1)[: self._capacity]
        else:
            picked = np.arange(len(keys), dtype=np.int64)
        picked = picked[np.argsort(keys[picked], kind="stable")]

        # Edge expansion, clipped to the first `capacity` substrings.
        edges = depths[picked] - parents[picked]
        bounds = np.cumsum(edges)
        cut = int(np.searchsorted(bounds, self._capacity, side="left"))
        cut = min(cut, len(picked) - 1)
        node_ids, offsets = ragged_ids_offsets(edges[: cut + 1])
        total = len(node_ids)
        lengths = parents[picked[node_ids]] + 1 + offsets
        witnesses = order[lbs[picked[node_ids]]]
        round_freqs = freqs[picked[node_ids]]
        if total > self._capacity:
            witnesses = witnesses[: self._capacity]
            lengths = lengths[: self._capacity]
            round_freqs = round_freqs[: self._capacity]
        return witnesses, lengths, round_freqs

    # ------------------------------------------------------------------
    # Step 4: merge rounds
    # ------------------------------------------------------------------
    def mine(self) -> list[MinedSubstring]:
        """Run all rounds and return the estimated top-K substrings.

        The per-round merge keys candidates by ``(length,
        fingerprint)`` and is fully vectorised: one stable two-key
        sort groups equal substrings (first witness wins, exactly the
        hash-table semantics), ``np.add.reduceat`` sums the sample
        frequencies, and the capacity prune is one combined-key sort.
        """
        empty = np.empty(0, dtype=np.int64)
        merged_j, merged_len, merged_f, merged_fp = empty, empty, empty, empty
        for round_index in range(self._s):
            j, lengths, freqs = self._round_candidates(round_index)
            fps = self._fp.fragments(j, lengths) if len(j) else empty
            cat_j = np.concatenate([merged_j, j])
            cat_len = np.concatenate([merged_len, lengths])
            cat_f = np.concatenate([merged_f, freqs])
            cat_fp = np.concatenate([merged_fp, fps])
            if len(cat_j):
                # Stable grouping by (length, fingerprint): within a
                # group the earliest entry (the first-seen witness)
                # comes first.
                grouping = np.lexsort((cat_fp, cat_len))
                g_len = cat_len[grouping]
                g_fp = cat_fp[grouping]
                firsts = np.empty(len(grouping), dtype=bool)
                firsts[0] = True
                firsts[1:] = (g_len[1:] != g_len[:-1]) | (g_fp[1:] != g_fp[:-1])
                starts = np.flatnonzero(firsts)
                merged_j = cat_j[grouping][starts]
                merged_len = g_len[starts]
                merged_fp = g_fp[starts]
                merged_f = np.add.reduceat(cat_f[grouping], starts)
            if len(merged_j) > self._capacity:
                # Keep only the current top candidates (frequency desc,
                # length asc), as the paper's merged list does.
                base = np.int64(int(merged_len.max()) + 2)
                keep = np.argsort(merged_len - merged_f * base, kind="stable")
                keep = keep[: self._capacity]
                merged_j = merged_j[keep]
                merged_len = merged_len[keep]
                merged_f = merged_f[keep]
                merged_fp = merged_fp[keep]
            sample_size = (len(self._codes) - round_index + self._s - 1) // self._s
            self.stats.record_round(sample_size, len(merged_j))

        final = np.lexsort((merged_j, merged_len, -merged_f))[: self._k]
        return [
            MinedSubstring(position=j, length=length, frequency=freq)
            for j, length, freq in zip(
                merged_j[final].tolist(),
                merged_len[final].tolist(),
                merged_f[final].tolist(),
            )
        ]
