"""Approximate-Top-K: space-efficient top-K estimation (Section VI).

The algorithm runs ``s`` rounds.  Round ``i`` samples the text
positions ``i + r*s``, builds a *sparse* suffix array over just those
suffixes (Step 2), extracts the sample's top-K frequent substrings via
the bottom-up lcp-interval traversal (Step 3), and merges them into
the running top-K list, summing frequencies of substrings found in
multiple rounds (Step 4).

Because each text position belongs to exactly one round's sample,
summed sample frequencies never exceed true frequencies: the error is
**one-sided** (frequencies are lower bounds), the key invariant of
Theorem 3, and it is property-tested in this repository.

Substitutions relative to the paper (see DESIGN.md): Prezza's in-place
LCE is replaced by the Karp-Rabin fingerprint LCE (same polylog query
class), and the content-comparison merge is keyed by O(1) fragment
fingerprints — equal substrings collide w.h.p. exactly like the
paper's hash table ``H`` keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.types import MinedSubstring
from repro.errors import ParameterError
from repro.hashing.karp_rabin import KarpRabinFingerprinter
from repro.strings.alphabet import as_code_array
from repro.strings.weighted import WeightedString
from repro.suffix.enhanced import bottom_up_intervals
from repro.suffix.lce import FingerprintLce
from repro.suffix.sparse import SparseSuffixArray


@dataclass
class ApproximateStats:
    """Bookkeeping for the space/runtime experiments of Fig. 5."""

    rounds: int = 0
    sample_sizes: list[int] = field(default_factory=list)
    peak_auxiliary_bytes: int = 0

    def record_round(self, sample_size: int, merged_size: int) -> None:
        self.rounds += 1
        self.sample_sizes.append(sample_size)
        # SSA + SLCP (8 bytes each per sampled suffix) plus the merged
        # candidate list (three machine words per candidate).
        round_bytes = sample_size * 16 + merged_size * 24
        self.peak_auxiliary_bytes = max(self.peak_auxiliary_bytes, round_bytes)


class ApproximateTopK:
    """The Approximate-Top-K (AT) miner.

    Parameters
    ----------
    text:
        The text, in any form accepted by the library.
    k:
        How many substrings to report.
    s:
        Number of sampling rounds; trades accuracy and time for space.
        ``s = 1`` indexes every suffix and is exact; the paper
        recommends ``s = O(log n)``.
    seed:
        Fingerprint seed (determinism only).
    round_capacity:
        Over-provisioning factor for the per-round candidate lists.
        Each round lists the sample's top-``round_capacity * K``
        substrings before merging (the merged list is pruned to the
        same capacity; the final output is always exactly top-K).
        The paper keeps strict top-K lists (factor 1.0); at the
        scaled-down text lengths of this reproduction the per-round
        tie tail is proportionally much larger, and a small factor
        (default 4) compensates for tie churn between rounds without
        affecting the one-sided-error guarantee or the O(K) space
        class.
    """

    def __init__(
        self,
        text: "str | Sequence[int] | np.ndarray | WeightedString",
        k: int,
        s: int,
        seed: int = 0,
        round_capacity: float = 4.0,
        fingerprinter: "KarpRabinFingerprinter | None" = None,
    ) -> None:
        if isinstance(text, WeightedString):
            codes = text.codes
        else:
            codes, _ = as_code_array(text)
        self._codes = np.asarray(codes, dtype=np.int64)
        n = len(self._codes)
        if k <= 0:
            raise ParameterError("K must be a positive integer")
        if not 1 <= s <= n:
            raise ParameterError(f"s must be in [1, n]; got {s} for n={n}")
        if round_capacity < 1.0:
            raise ParameterError("round_capacity must be at least 1.0")
        self._k = k
        self._s = s
        self._capacity = max(k, int(round(k * round_capacity)))
        if fingerprinter is not None and fingerprinter.length != n:
            raise ParameterError(
                "the supplied fingerprinter covers a different text length"
            )
        # A kernel-shared fingerprinter avoids rebuilding the prefix
        # tables; absent one, build privately exactly as before.
        self._fp = (
            fingerprinter
            if fingerprinter is not None
            else KarpRabinFingerprinter(self._codes, seed=seed)
        )
        self._lce = FingerprintLce(self._codes, self._fp)
        self.stats = ApproximateStats()

    @property
    def fingerprinter(self) -> KarpRabinFingerprinter:
        """The shared fingerprinter (reused by UAT construction)."""
        return self._fp

    # ------------------------------------------------------------------
    # Steps 2-3: one round
    # ------------------------------------------------------------------
    def _round_candidates(self, round_index: int) -> list[tuple[int, int, int]]:
        """Top-K frequent substrings of one round's sample.

        Returns witness tuples ``(j, l, f_sample)``.
        """
        n = len(self._codes)
        positions = np.arange(round_index, n, self._s, dtype=np.int64)
        ssa = SparseSuffixArray(self._codes, positions, self._lce)
        order = ssa.positions
        slcp = np.asarray(ssa.slcp, dtype=np.int64)

        # Explicit nodes of the sample's compacted trie: internal nodes
        # from the bottom-up traversal, plus the sample's leaf edges
        # (frequency-1-in-sample substrings), exactly as in Task (i).
        records: list[tuple[int, int, int, int]] = []  # (freq, sd, psd, lb)
        for node in bottom_up_intervals(slcp):
            records.append((node.frequency, node.lcp, node.parent_lcp, node.lb))
        sample_size = len(order)
        for idx in range(sample_size):
            depth = n - order[idx]
            left = int(slcp[idx]) if idx > 0 else 0
            right = int(slcp[idx + 1]) if idx + 1 < sample_size else 0
            parent_depth = max(left, right)
            if depth > parent_depth:
                records.append((1, depth, parent_depth, idx))

        records.sort(key=lambda r: (-r[0], r[1]))
        out: list[tuple[int, int, int]] = []
        for freq, sd, psd, lb in records:
            witness = order[lb]
            for length in range(psd + 1, sd + 1):
                out.append((witness, length, freq))
                if len(out) == self._capacity:
                    return out
        return out

    # ------------------------------------------------------------------
    # Step 4: merge rounds
    # ------------------------------------------------------------------
    def mine(self) -> list[MinedSubstring]:
        """Run all rounds and return the estimated top-K substrings."""
        merged: dict[tuple[int, int], list[int]] = {}  # (l, fp) -> [j, l, f]
        for round_index in range(self._s):
            candidates = self._round_candidates(round_index)
            for j, length, freq in candidates:
                key = (length, self._fp.fragment(j, length))
                entry = merged.get(key)
                if entry is None:
                    merged[key] = [j, length, freq]
                else:
                    entry[2] += freq
            if len(merged) > self._capacity:
                # Keep only the current top candidates (frequency desc,
                # length asc), as the paper's merged list does.
                kept = sorted(merged.items(), key=lambda kv: (-kv[1][2], kv[1][1]))
                merged = dict(kept[: self._capacity])
            sample_size = (len(self._codes) - round_index + self._s - 1) // self._s
            self.stats.record_round(sample_size, len(merged))

        final = sorted(merged.values(), key=lambda e: (-e[2], e[1], e[0]))
        return [
            MinedSubstring(position=j, length=length, frequency=freq)
            for j, length, freq in final[: self._k]
        ]
