"""The linear-space top-K oracle of Section V.

One structure, three tasks:

* **Task (i)**  — list the top-K frequent substrings of ``S`` as
  triplets ``<lcp, lb, rb>`` (Exact-Top-K, Theorem 2);
* **Task (ii)** — given ``K``, report ``tau_K`` (smallest top-K
  frequency, bounding USI query time) and ``L_K`` (distinct lengths,
  bounding USI construction time) in ``O(log n)``;
* **Task (iii)** — given ``tau``, report ``K_tau`` (number of
  tau-frequent substrings, bounding USI size) and ``L_tau``.

Construction follows the paper, with the suffix tree realised as the
enhanced suffix array (the bottom-up traversal of
:mod:`repro.suffix.enhanced` enumerates exactly the explicit nodes):

* ``T`` — triplets ``<v, f(v), q(v)>`` sorted by frequency descending,
  ties broken by string depth ascending (shorter substrings first);
* ``Q[i]`` — cumulative count of distinct substrings represented by
  the first ``i + 1`` triplets;
* ``L[i]`` — distinct lengths among those substrings.  Because every
  ancestor of a node sorts before it (ancestors have frequency >= and
  depth <), the represented length set is always a contiguous prefix
  ``[1, max_depth]``, so ``L`` is the running maximum of string depths
  — exactly the counter/maximum argument in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import MinedSubstring
from repro.errors import ParameterError
from repro.suffix.batch import ragged_ids_offsets
from repro.suffix.enhanced import (
    bottom_up_intervals,
    lcp_interval_arrays,
    leaf_edge_arrays,
    leaf_intervals,
)
from repro.suffix.suffix_array import SuffixArray


@dataclass(frozen=True)
class TuningPoint:
    """One point on the (K, tau) trade-off curve (Tasks ii/iii)."""

    k: int
    tau: int
    distinct_lengths: int


@dataclass(frozen=True)
class TopKTriplet:
    """Task (i) output: substring of length ``lcp`` at ``SA[lb..rb]``."""

    lcp: int
    lb: int
    rb: int
    frequency: int


class TopKOracle:
    """The Section-V data structure over a suffix array.

    Parameters
    ----------
    index:
        A :class:`SuffixArray` (with LCP) of the text.
    include_leaves:
        Include suffix-tree leaf edges, i.e. frequency-1 substrings.
        Required for correctness when ``K`` exceeds the number of
        repeated substrings; the paper's ``T`` ranges over all explicit
        nodes, which includes leaves.
    enumeration:
        ``"vectorized"`` (default) enumerates the explicit nodes with
        the PSV/NSV interval arrays of :mod:`repro.suffix.enhanced`;
        ``"python"`` keeps the original generator walk — slow, retained
        as the construction cross-check and the seed-path reference for
        the build benchmarks.  Both produce the same oracle (node order
        before the radix sort differs, so exact witnesses may differ
        between equal-(frequency, length) ties).
    """

    def __init__(
        self,
        index: SuffixArray,
        include_leaves: bool = True,
        enumeration: str = "vectorized",
    ) -> None:
        self._index = index
        self._include_leaves = include_leaves
        n = index.length

        if enumeration == "vectorized":
            depths, lbs, rbs, parent_depths = lcp_interval_arrays(index.lcp)
            freqs = rbs - lbs + 1
            if len(depths):
                # Sort the internal nodes only; the sorted order of
                # the (much larger) leaf block is derived analytically
                # below, and every internal frequency (>= 2) precedes
                # every leaf (frequency 1).
                base = np.int64(int(depths.max()) + 2)
                order = np.argsort(depths - freqs * base, kind="stable")
                freqs, depths = freqs[order], depths[order]
                parent_depths, lbs, rbs = parent_depths[order], lbs[order], rbs[order]
            if include_leaves:
                # Leaves sorted by (frequency=1, depth asc) without a
                # sort: depth = n - SA[slot], so ascending depth is
                # descending suffix position — the reversed inverse
                # permutation of the suffix array, filtered to leaves
                # with non-empty edges.
                sa = np.asarray(index.sa, dtype=np.int64)
                depth_all, parent_all = leaf_edge_arrays(sa, index.lcp, n)
                inverse = np.empty(n, dtype=np.int64)
                inverse[sa] = np.arange(n, dtype=np.int64)
                slots = inverse[::-1]
                slots = slots[depth_all[slots] > parent_all[slots]]
                freqs = np.concatenate([freqs, np.ones(len(slots), dtype=np.int64)])
                depths = np.concatenate([depths, depth_all[slots]])
                parent_depths = np.concatenate([parent_depths, parent_all[slots]])
                lbs = np.concatenate([lbs, slots])
                rbs = np.concatenate([rbs, slots])
            self._finish(
                freqs, depths, parent_depths, lbs, rbs, index.sa, presorted=True
            )
            return
        if enumeration != "python":
            raise ParameterError(f"unknown enumeration {enumeration!r}")

        freqs_l: list[int] = []
        depths_l: list[int] = []
        parent_depths_l: list[int] = []
        lbs_l: list[int] = []
        rbs_l: list[int] = []
        for node in bottom_up_intervals(index.lcp):
            freqs_l.append(node.frequency)
            depths_l.append(node.lcp)
            parent_depths_l.append(node.parent_lcp)
            lbs_l.append(node.lb)
            rbs_l.append(node.rb)
        if include_leaves:
            for node in leaf_intervals(index.sa, index.lcp, n):
                freqs_l.append(1)
                depths_l.append(node.lcp)
                parent_depths_l.append(node.parent_lcp)
                lbs_l.append(node.lb)
                rbs_l.append(node.rb)
        self._finish(freqs_l, depths_l, parent_depths_l, lbs_l, rbs_l, index.sa)

    @classmethod
    def from_suffix_tree(cls, tree, include_leaves: bool = True) -> "TopKOracle":
        """Build the oracle directly from a finalized suffix tree.

        This is the paper's literal Section-V construction: traverse
        ``ST(S)``, extract ``<v, f(v), q(v)>`` per explicit node, and
        radix sort.  A DFS with children in letter order visits the
        leaves in lexicographic suffix order, which *is* the suffix
        array — so each node's leaf span doubles as its SA interval and
        the resulting oracle is interchangeable with the
        enhanced-suffix-array one (tested for agreement).
        """
        from repro.suffix_tree.ukkonen import SuffixTree  # cycle-safe

        if not isinstance(tree, SuffixTree):
            raise ParameterError("from_suffix_tree expects a SuffixTree")
        tree._require_finalized()
        text_len = tree.sentinel_length - 1  # without the sentinel

        freqs: list[int] = []
        depths: list[int] = []
        parent_depths: list[int] = []
        lbs: list[int] = []
        rbs: list[int] = []
        sa_positions = np.empty(text_len, dtype=np.int64)

        # Iterative DFS with children in letter order (sentinel -1
        # first, matching the shorter-suffix-sorts-first convention).
        # Post-order assembly: each internal node's interval is the
        # span of leaf indexes assigned below it.
        next_leaf = 0
        span: dict[int, tuple[int, int]] = {}
        stack: list[tuple[int, bool]] = [(0, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                kids = tree.children(node).values()
                lo = min(span[c][0] for c in kids)
                hi = max(span[c][1] for c in kids)
                span[node] = (lo, hi)
                continue
            if tree.is_leaf(node):
                suffix = tree.suffix_index(node)
                if suffix >= text_len:  # the sentinel-only leaf
                    span[node] = (next_leaf, next_leaf - 1)  # empty span
                    continue
                sa_positions[next_leaf] = suffix
                span[node] = (next_leaf, next_leaf)
                next_leaf += 1
                continue
            stack.append((node, True))
            for letter in sorted(tree.children(node), reverse=True):
                stack.append((tree.children(node)[letter], False))

        for node in range(1, tree.node_count):
            lo, hi = span[node]
            if hi < lo:
                continue  # the sentinel-only leaf
            depth = tree.string_depth(node)
            parent_depth = tree.string_depth(tree.parent(node))
            if tree.is_leaf(node):
                if not include_leaves:
                    continue
                depth -= 1  # clip the sentinel letter
                if depth <= parent_depth:
                    continue
            freqs.append(tree.frequency(node))
            depths.append(depth)
            parent_depths.append(parent_depth)
            lbs.append(lo)
            rbs.append(hi)

        oracle = cls.__new__(cls)
        oracle._index = None
        oracle._include_leaves = include_leaves
        oracle._finish(freqs, depths, parent_depths, lbs, rbs, sa_positions)
        return oracle

    def _finish(
        self,
        freqs,
        depths,
        parent_depths,
        lbs,
        rbs,
        sa_positions: np.ndarray,
        presorted: bool = False,
    ) -> None:
        """Sort the node records and build ``T``, ``Q``, ``L``."""
        self._sa_positions = np.asarray(sa_positions, dtype=np.int64)
        f = np.asarray(freqs, dtype=np.int64)
        sd = np.asarray(depths, dtype=np.int64)
        psd = np.asarray(parent_depths, dtype=np.int64)
        # Radix sort in the paper: frequency descending, string depth
        # ascending.  One collision-free combined int64 key sorts the
        # pair in a single stable argsort (depths stay below `base`,
        # so they never borrow into the frequency field).  Callers
        # that assembled the records in sorted order skip it.
        if presorted or not len(sd):
            order = slice(None)
        else:
            base = np.int64(int(sd.max()) + 2)
            order = np.argsort(sd - f * base, kind="stable")
        self._f = f[order]
        self._sd = sd[order]
        self._psd = psd[order]
        self._lb = np.asarray(lbs, dtype=np.int64)[order]
        self._rb = np.asarray(rbs, dtype=np.int64)[order]
        # Memoised descending-key view shared by every tau search
        # (tune_by_tau, trade_off_curve): ascending for searchsorted.
        self._f_neg = -self._f
        # Q: cumulative distinct substrings; L: running max depth.
        self._q = np.cumsum(self._sd - self._psd)
        self._l = (
            np.maximum.accumulate(self._sd)
            if len(self._sd)
            else np.empty(0, dtype=np.int64)
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def index(self) -> "SuffixArray | None":
        """The backing suffix array (``None`` for the suffix-tree path)."""
        return self._index

    @property
    def suffix_positions(self) -> np.ndarray:
        """Suffix start positions in lexicographic order (= SA)."""
        return self._sa_positions

    @property
    def triplet_count(self) -> int:
        """Number of explicit nodes stored in ``T``."""
        return len(self._f)

    @property
    def distinct_substring_count(self) -> int:
        """Total distinct substrings of ``S`` (only exact with leaves)."""
        return int(self._q[-1]) if len(self._q) else 0

    def nbytes(self) -> int:
        """Bytes held by the oracle arrays (``T``, ``Q``, ``L``)."""
        return int(
            self._f.nbytes + self._sd.nbytes + self._psd.nbytes
            + self._lb.nbytes + self._rb.nbytes + self._q.nbytes + self._l.nbytes
        )

    # ------------------------------------------------------------------
    # Task (i): Exact-Top-K
    # ------------------------------------------------------------------
    def _expand_top(self, k: int) -> "tuple[np.ndarray, np.ndarray]":
        """Indices into ``T`` and substring lengths for the top *k*.

        Vectorised edge expansion: ``Q`` locates the node covering the
        K-th substring, ``np.repeat``/``np.arange`` unroll each kept
        node's edge into its ``q(v)`` lengths (shallower first), and
        the tail is clipped to exactly *k* — no per-length Python loop.
        """
        if k <= 0:
            raise ParameterError("K must be a positive integer")
        if not len(self._q):
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        cut = int(np.searchsorted(self._q, k, side="left"))
        cut = min(cut, len(self._q) - 1)
        edges = (self._sd - self._psd)[: cut + 1]
        node_ids, offsets = ragged_ids_offsets(edges)
        total = len(node_ids)
        lengths = self._psd[node_ids] + 1 + offsets
        if total > k:
            node_ids = node_ids[:k]
            lengths = lengths[:k]
        return node_ids, lengths

    def top_k_triplets(self, k: int) -> list[TopKTriplet]:
        """The top-K frequent substrings as ``<lcp, lb, rb>`` triplets.

        Scans ``T`` in frequency order, expanding each node's edge into
        its ``q(v)`` distinct substrings (shallower first), and stops
        after ``k`` substrings.  O(n + K), expansion vectorised.
        """
        node_ids, lengths = self._expand_top(k)
        return [
            TopKTriplet(lcp=length, lb=lb, rb=rb, frequency=f)
            for length, lb, rb, f in zip(
                lengths.tolist(),
                self._lb[node_ids].tolist(),
                self._rb[node_ids].tolist(),
                self._f[node_ids].tolist(),
            )
        ]

    def top_k_arrays(self, k: int) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Task (i) output as ``(positions, lengths, frequencies)`` arrays.

        The array twin of :meth:`top_k` — same substrings, no Python
        object per result; this is what the USI construction consumes.
        """
        node_ids, lengths = self._expand_top(k)
        positions = self._sa_positions[self._lb[node_ids]]
        return positions, lengths, self._f[node_ids]

    def top_k(self, k: int) -> list[MinedSubstring]:
        """Task (i) output in the uniform witness-tuple form.

        The witness is ``SA[lb]``, as in the paper's explicit-form
        conversion ``S[SA[lb] .. SA[lb] + lcp - 1]``.
        """
        positions, lengths, freqs = self.top_k_arrays(k)
        return [
            MinedSubstring(position=position, length=length, frequency=frequency)
            for position, length, frequency in zip(
                positions.tolist(), lengths.tolist(), freqs.tolist()
            )
        ]

    # ------------------------------------------------------------------
    # Task (ii): K -> (tau_K, L_K)
    # ------------------------------------------------------------------
    def tune_by_k(self, k: int) -> TuningPoint:
        """Smallest top-K frequency and distinct lengths, O(log n).

        Binary search in ``Q`` for the smallest index with
        ``Q[i] >= K``.  When ``K`` exceeds the number of distinct
        substrings, the last triplet answers (everything is reported).
        """
        if k <= 0:
            raise ParameterError("K must be a positive integer")
        if not len(self._q):
            return TuningPoint(k=0, tau=0, distinct_lengths=0)
        i = int(np.searchsorted(self._q, k, side="left"))
        if i >= len(self._q):
            i = len(self._q) - 1
        return TuningPoint(
            k=min(k, int(self._q[-1])),
            tau=int(self._f[i]),
            distinct_lengths=int(self._l[i]),
        )

    # ------------------------------------------------------------------
    # Task (iii): tau -> (K_tau, L_tau)
    # ------------------------------------------------------------------
    def tune_by_tau(self, tau: int) -> TuningPoint:
        """Number of tau-frequent substrings and their lengths, O(log n).

        ``T`` is sorted by frequency descending, so the tau-frequent
        prefix ends at the largest index with ``f >= tau``.
        """
        if tau <= 0:
            raise ParameterError("tau must be a positive integer")
        if not len(self._f):
            return TuningPoint(k=0, tau=tau, distinct_lengths=0)
        # First index with f < tau in the descending array (the
        # negated view is memoised at construction, so every call is a
        # pure binary search — no per-call array materialisation).
        i = int(np.searchsorted(self._f_neg, -(tau - 1), side="left"))
        if i == 0:
            return TuningPoint(k=0, tau=tau, distinct_lengths=0)
        return TuningPoint(
            k=int(self._q[i - 1]),
            tau=tau,
            distinct_lengths=int(self._l[i - 1]),
        )

    def trade_off_curve(self, max_points: int = 50) -> list[TuningPoint]:
        """Sample the (K, tau, L) curve — the Section-X tuning aid.

        Returns up to *max_points* tuning points at distinct
        frequencies, usable to pick a (K, tau) trade-off (the paper
        suggests a skyline over these).  One vectorised
        ``searchsorted`` over the memoised frequency order answers
        every sampled tau at once, instead of re-deriving the sorted
        state per point.
        """
        if not len(self._f):
            return []
        distinct_f = np.unique(self._f)[::-1]
        if len(distinct_f) > max_points:
            picks = np.linspace(0, len(distinct_f) - 1, max_points).astype(int)
            distinct_f = distinct_f[picks]
        # Batched Task (iii): every sampled tau occurs in T, so each
        # search lands past at least one triplet (i >= 1 throughout).
        ends = np.searchsorted(self._f_neg, -(distinct_f - 1), side="left") - 1
        return [
            TuningPoint(k=k, tau=tau, distinct_lengths=length)
            for k, tau, length in zip(
                self._q[ends].tolist(),
                distinct_f.tolist(),
                self._l[ends].tolist(),
            )
        ]
