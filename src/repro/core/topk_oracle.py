"""The linear-space top-K oracle of Section V.

One structure, three tasks:

* **Task (i)**  — list the top-K frequent substrings of ``S`` as
  triplets ``<lcp, lb, rb>`` (Exact-Top-K, Theorem 2);
* **Task (ii)** — given ``K``, report ``tau_K`` (smallest top-K
  frequency, bounding USI query time) and ``L_K`` (distinct lengths,
  bounding USI construction time) in ``O(log n)``;
* **Task (iii)** — given ``tau``, report ``K_tau`` (number of
  tau-frequent substrings, bounding USI size) and ``L_tau``.

Construction follows the paper, with the suffix tree realised as the
enhanced suffix array (the bottom-up traversal of
:mod:`repro.suffix.enhanced` enumerates exactly the explicit nodes):

* ``T`` — triplets ``<v, f(v), q(v)>`` sorted by frequency descending,
  ties broken by string depth ascending (shorter substrings first);
* ``Q[i]`` — cumulative count of distinct substrings represented by
  the first ``i + 1`` triplets;
* ``L[i]`` — distinct lengths among those substrings.  Because every
  ancestor of a node sorts before it (ancestors have frequency >= and
  depth <), the represented length set is always a contiguous prefix
  ``[1, max_depth]``, so ``L`` is the running maximum of string depths
  — exactly the counter/maximum argument in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import MinedSubstring
from repro.errors import ParameterError
from repro.suffix.enhanced import bottom_up_intervals, leaf_intervals
from repro.suffix.suffix_array import SuffixArray


@dataclass(frozen=True)
class TuningPoint:
    """One point on the (K, tau) trade-off curve (Tasks ii/iii)."""

    k: int
    tau: int
    distinct_lengths: int


@dataclass(frozen=True)
class TopKTriplet:
    """Task (i) output: substring of length ``lcp`` at ``SA[lb..rb]``."""

    lcp: int
    lb: int
    rb: int
    frequency: int


class TopKOracle:
    """The Section-V data structure over a suffix array.

    Parameters
    ----------
    index:
        A :class:`SuffixArray` (with LCP) of the text.
    include_leaves:
        Include suffix-tree leaf edges, i.e. frequency-1 substrings.
        Required for correctness when ``K`` exceeds the number of
        repeated substrings; the paper's ``T`` ranges over all explicit
        nodes, which includes leaves.
    """

    def __init__(self, index: SuffixArray, include_leaves: bool = True) -> None:
        self._index = index
        self._include_leaves = include_leaves
        n = index.length

        freqs: list[int] = []
        depths: list[int] = []
        parent_depths: list[int] = []
        lbs: list[int] = []
        rbs: list[int] = []
        for node in bottom_up_intervals(index.lcp):
            freqs.append(node.frequency)
            depths.append(node.lcp)
            parent_depths.append(node.parent_lcp)
            lbs.append(node.lb)
            rbs.append(node.rb)
        if include_leaves:
            for node in leaf_intervals(index.sa, index.lcp, n):
                freqs.append(1)
                depths.append(node.lcp)
                parent_depths.append(node.parent_lcp)
                lbs.append(node.lb)
                rbs.append(node.rb)
        self._finish(freqs, depths, parent_depths, lbs, rbs, index.sa)

    @classmethod
    def from_suffix_tree(cls, tree, include_leaves: bool = True) -> "TopKOracle":
        """Build the oracle directly from a finalized suffix tree.

        This is the paper's literal Section-V construction: traverse
        ``ST(S)``, extract ``<v, f(v), q(v)>`` per explicit node, and
        radix sort.  A DFS with children in letter order visits the
        leaves in lexicographic suffix order, which *is* the suffix
        array — so each node's leaf span doubles as its SA interval and
        the resulting oracle is interchangeable with the
        enhanced-suffix-array one (tested for agreement).
        """
        from repro.suffix_tree.ukkonen import SuffixTree  # cycle-safe

        if not isinstance(tree, SuffixTree):
            raise ParameterError("from_suffix_tree expects a SuffixTree")
        tree._require_finalized()
        text_len = tree.sentinel_length - 1  # without the sentinel

        freqs: list[int] = []
        depths: list[int] = []
        parent_depths: list[int] = []
        lbs: list[int] = []
        rbs: list[int] = []
        sa_positions = np.empty(text_len, dtype=np.int64)

        # Iterative DFS with children in letter order (sentinel -1
        # first, matching the shorter-suffix-sorts-first convention).
        # Post-order assembly: each internal node's interval is the
        # span of leaf indexes assigned below it.
        next_leaf = 0
        span: dict[int, tuple[int, int]] = {}
        stack: list[tuple[int, bool]] = [(0, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                kids = tree.children(node).values()
                lo = min(span[c][0] for c in kids)
                hi = max(span[c][1] for c in kids)
                span[node] = (lo, hi)
                continue
            if tree.is_leaf(node):
                suffix = tree.suffix_index(node)
                if suffix >= text_len:  # the sentinel-only leaf
                    span[node] = (next_leaf, next_leaf - 1)  # empty span
                    continue
                sa_positions[next_leaf] = suffix
                span[node] = (next_leaf, next_leaf)
                next_leaf += 1
                continue
            stack.append((node, True))
            for letter in sorted(tree.children(node), reverse=True):
                stack.append((tree.children(node)[letter], False))

        for node in range(1, tree.node_count):
            lo, hi = span[node]
            if hi < lo:
                continue  # the sentinel-only leaf
            depth = tree.string_depth(node)
            parent_depth = tree.string_depth(tree.parent(node))
            if tree.is_leaf(node):
                if not include_leaves:
                    continue
                depth -= 1  # clip the sentinel letter
                if depth <= parent_depth:
                    continue
            freqs.append(tree.frequency(node))
            depths.append(depth)
            parent_depths.append(parent_depth)
            lbs.append(lo)
            rbs.append(hi)

        oracle = cls.__new__(cls)
        oracle._index = None
        oracle._include_leaves = include_leaves
        oracle._finish(freqs, depths, parent_depths, lbs, rbs, sa_positions)
        return oracle

    def _finish(
        self,
        freqs: list[int],
        depths: list[int],
        parent_depths: list[int],
        lbs: list[int],
        rbs: list[int],
        sa_positions: np.ndarray,
    ) -> None:
        """Sort the node records and build ``T``, ``Q``, ``L``."""
        self._sa_positions = np.asarray(sa_positions, dtype=np.int64)
        f = np.asarray(freqs, dtype=np.int64)
        sd = np.asarray(depths, dtype=np.int64)
        psd = np.asarray(parent_depths, dtype=np.int64)
        # Radix sort in the paper; lexsort gives the same order:
        # frequency descending, string depth ascending.
        order = np.lexsort((sd, -f))
        self._f = f[order]
        self._sd = sd[order]
        self._psd = psd[order]
        self._lb = np.asarray(lbs, dtype=np.int64)[order]
        self._rb = np.asarray(rbs, dtype=np.int64)[order]
        # Q: cumulative distinct substrings; L: running max depth.
        self._q = np.cumsum(self._sd - self._psd)
        self._l = (
            np.maximum.accumulate(self._sd)
            if len(self._sd)
            else np.empty(0, dtype=np.int64)
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def index(self) -> "SuffixArray | None":
        """The backing suffix array (``None`` for the suffix-tree path)."""
        return self._index

    @property
    def suffix_positions(self) -> np.ndarray:
        """Suffix start positions in lexicographic order (= SA)."""
        return self._sa_positions

    @property
    def triplet_count(self) -> int:
        """Number of explicit nodes stored in ``T``."""
        return len(self._f)

    @property
    def distinct_substring_count(self) -> int:
        """Total distinct substrings of ``S`` (only exact with leaves)."""
        return int(self._q[-1]) if len(self._q) else 0

    def nbytes(self) -> int:
        """Bytes held by the oracle arrays (``T``, ``Q``, ``L``)."""
        return int(
            self._f.nbytes + self._sd.nbytes + self._psd.nbytes
            + self._lb.nbytes + self._rb.nbytes + self._q.nbytes + self._l.nbytes
        )

    # ------------------------------------------------------------------
    # Task (i): Exact-Top-K
    # ------------------------------------------------------------------
    def top_k_triplets(self, k: int) -> list[TopKTriplet]:
        """The top-K frequent substrings as ``<lcp, lb, rb>`` triplets.

        Scans ``T`` in frequency order, expanding each node's edge into
        its ``q(v)`` distinct substrings (shallower first), and stops
        after ``k`` substrings.  O(n + K).
        """
        if k <= 0:
            raise ParameterError("K must be a positive integer")
        out: list[TopKTriplet] = []
        for f, sd, psd, lb, rb in zip(self._f, self._sd, self._psd, self._lb, self._rb):
            for length in range(int(psd) + 1, int(sd) + 1):
                out.append(
                    TopKTriplet(lcp=length, lb=int(lb), rb=int(rb), frequency=int(f))
                )
                if len(out) == k:
                    return out
        return out

    def top_k(self, k: int) -> list[MinedSubstring]:
        """Task (i) output in the uniform witness-tuple form.

        The witness is ``SA[lb]``, as in the paper's explicit-form
        conversion ``S[SA[lb] .. SA[lb] + lcp - 1]``.
        """
        sa = self._sa_positions
        return [
            MinedSubstring(
                position=int(sa[t.lb]), length=t.lcp, frequency=t.frequency
            )
            for t in self.top_k_triplets(k)
        ]

    # ------------------------------------------------------------------
    # Task (ii): K -> (tau_K, L_K)
    # ------------------------------------------------------------------
    def tune_by_k(self, k: int) -> TuningPoint:
        """Smallest top-K frequency and distinct lengths, O(log n).

        Binary search in ``Q`` for the smallest index with
        ``Q[i] >= K``.  When ``K`` exceeds the number of distinct
        substrings, the last triplet answers (everything is reported).
        """
        if k <= 0:
            raise ParameterError("K must be a positive integer")
        if not len(self._q):
            return TuningPoint(k=0, tau=0, distinct_lengths=0)
        i = int(np.searchsorted(self._q, k, side="left"))
        if i >= len(self._q):
            i = len(self._q) - 1
        return TuningPoint(
            k=min(k, int(self._q[-1])),
            tau=int(self._f[i]),
            distinct_lengths=int(self._l[i]),
        )

    # ------------------------------------------------------------------
    # Task (iii): tau -> (K_tau, L_tau)
    # ------------------------------------------------------------------
    def tune_by_tau(self, tau: int) -> TuningPoint:
        """Number of tau-frequent substrings and their lengths, O(log n).

        ``T`` is sorted by frequency descending, so the tau-frequent
        prefix ends at the largest index with ``f >= tau``.
        """
        if tau <= 0:
            raise ParameterError("tau must be a positive integer")
        if not len(self._f):
            return TuningPoint(k=0, tau=tau, distinct_lengths=0)
        # First index with f < tau in the descending array.
        i = int(np.searchsorted(-self._f, -(tau - 1), side="left"))
        if i == 0:
            return TuningPoint(k=0, tau=tau, distinct_lengths=0)
        return TuningPoint(
            k=int(self._q[i - 1]),
            tau=tau,
            distinct_lengths=int(self._l[i - 1]),
        )

    def trade_off_curve(self, max_points: int = 50) -> list[TuningPoint]:
        """Sample the (K, tau, L) curve — the Section-X tuning aid.

        Returns up to *max_points* tuning points at distinct
        frequencies, usable to pick a (K, tau) trade-off (the paper
        suggests a skyline over these).
        """
        if not len(self._f):
            return []
        distinct_f = np.unique(self._f)[::-1]
        if len(distinct_f) > max_points:
            picks = np.linspace(0, len(distinct_f) - 1, max_points).astype(int)
            distinct_f = distinct_f[picks]
        return [self.tune_by_tau(int(tau)) for tau in distinct_f]
