"""Brute-force global utility computation (test oracle).

Defines the ground truth that every index in this library must match:
find all occurrences by direct scan, compute each occurrence's local
utility directly from ``w``, and aggregate.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.strings.occurrences import naive_occurrences
from repro.strings.weighted import WeightedString
from repro.utility.functions import AggregatorName, LocalUtilityName, make_global_utility


def naive_local_utility(
    ws: WeightedString, i: int, length: int, local: LocalUtilityName = "sum"
) -> float:
    """``u(i, length)`` computed directly from ``w``."""
    fragment = ws.fragment_utilities(i, length)
    if local == "sum":
        return float(fragment.sum())
    if local == "product":
        return float(fragment.prod())
    if local == "min":
        return float(fragment.min())
    if local == "max":
        return float(fragment.max())
    raise ValueError(f"unknown local utility {local!r}")


def naive_global_utility(
    ws: WeightedString,
    pattern: "str | Sequence[int] | np.ndarray",
    aggregator: AggregatorName = "sum",
    local: LocalUtilityName = "sum",
) -> float:
    """``U(pattern)`` by direct scan — O(n * m) and always correct.

    Patterns containing letters outside the text's alphabet simply
    have no occurrences and report the aggregator's identity.
    """
    utility = make_global_utility(aggregator)
    if isinstance(pattern, str):
        try:
            pattern = ws.alphabet.encode(pattern)
        except Exception:
            return utility.identity
    pattern = np.asarray(pattern, dtype=np.int64)
    occurrences = naive_occurrences(ws.codes, pattern)
    locals_ = np.asarray(
        [naive_local_utility(ws, i, len(pattern), local) for i in occurrences],
        dtype=np.float64,
    )
    return utility.aggregate(locals_)
