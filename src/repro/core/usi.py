"""USI_TOP-K: the Useful String Indexing data structure (Section IV).

The index stores the global utilities of the top-K frequent substrings
in a fingerprint-keyed hash table ``H`` and answers everything else
through the text index + the prefix-sum array ``PSW``:

* pattern in ``H``   -> O(m) (fingerprint + one lookup);
* pattern not in ``H`` -> O(m log n + occ) via the suffix array, with
  each occurrence's local utility read from ``PSW`` in O(1); since any
  such pattern occurs at most ``tau_K`` times, queries are bounded by
  the paper's O(m + tau_K) up to the SA-search ``log n``.

Construction (Theorem 1) has three phases:

1. mine the top-K frequent substrings (Exact-Top-K -> **UET**, or
   Approximate-Top-K -> **UAT**);
2. sliding-window pass per distinct substring length: fingerprint all
   windows of that length, keep those matching a top-K substring, and
   aggregate their local utilities into ``H`` — realised here as a
   vectorised ``isin``/``bincount`` kernel, O(n) per length, O(n L_K)
   total, exactly the paper's bound;
3. the text index and ``PSW``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Literal, Sequence

import numpy as np

from repro.core.approximate import ApproximateTopK
from repro.core.topk_oracle import TopKOracle
from repro.core.types import MinedSubstring
from repro.errors import AlphabetError, ParameterError, PatternError
from repro.hashing.karp_rabin import KarpRabinFingerprinter
from repro.kernel import TextKernel
from repro.strings.weighted import WeightedString
from repro.suffix.suffix_array import SuffixArray
from repro.utility.functions import (
    AggregatorName,
    GlobalUtility,
    LocalUtility,
    LocalUtilityName,
    PrefixSumLocalUtility,
    make_global_utility,
    make_local_utility,
)

MinerName = Literal["exact", "approximate"]


@dataclass(frozen=True)
class QueryExplanation:
    """How one query was (or would be) answered — see :meth:`UsiIndex.explain`."""

    pattern_length: int
    path: Literal["hash-table", "text-index", "no-occurrence", "unencodable"]
    occurrences: int
    utility: float
    within_tau_bound: bool


@dataclass
class UsiBuildReport:
    """Construction statistics (feed for the Fig. 6 experiments).

    Besides the paper's structural figures, the report carries a
    stage-level timing breakdown of the build pipeline (suffix array,
    LCP, mining, sliding-window table), surfaced by ``usi build
    --profile`` and the build-speed benchmark.
    """

    miner: str
    k: int
    tau_k: int
    distinct_lengths: int
    hash_entries: int
    mining_seconds: float = 0.0
    table_seconds: float = 0.0
    sa_seconds: float = 0.0
    lcp_seconds: float = 0.0
    total_seconds: float = 0.0
    lcp_source: str = ""

    def stage_seconds(self) -> "dict[str, float]":
        """Ordered stage -> wall-seconds map (the --profile payload).

        ``mining`` is reported net of the LCP build it triggers (the
        LCP line itemises that); ``other`` is the remainder of the
        end-to-end total (PSW, fingerprint tables, plumbing).
        """
        mining = max(self.mining_seconds - self.lcp_seconds, 0.0)
        accounted = self.sa_seconds + self.lcp_seconds + mining + self.table_seconds
        stages = {
            "suffix-array": self.sa_seconds,
            "lcp": self.lcp_seconds,
            "mining": mining,
            "table": self.table_seconds,
        }
        if self.total_seconds:
            stages["other"] = max(self.total_seconds - accounted, 0.0)
            stages["total"] = self.total_seconds
        return stages


class UsiIndex:
    """The USI_TOP-K index over a weighted string.

    Build with :meth:`build`; query with :meth:`query`.

    Examples
    --------
    >>> ws = WeightedString("ATACCCCGATAATACCCCAG",
    ...                     [.9, 1, 3, 2, .7, 1, 1, .6, .5, .5,
    ...                      .5, .8, 1, 1, 1, .9, 1, 1, .8, 1])
    >>> index = UsiIndex.build(ws, k=5)
    >>> index.query("TACCCC")
    14.6
    """

    def __init__(
        self,
        ws: WeightedString,
        suffix_array: SuffixArray,
        fingerprinter: "KarpRabinFingerprinter | None",
        psw: LocalUtility,
        utility: GlobalUtility,
        table: dict[int, float],
        report: UsiBuildReport,
        kernel: "TextKernel | None" = None,
    ) -> None:
        self._ws = ws
        self._sa = suffix_array
        self._fp_obj = fingerprinter
        self._psw = psw
        self._utility = utility
        self._table = table
        self._kernel = kernel
        self.report = report
        if fingerprinter is None and kernel is None:
            raise ParameterError("a UsiIndex needs a fingerprinter or a kernel")
        # Query counters (cheap; used by the workload experiments).
        self.hash_hits = 0
        self.hash_misses = 0
        # Sorted fingerprint/value arrays for the vectorised batch
        # probe of H; derived from _table lazily on first batch query.
        self._probe_keys: "np.ndarray | None" = None
        self._probe_vals: "np.ndarray | None" = None

    # Pickle: the probe arrays are derived from the hash table; drop
    # them so persisted shards stay lean.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_probe_keys", None)
        state.pop("_probe_vals", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._probe_keys = None
        self._probe_vals = None

    @property
    def _fp(self) -> KarpRabinFingerprinter:
        """The fingerprinter (resolved from the kernel on first use)."""
        if self._fp_obj is None:
            self._fp_obj = self._kernel.fingerprinter  # type: ignore[union-attr]
        return self._fp_obj

    @property
    def kernel(self) -> "TextKernel | None":
        """The shared substrate this index was built over (if any)."""
        return self._kernel

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        ws: WeightedString,
        k: "int | None" = None,
        tau: "int | None" = None,
        miner: MinerName = "exact",
        s: "int | None" = None,
        aggregator: "AggregatorName | GlobalUtility" = "sum",
        local: LocalUtilityName = "sum",
        sa_algorithm: str = "doubling",
        locate_backend: Literal["sa", "fm", "st"] = "sa",
        seed: int = 0,
        kernel: "TextKernel | None" = None,
    ) -> "UsiIndex":
        """Construct USI_TOP-K for a weighted string.

        Parameters
        ----------
        ws:
            The weighted string ``(S, w)``.
        k:
            How many frequent substrings to precompute.  Exactly one
            of *k* and *tau* must be given; a *tau* is converted to
            ``K_tau`` through the Section-V oracle (Task iii).
        tau:
            Alternatively, the query-time budget: precompute all
            substrings with frequency >= *tau*.
        miner:
            ``"exact"`` (Exact-Top-K; the UET index) or
            ``"approximate"`` (Approximate-Top-K; the UAT index).
        s:
            Sampling rounds for the approximate miner (default
            ``max(2, round(log2 n))``, the paper's recommendation).
        aggregator:
            The global utility function from class ``U``.
        local:
            The local utility function: ``"sum"`` (the paper's
            sliding-window canonical), ``"product"`` (expected
            frequency over per-position probabilities — the
            bioinformatics motivation), or the RMQ-backed ``"min"`` /
            ``"max"`` extensions.
        locate_backend:
            ``"sa"`` (default: suffix-array binary search), ``"fm"``
            (the succinct FM-index), or ``"st"`` (the suffix tree, the
            paper's literal Section-IV layout with O(m + occ) locate).
            Construction always builds a suffix array for mining; the
            backend only changes which structure the index *keeps* for
            uncached queries.
        kernel:
            An optional pre-built :class:`~repro.kernel.TextKernel`
            over the same weighted string.  When given, its suffix
            array, ``PSW``, and fingerprint tables are shared (the
            text is not re-encoded); when absent a private kernel is
            built, exactly as before.
        """
        if (k is None) == (tau is None):
            raise ParameterError("provide exactly one of k or tau")
        utility = make_global_utility(aggregator)
        n = ws.length

        t_start = time.perf_counter()
        kernel_owned = kernel is None
        if kernel is None:
            kernel = TextKernel(ws, sa_algorithm=sa_algorithm, seed=seed)
        else:
            kernel.require_match(ws)
        # The LCP array is a construction-time aid (the Section-V
        # oracle); it is built lazily on demand and dropped afterwards
        # so the final index is SA + PSW + H, as in the paper.
        suffix_array = kernel.suffix
        psw = kernel.psw(local)

        t0 = time.perf_counter()
        lcp_seconds_before = getattr(suffix_array, "lcp_seconds", 0.0)
        if miner == "exact":
            oracle = TopKOracle(suffix_array)
            if k is None:
                k = max(1, oracle.tune_by_tau(int(tau)).k)  # type: ignore[arg-type]
            tuning = oracle.tune_by_k(k)
            mined_positions, mined_lengths, mined_freqs = oracle.top_k_arrays(k)
            fingerprinter = kernel.fingerprinter
            tau_k = tuning.tau
        elif miner == "approximate":
            if k is None:
                # The approximate miner has no tau oracle; derive K from
                # the exact oracle (cheap relative to mining) so UAT and
                # UET agree on K for a given tau.
                oracle = TopKOracle(suffix_array)
                k = max(1, oracle.tune_by_tau(int(tau)).k)  # type: ignore[arg-type]
            if s is None:
                s = max(2, int(round(np.log2(max(n, 2)))))
            at = ApproximateTopK(ws, k=k, s=s, seed=seed,
                                 fingerprinter=kernel.fingerprinter)
            mined = at.mine()
            mined_positions = np.asarray([m.position for m in mined], dtype=np.int64)
            mined_lengths = np.asarray([m.length for m in mined], dtype=np.int64)
            mined_freqs = np.asarray([m.frequency for m in mined], dtype=np.int64)
            fingerprinter = at.fingerprinter
            tau_k = int(mined_freqs.min()) if len(mined_freqs) else 0
        else:
            raise ParameterError(f"unknown miner {miner!r}")
        mining_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        table, distinct_lengths = cls._build_table(
            mined_positions, mined_lengths, fingerprinter, psw, utility, n
        )
        table_seconds = time.perf_counter() - t0

        if kernel_owned:
            # Shared kernels keep their LCP for the next consumer; a
            # private one sheds it so the index is SA + PSW + H.
            suffix_array.drop_lcp()
        if locate_backend == "fm":
            from repro.succinct.fm_index import FmIndex

            # Reuse the kernel's suffix array: the FM construction only
            # needs the SA to derive the BWT, so nothing is re-sorted.
            suffix_array = FmIndex(ws.codes, sa=kernel.suffix.sa)  # type: ignore[assignment]
        elif locate_backend == "st":
            # The paper's literal Section-IV layout: ST(S) performs
            # locate in O(m + occ).
            from repro.suffix_tree.navigation import SuffixTreeNavigator
            from repro.suffix_tree.ukkonen import SuffixTree

            suffix_array = SuffixTreeNavigator(  # type: ignore[assignment]
                SuffixTree.from_codes(ws.codes)
            )
        elif locate_backend != "sa":
            raise ParameterError(f"unknown locate backend {locate_backend!r}")
        report = UsiBuildReport(
            miner=miner,
            k=int(k),
            tau_k=int(tau_k),
            distinct_lengths=distinct_lengths,
            hash_entries=len(table),
            mining_seconds=mining_seconds,
            table_seconds=table_seconds,
            # A shared kernel's suffix array was paid for once, outside
            # this build; only charge it when this build constructed it.
            sa_seconds=getattr(kernel, "build_seconds", 0.0) if kernel_owned else 0.0,
            lcp_seconds=max(
                getattr(kernel.suffix, "lcp_seconds", 0.0) - lcp_seconds_before, 0.0
            ),
            lcp_source=getattr(kernel.suffix, "lcp_source", None) or "",
            total_seconds=time.perf_counter() - t_start,
        )
        return cls(
            ws, suffix_array, fingerprinter, psw, utility, table, report,
            kernel=kernel,
        )

    @staticmethod
    def _build_table(
        mined_positions: np.ndarray,
        mined_lengths: np.ndarray,
        fingerprinter: KarpRabinFingerprinter,
        psw: LocalUtility,
        utility: GlobalUtility,
        n: int,
    ) -> tuple[dict[int, float], int]:
        """Phase (ii): the sliding-window global-utility aggregation.

        For each distinct length ``l`` among the mined substrings,
        fingerprints every window of length ``l`` (vectorised O(n)),
        keeps the windows whose fingerprint belongs to a mined
        substring (one ``searchsorted`` probe of the sorted wanted
        set — O(n log K) per length, no full-array sort), and folds
        their local utilities into the hash table.  This computes
        **exact** occurrence sets — so even for the approximate miner
        the stored utilities are the true global utilities of the
        (approximately chosen) substrings, mirroring the paper's
        bitvector-guided window pass.
        """
        mined_positions = np.asarray(mined_positions, dtype=np.int64)
        mined_lengths = np.asarray(mined_lengths, dtype=np.int64)
        distinct_lengths = np.unique(mined_lengths)

        table: dict[int, float] = {}
        for length in distinct_lengths.tolist():
            group = mined_positions[mined_lengths == length]
            wanted = np.unique(fingerprinter.windows_at(group, length))
            window_fps = fingerprinter.all_windows(length)
            probes = np.searchsorted(wanted, window_fps)
            probes[probes == len(wanted)] = 0
            mask = wanted[probes] == window_fps
            positions = np.flatnonzero(mask)
            if positions.size == 0:  # pragma: no cover - mined from text
                continue
            # The probe indices double as group ids into the sorted
            # wanted set — no re-sort of the hit fingerprints needed.
            groups = probes[positions]
            locals_ = psw.local_utilities(positions, length)
            aggregated = utility.grouped_aggregate(groups, locals_, len(wanted))
            occupied = np.zeros(len(wanted), dtype=bool)
            occupied[groups] = True
            for key, value in zip(
                wanted[occupied].tolist(), aggregated[occupied].tolist()
            ):
                table[int(key)] = float(value)
        return table, len(distinct_lengths)

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def _encode(self, pattern: "str | bytes | Sequence[int] | np.ndarray") -> "np.ndarray | None":
        """Encode a pattern; ``None`` means "cannot occur in S"."""
        if isinstance(pattern, np.ndarray):
            if len(pattern) == 0:
                raise PatternError("query patterns must be non-empty")
            return pattern.astype(np.int64, copy=False)
        try:
            return self._ws.alphabet.encode_pattern(pattern).astype(np.int64)
        except AlphabetError:
            return None

    def query(self, pattern: "str | bytes | Sequence[int] | np.ndarray") -> float:
        """The global utility ``U(pattern)``.

        O(m) for precomputed (top-K frequent) patterns, O(m log n +
        occ) otherwise; patterns that cannot occur report the
        aggregator identity (0.0 for all supported aggregators).
        """
        codes = self._encode(pattern)
        if codes is None:
            return self._utility.identity
        fingerprint = self._fp.of_codes(codes)
        cached = self._table.get(fingerprint)
        if cached is not None:
            self.hash_hits += 1
            return cached
        self.hash_misses += 1
        occurrences = self._sa.occurrences(codes)
        if occurrences.size == 0:
            return self._utility.identity
        locals_ = self._psw.local_utilities(occurrences, len(codes))
        return self._utility.aggregate(locals_)

    def query_many(self, patterns: "Sequence") -> list[float]:
        """Deprecated alias of :meth:`query_batch`."""
        import warnings

        warnings.warn(
            "UsiIndex.query_many is deprecated; use query_batch",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.query_batch(patterns)

    def query_batch(self, patterns: "Sequence") -> list[float]:
        """Batch query: vectorised fingerprinting *and* locating.

        Groups patterns by length and fingerprints each group with one
        numpy pass (columns of a pattern matrix), so hash-table hits
        cost amortised sub-microsecond.  Misses go through the shared
        kernel's batch locate (packed-key ``searchsorted`` per length
        bucket) and one fancy-indexed ``PSW`` gather, so the uncached
        path is NumPy-bound too; only FM/suffix-tree locate backends
        fall back to the per-pattern loop.  Answers match :meth:`query`
        (order preserved; sums of many occurrences may differ in the
        last float ULP from the scalar path's accumulation order).

        The H probe itself is vectorised too: the hash table's
        fingerprints are kept as a sorted key/value array pair, so one
        ``np.searchsorted`` per length bucket replaces the per-pattern
        dict lookups (exact same answers and hit/miss counts).
        """
        from repro.kernel import iter_length_buckets
        from repro.profiling import record_stage

        t0 = time.perf_counter()
        encoded: list["np.ndarray | None"] = [self._encode(p) for p in patterns]
        out = np.full(len(patterns), self._utility.identity, dtype=np.float64)
        record_stage("encode", time.perf_counter() - t0)

        vectorised = self._kernel is not None and isinstance(self._sa, SuffixArray)
        for length, slots, matrix in iter_length_buckets(encoded):
            t0 = time.perf_counter()
            keys = self._fp.of_code_matrix(matrix)
            slots_arr = np.asarray(slots, dtype=np.int64)
            probe_keys, probe_vals = self._probe_arrays()
            if probe_keys.size:
                pos = np.searchsorted(probe_keys, keys)
                pos[pos == probe_keys.size] = 0
                hit = probe_keys[pos] == keys
            else:
                hit = np.zeros(len(slots), dtype=bool)
            hits = int(hit.sum())
            self.hash_hits += hits
            self.hash_misses += len(slots) - hits
            if hits:
                out[slots_arr[hit]] = probe_vals[pos[hit]]
            record_stage("cache", time.perf_counter() - t0)
            if hits == len(slots):
                continue
            misses = [slots[int(i)] for i in np.flatnonzero(~hit)]
            if vectorised:
                values = self._kernel.batch_utilities(
                    [encoded[slot] for slot in misses],
                    self._utility,
                    psw=self._psw,
                )
                out[np.asarray(misses, dtype=np.int64)] = values
            else:
                for slot in misses:
                    occurrences = self._sa.occurrences(encoded[slot])
                    if occurrences.size:
                        locals_ = self._psw.local_utilities(occurrences, length)
                        out[slot] = self._utility.aggregate(locals_)
        return out.tolist()

    def _probe_arrays(self) -> "tuple[np.ndarray, np.ndarray]":
        """H as sorted (fingerprints, values) arrays, built lazily.

        Fingerprints combine two 31-bit hashes, so they fit int64
        exactly; a stale pair (table size changed) is rebuilt.
        """
        keys = getattr(self, "_probe_keys", None)
        if keys is None or keys.size != len(self._table):
            table = self._table
            keys = np.fromiter(table.keys(), dtype=np.int64, count=len(table))
            vals = np.fromiter(table.values(), dtype=np.float64, count=len(table))
            order = np.argsort(keys)
            self._probe_keys = keys = keys[order]
            self._probe_vals = vals[order]
        return keys, self._probe_vals  # type: ignore[return-value]

    def count(self, pattern: "str | bytes | Sequence[int] | np.ndarray") -> int:
        """``|occ(pattern)|`` through the text index (always exact)."""
        codes = self._encode(pattern)
        if codes is None:
            return 0
        return self._sa.count(codes)

    def count_batch(self, patterns: "Sequence") -> list[int]:
        """``|occ(pattern)|`` for many patterns, vectorised.

        Same counts as calling :meth:`count` per pattern, in input
        order, but each length bucket is one batch locate — this is
        what keeps non-``sum`` sharded merges off the per-pattern
        Python loop.  Non-SA locate backends fall back to the scalar
        count.
        """
        from repro.kernel import iter_length_buckets

        encoded = [self._encode(p) for p in patterns]
        out = np.zeros(len(patterns), dtype=np.int64)
        if isinstance(self._sa, SuffixArray):
            for _length, slots, matrix in iter_length_buckets(encoded):
                lb, rb = self._sa.interval_batch(matrix)
                out[np.asarray(slots, dtype=np.int64)] = np.maximum(rb - lb + 1, 0)
        else:
            for slot, codes in enumerate(encoded):
                if codes is not None and len(codes):
                    out[slot] = self._sa.count(codes)
        return out.tolist()

    def explain(self, pattern: "str | bytes | Sequence[int] | np.ndarray") -> QueryExplanation:
        """Describe how *pattern* is answered (diagnostics; no counters).

        Reports the answer path, the exact occurrence count, the
        utility, and whether the Theorem-1 guarantee held (an uncached
        pattern must occur at most ``tau_K`` times when the index was
        mined exactly; the approximate miner may violate it, which is
        exactly what this flag surfaces).
        """
        codes = self._encode(pattern)
        if codes is None:
            return QueryExplanation(
                pattern_length=len(pattern),
                path="unencodable",
                occurrences=0,
                utility=self._utility.identity,
                within_tau_bound=True,
            )
        occurrences = self._sa.count(codes)
        cached = self._fp.of_codes(codes) in self._table
        if cached:
            path = "hash-table"
        elif occurrences:
            path = "text-index"
        else:
            path = "no-occurrence"
        within = cached or occurrences <= max(self.report.tau_k, 0) or occurrences == 0
        # Compute the utility without disturbing the hit/miss counters.
        hits, misses = self.hash_hits, self.hash_misses
        value = self.query(codes)
        self.hash_hits, self.hash_misses = hits, misses
        return QueryExplanation(
            pattern_length=len(codes),
            path=path,  # type: ignore[arg-type]
            occurrences=int(occurrences),
            utility=value,
            within_tau_bound=bool(within),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def weighted_string(self) -> WeightedString:
        return self._ws

    @property
    def suffix_array(self) -> SuffixArray:
        return self._sa

    @property
    def utility(self) -> GlobalUtility:
        return self._utility

    @property
    def hash_table_size(self) -> int:
        """Number of precomputed (substring, utility) entries in ``H``."""
        return len(self._table)

    def top_cached(self, limit: "int | None" = None) -> list[tuple[int, float]]:
        """The hash table's (fingerprint, utility) pairs, utility-descending.

        Supports case-study-style reporting: the most *useful* among
        the precomputed frequent substrings.  Fingerprints are opaque
        keys; pair them with the miner's witness list to materialise
        the substrings.
        """
        ranked = sorted(self._table.items(), key=lambda kv: -kv[1])
        return ranked[: limit or len(ranked)]

    def is_cached(self, pattern: "str | bytes | Sequence[int] | np.ndarray") -> bool:
        """Whether *pattern*'s utility is answered from ``H``."""
        codes = self._encode(pattern)
        if codes is None:
            return False
        return self._fp.of_codes(codes) in self._table

    def nbytes(self) -> int:
        """Analytic index size: SA(+LCP) + PSW + hash table entries.

        Hash entries are charged 16 bytes of payload (62-bit key +
        float64 value) plus Python dict slot overhead of ~16 bytes,
        mirroring the paper's (1+eps)wK-bit hash-table accounting.
        """
        return self._sa.nbytes() + self._psw.nbytes() + 32 * len(self._table)
