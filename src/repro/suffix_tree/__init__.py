"""Suffix tree substrate (Ukkonen's online construction)."""

from repro.suffix_tree.navigation import SuffixTreeNavigator
from repro.suffix_tree.ukkonen import SuffixTree

__all__ = ["SuffixTree", "SuffixTreeNavigator"]
