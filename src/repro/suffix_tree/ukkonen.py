"""Ukkonen's online suffix tree construction.

The suffix tree ``ST(S)`` is the compacted trie of all suffixes of
``S`` (Section III).  Ukkonen's algorithm builds it online, one letter
at a time, in amortised O(n) — the property the paper's dynamic-USI
sketch (Section X) relies on.

Representation: array-based nodes.  Node 0 is the root.  Each node
stores its edge label as ``(start, end)`` half-open indices into the
text; leaves use ``end = None`` meaning "the current text end", so
every leaf edge grows implicitly with each extension (the classic
"once a leaf, always a leaf" trick).

``finalize()`` appends a unique sentinel so every suffix ends at a
leaf, then annotates nodes with parent, string depth and frequency
(= number of non-sentinel leaves below).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.errors import ConstructionError, NotBuiltError

_SENTINEL = -1  # compares differently from every alphabet code >= 0


class SuffixTree:
    """An online suffix tree over integer letter codes.

    Use :meth:`from_codes` for the common build-once case, or create an
    empty tree and :meth:`extend` letters one at a time.
    """

    def __init__(self) -> None:
        self.text: list[int] = []
        # Parallel node arrays.
        self._children: list[dict[int, int]] = [{}]
        self._start: list[int] = [0]
        self._end: list["int | None"] = [0]
        self._link: list[int] = [0]
        # Active point (Ukkonen state).
        self._active_node = 0
        self._active_edge = 0  # index into text of the active edge's first letter
        self._active_length = 0
        self._remainder = 0
        self._finalized = False
        # Annotations, filled by finalize().
        self._parent: "list[int] | None" = None
        self._depth: "list[int] | None" = None
        self._freq: "list[int] | None" = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_codes(cls, codes: "Sequence[int] | np.ndarray") -> "SuffixTree":
        """Build and finalize the suffix tree of *codes*."""
        tree = cls()
        for c in codes:
            tree.extend(int(c))
        tree.finalize()
        return tree

    def _new_node(self, start: int, end: "int | None") -> int:
        self._children.append({})
        self._start.append(start)
        self._end.append(end)
        self._link.append(0)
        return len(self._children) - 1

    def _edge_length(self, node: int) -> int:
        end = self._end[node]
        if end is None:
            end = len(self.text)
        return end - self._start[node]

    # Mutation hooks: no-ops here; online consumers (the Section-X
    # frequency tracker) override them to maintain counts incrementally.
    def _on_new_leaf(self, leaf: int, parent: int) -> None:
        """Called right after *leaf* is attached below *parent*."""

    def _on_split(self, split: int, parent: int, child: int) -> None:
        """Called right after *split* is inserted between *parent* and *child*."""

    def extend(self, letter: int) -> None:
        """Append one letter and update the tree (amortised O(1))."""
        if self._finalized:
            raise ConstructionError("cannot extend a finalized suffix tree")
        self.text.append(letter)
        pos = len(self.text) - 1
        self._remainder += 1
        last_internal: "int | None" = None

        while self._remainder > 0:
            if self._active_length == 0:
                self._active_edge = pos
            edge_letter = self.text[self._active_edge]
            child = self._children[self._active_node].get(edge_letter)

            if child is None:
                leaf = self._new_node(pos, None)
                self._children[self._active_node][edge_letter] = leaf
                self._on_new_leaf(leaf, self._active_node)
                if last_internal is not None:
                    self._link[last_internal] = self._active_node
                    last_internal = None
            else:
                edge_len = self._edge_length(child)
                if self._active_length >= edge_len:
                    # Walk down: the active point lies beyond this edge.
                    self._active_node = child
                    self._active_edge += edge_len
                    self._active_length -= edge_len
                    continue
                if self.text[self._start[child] + self._active_length] == letter:
                    # The letter is already on the edge: rule 3, stop early.
                    self._active_length += 1
                    if last_internal is not None:
                        self._link[last_internal] = self._active_node
                    break
                # Split the edge and hang a new leaf off the split node.
                split = self._new_node(
                    self._start[child], self._start[child] + self._active_length
                )
                self._children[self._active_node][edge_letter] = split
                self._on_split(split, self._active_node, child)
                leaf = self._new_node(pos, None)
                self._children[split][letter] = leaf
                self._start[child] += self._active_length
                self._children[split][self.text[self._start[child]]] = child
                self._on_new_leaf(leaf, split)
                if last_internal is not None:
                    self._link[last_internal] = split
                last_internal = split

            self._remainder -= 1
            if self._active_node == 0 and self._active_length > 0:
                self._active_length -= 1
                self._active_edge = pos - self._remainder + 1
            elif self._active_node != 0:
                self._active_node = self._link[self._active_node]

    def finalize(self) -> None:
        """Append the sentinel and annotate parents, depths, frequencies."""
        if self._finalized:
            return
        self.extend(_SENTINEL)
        self._finalized = True
        self._annotate()

    # ------------------------------------------------------------------
    # Annotation and traversal
    # ------------------------------------------------------------------
    def _annotate(self) -> None:
        count = len(self._children)
        parent = [0] * count
        depth = [0] * count
        freq = [0] * count
        order: list[int] = []  # nodes in DFS pre-order

        stack = [0]
        while stack:
            node = stack.pop()
            order.append(node)
            for child in self._children[node].values():
                parent[child] = node
                depth[child] = depth[node] + self._edge_length(child)
                stack.append(child)

        text_len = len(self.text)  # includes the sentinel
        for node in reversed(order):
            if not self._children[node]:
                # A leaf represents the suffix starting at
                # text_len - depth; the sentinel-only suffix is not a
                # real occurrence of anything, but its leaf still
                # carries frequency 1 for the strings above it only if
                # the leaf's suffix is a real suffix of S; the
                # sentinel-only leaf hangs off the root with depth 1,
                # so it never contributes to any non-empty substring.
                freq[node] = 1
            else:
                freq[node] = sum(freq[c] for c in self._children[node].values())
        self._parent = parent
        self._depth = depth
        self._freq = freq

    def _require_finalized(self) -> None:
        if not self._finalized:
            raise NotBuiltError("finalize() the suffix tree first")

    @property
    def node_count(self) -> int:
        return len(self._children)

    @property
    def sentinel_length(self) -> int:
        """Text length including the sentinel."""
        return len(self.text)

    def children(self, node: int) -> dict[int, int]:
        """The child map ``letter_code -> node`` of *node*."""
        return self._children[node]

    def parent(self, node: int) -> int:
        self._require_finalized()
        return self._parent[node]  # type: ignore[index]

    def string_depth(self, node: int) -> int:
        """``sd(node)``: length of the string the node's locus spells."""
        self._require_finalized()
        return self._depth[node]  # type: ignore[index]

    def frequency(self, node: int) -> int:
        """``f(node)``: leaves below the node (occurrences of its string)."""
        self._require_finalized()
        return self._freq[node]  # type: ignore[index]

    def is_leaf(self, node: int) -> bool:
        return not self._children[node]

    def suffix_index(self, leaf: int) -> int:
        """Start position of the suffix a *leaf* represents."""
        self._require_finalized()
        return len(self.text) - self._depth[leaf]  # type: ignore[index]

    def edge_label(self, node: int) -> list[int]:
        """The letter codes labelling the edge into *node*."""
        end = self._end[node]
        if end is None:
            end = len(self.text)
        return self.text[self._start[node] : end]

    def internal_nodes(self) -> Iterator[int]:
        """All explicit non-root internal nodes."""
        self._require_finalized()
        for node in range(1, self.node_count):
            if self._children[node]:
                yield node

    def leaves(self) -> Iterator[int]:
        self._require_finalized()
        for node in range(1, self.node_count):
            if not self._children[node]:
                yield node
