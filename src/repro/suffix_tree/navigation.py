"""Pattern matching and node enumeration over a suffix tree.

Separates the read-side operations (locate, count, explicit-node
statistics) from the construction machinery in
:mod:`repro.suffix_tree.ukkonen`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import PatternError
from repro.suffix_tree.ukkonen import SuffixTree


@dataclass(frozen=True)
class NodeStats:
    """Statistics of an explicit suffix-tree node, oracle-ready.

    Mirrors the triplet ``<v, f(v), q(v)>`` of Section V: ``q`` letters
    label the edge between the node and its parent, each representing a
    distinct substring with frequency ``frequency``.
    """

    node: int
    frequency: int
    string_depth: int
    parent_depth: int

    @property
    def edge_length(self) -> int:
        return self.string_depth - self.parent_depth


class SuffixTreeNavigator:
    """Locate/count queries and node statistics for a finalized tree."""

    def __init__(self, tree: SuffixTree) -> None:
        tree._require_finalized()
        self._tree = tree

    # ------------------------------------------------------------------
    # Locate
    # ------------------------------------------------------------------
    def _descend(self, pattern: "Sequence[int] | np.ndarray") -> "int | None":
        """The node whose subtree holds all occurrences of *pattern*.

        Returns ``None`` when the pattern does not occur.  When the
        pattern ends mid-edge the child node below that edge is
        returned (its subtree is exactly the occurrence set).
        """
        if len(pattern) == 0:
            raise PatternError("patterns must be non-empty")
        tree = self._tree
        node = 0
        i = 0
        m = len(pattern)
        while i < m:
            child = tree.children(node).get(int(pattern[i]))
            if child is None:
                return None
            label = tree.edge_label(child)
            span = min(len(label), m - i)
            for k in range(span):
                if label[k] != int(pattern[i + k]):
                    return None
            i += span
            node = child
        return node

    def occurrences(self, pattern: "Sequence[int] | np.ndarray") -> np.ndarray:
        """All starting positions of *pattern*, via leaf collection.

        O(m + occ): descend, then enumerate the subtree's leaves.
        """
        locus = self._descend(pattern)
        if locus is None:
            return np.empty(0, dtype=np.int64)
        tree = self._tree
        out: list[int] = []
        stack = [locus]
        while stack:
            node = stack.pop()
            kids = tree.children(node)
            if kids:
                stack.extend(kids.values())
            else:
                idx = tree.suffix_index(node)
                # The sentinel-only leaf (index n) is not an occurrence.
                if idx + len(pattern) <= tree.sentinel_length - 1:
                    out.append(idx)
        return np.asarray(sorted(out), dtype=np.int64)

    def count(self, pattern: "Sequence[int] | np.ndarray") -> int:
        """``|occ(pattern)|`` in O(m) using precomputed frequencies.

        The locus frequency counts leaves below it; when the pattern
        runs into the sentinel region (it cannot, as patterns never
        contain the sentinel) this equals the occurrence count.
        """
        locus = self._descend(pattern)
        if locus is None:
            return 0
        return self._tree.frequency(locus)

    def interval(self, pattern: "Sequence[int] | np.ndarray") -> tuple[int, int]:
        """A SuffixArray-compatible pseudo-interval ``(0, count - 1)``.

        Suffix trees have no SA row numbering without extra
        annotation; callers that only use interval *widths* (counts)
        work unchanged.
        """
        count = self.count(pattern)
        return (0, count - 1)

    def nbytes(self) -> int:
        """Analytic suffix-tree size (nodes + child maps + text)."""
        tree = self._tree
        return 88 * tree.node_count + 8 * tree.sentinel_length

    def contains(self, pattern: "Sequence[int] | np.ndarray") -> bool:
        return self._descend(pattern) is not None

    # ------------------------------------------------------------------
    # Node statistics (feed for the Section-V oracle's ST path)
    # ------------------------------------------------------------------
    def node_stats(self, include_leaves: bool = True) -> Iterator[NodeStats]:
        """Yield ``<v, f(v), sd(v), sd(p(v))>`` for explicit nodes.

        Nodes whose string consists purely of the sentinel (the
        sentinel-only leaf) are skipped, and leaf depths are clipped to
        exclude the sentinel letter so statistics refer to substrings
        of ``S`` only.
        """
        tree = self._tree
        for node in range(1, tree.node_count):
            is_leaf = tree.is_leaf(node)
            if is_leaf and not include_leaves:
                continue
            depth = tree.string_depth(node)
            parent_depth = tree.string_depth(tree.parent(node))
            if is_leaf:
                depth -= 1  # drop the sentinel letter from the leaf edge
                if depth <= parent_depth:
                    continue  # sentinel-only leaf or empty real edge
            yield NodeStats(
                node=node,
                frequency=tree.frequency(node),
                string_depth=depth,
                parent_depth=parent_depth,
            )
