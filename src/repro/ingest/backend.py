"""The ``live`` backend: a :class:`LiveIndex` behind the index protocol.

Registered like every other backend, so ``repro.build(...,
backend="live")`` returns an index that serves exact answers through
:class:`~repro.service.engine.QueryEngine` / the HTTP server *and*
keeps accepting documents.

Import discipline: this module is imported at the tail of
``repro.api.__init__`` (after the registry exists), so it must import
only ``repro.api`` *submodules*, never the package facade.
"""

from __future__ import annotations

from repro.api.adapters import DEFAULT_K, as_collection
from repro.api.protocol import Capabilities, UtilityIndexBase
from repro.api.registry import register_backend
from repro.ingest.live import LiveIndex


@register_backend("live", aliases=("ingest",))
class LiveBackend(UtilityIndexBase):
    """Live-ingest LSM-of-shards index (exact answers while growing)."""

    capabilities = Capabilities(
        batch=True, dynamic=True, collection=True, count=True, persistent=True
    )

    def __init__(self, inner: LiveIndex) -> None:
        self.inner = inner

    @classmethod
    def build(
        cls,
        source,
        *,
        k=None,
        tau=None,
        directory=None,
        wal_sync: bool = False,
        **options,
    ) -> "LiveBackend":
        """Seed a live index with *source*'s documents.

        With ``directory`` the index is durable (WAL + manifest under
        that path); without, it is a fully functional in-memory live
        index.  Further documents arrive via :meth:`append_document`.
        """
        collection = as_collection(source)
        if k is None:
            k = DEFAULT_K  # tau tuning applies to static builds only
        if directory is not None:
            live = LiveIndex.create(
                directory,
                collection.alphabet,
                wal_sync=wal_sync,
                k=int(k),
                **options,
            )
        else:
            live = LiveIndex(collection.alphabet, k=int(k), **options)
        for document in collection.documents:
            live.append_document(document.codes, document.utilities)
        return cls(live)

    def query(self, pattern) -> float:
        return float(self.inner.query(pattern))

    def query_batch(self, patterns) -> list[float]:
        return [float(v) for v in self.inner.query_batch(patterns)]

    def count(self, pattern) -> int:
        return int(self.inner.count(pattern))

    def append_document(self, text, utilities=None) -> int:
        """Ingest one document; returns its WAL sequence number."""
        return self.inner.append_document(text, utilities)

    def ingest_stats(self) -> dict:
        return self.inner.ingest_stats()

    def nbytes(self) -> None:
        return None  # spread across shards + a moving memtable

    def _stats_detail(self) -> dict:
        stats = self.inner.ingest_stats()
        return {
            "generation": stats["generation"],
            "shards": stats["shards"],
            "compactions": stats["compactions"],
            "last_seq": stats["last_seq"],
            "memtable_chars": stats["memtable"]["chars"],
        }
