"""The in-memory write buffer (memtable) of the live-ingest subsystem.

A :class:`MemtableDelta` wraps one
:class:`~repro.core.dynamic.DynamicUsiIndex` over the *extended*
alphabet of ``strings/collection.py`` — documents are appended joined
by the fresh separator letter, so query patterns (encoded through the
original alphabet) can never span two documents.  That is the same
invariant that makes sharded merges exact, and it is what lets a
:class:`~repro.ingest.live.LiveIndex` combine memtable answers with
sealed-shard answers without approximation.

The memtable also feeds a :class:`~repro.streaming.SpaceSaving`
sketch with fixed-length code windows of every ingested document.
The sketch costs O(1) per offered window and yields the *hot
substrings* of the current write burst — compaction hints used to
warm the fresh query cache after a generation swap.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.core.dynamic import DynamicUsiIndex
from repro.errors import ParameterError
from repro.streaming.space_saving import SpaceSaving
from repro.strings.alphabet import Alphabet
from repro.strings.weighted import WeightedString
from repro.utility.functions import AggregatorName

# Never offer more than this many windows per document to the hot
# sketch: the sketch is advisory, so sampling long documents keeps
# the per-append cost bounded without hurting correctness anywhere.
_MAX_HOT_WINDOWS_PER_DOC = 1024


class MemtableDelta:
    """One generation of the in-memory delta index.

    Parameters
    ----------
    alphabet:
        The *original* (query-side) alphabet; the internal text uses
        the extended alphabet with ``alphabet.size`` as separator.
    k:
        Top-K parameter forwarded to the delta's (re)builds.
    hot_capacity / hot_window:
        Size and window length of the hot-substring sketch
        (``hot_capacity=0`` disables tracking).
    """

    def __init__(
        self,
        alphabet: Alphabet,
        *,
        k: int,
        aggregator: "AggregatorName" = "sum",
        miner: str = "exact",
        seed: int = 0,
        hot_capacity: int = 64,
        hot_window: int = 4,
    ) -> None:
        self._alphabet = alphabet
        self._separator = alphabet.size
        extended = Alphabet(list(range(alphabet.size + 1)))
        # Seed with a lone separator: WeightedString must be non-empty,
        # and a separator matches no query pattern, so the seed is
        # invisible to every answer.
        seed_ws = WeightedString(
            np.asarray([self._separator], dtype=np.int32),
            np.asarray([1.0], dtype=np.float64),
            extended,
        )
        self._delta = DynamicUsiIndex(
            seed_ws, k=k, aggregator=aggregator, miner=miner, seed=seed
        )
        self._documents = 0
        self._chars = 0
        self._first_seq: "int | None" = None
        self._last_seq: "int | None" = None
        self._created_at = time.monotonic()
        self._hot_window = int(hot_window)
        self._hot = SpaceSaving(hot_capacity) if hot_capacity > 0 else None

    @classmethod
    def from_restore(
        cls,
        delta: DynamicUsiIndex,
        alphabet: Alphabet,
        *,
        first_seq: "int | None",
        last_seq: "int | None",
        documents: int,
        chars: int,
        hot_capacity: int = 64,
        hot_window: int = 4,
    ) -> "MemtableDelta":
        """Rewrap a checkpoint-restored delta index as a memtable.

        The hot sketch is advisory and restarts empty; everything that
        affects answers (the delta text) comes back exactly.
        """
        self = cls.__new__(cls)
        self._alphabet = alphabet
        self._separator = alphabet.size
        self._delta = delta
        self._documents = int(documents)
        self._chars = int(chars)
        self._first_seq = first_seq
        self._last_seq = last_seq
        self._created_at = time.monotonic()
        self._hot_window = int(hot_window)
        self._hot = SpaceSaving(hot_capacity) if hot_capacity > 0 else None
        return self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def alphabet(self) -> Alphabet:
        """The original (query-side) alphabet."""
        return self._alphabet

    @property
    def delta(self) -> DynamicUsiIndex:
        return self._delta

    @property
    def documents(self) -> int:
        return self._documents

    @property
    def chars(self) -> int:
        """Total document letters held (separators excluded)."""
        return self._chars

    @property
    def first_seq(self) -> "int | None":
        return self._first_seq

    @property
    def last_seq(self) -> "int | None":
        return self._last_seq

    @property
    def is_empty(self) -> bool:
        return self._documents == 0

    def age(self) -> float:
        """Seconds since this memtable generation was opened."""
        return time.monotonic() - self._created_at

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def add_document(
        self,
        seq: int,
        codes: np.ndarray,
        utilities: "Sequence[float] | np.ndarray | None" = None,
    ) -> None:
        """Append one encoded document (plus its trailing separator).

        Empty documents advance the sequence bookkeeping but add no
        text — they have no substrings, so indexing nothing *is* the
        exact answer.
        """
        codes = np.asarray(codes, dtype=np.int32)
        if utilities is None:
            utilities = np.ones(len(codes), dtype=np.float64)
        else:
            utilities = np.asarray(utilities, dtype=np.float64)
        if len(utilities) != len(codes):
            raise ParameterError("document codes and utilities must have equal length")
        if len(codes):
            self._delta.extend(codes, utilities)
            self._delta.append(self._separator, 1.0)
            self._chars += len(codes)
            self._track_hot(codes)
        self._documents += 1
        if self._first_seq is None:
            self._first_seq = int(seq)
        self._last_seq = int(seq)

    def _track_hot(self, codes: np.ndarray) -> None:
        if self._hot is None or len(codes) < self._hot_window:
            return
        windows = np.lib.stride_tricks.sliding_window_view(
            codes.astype(np.int64), self._hot_window
        )
        stride = max(1, len(windows) // _MAX_HOT_WINDOWS_PER_DOC)
        for window in windows[::stride]:
            self._hot.offer(tuple(int(c) for c in window))

    # ------------------------------------------------------------------
    # Reads (delegated to the delta index)
    # ------------------------------------------------------------------
    def query(self, codes: np.ndarray) -> float:
        return self._delta.query(codes)

    def query_batch(self, patterns: Sequence[np.ndarray]) -> list[float]:
        return self._delta.query_batch(patterns)

    def count(self, codes: np.ndarray) -> int:
        return self._delta.count(codes)

    def to_weighted_string(self) -> WeightedString:
        """The full memtable text (seed separator included)."""
        return self._delta.to_weighted_string()

    def hot_patterns(self, limit: "int | None" = None) -> list[tuple[list, int]]:
        """Hot substrings as ``(letters, estimated_count)``, hottest first."""
        if self._hot is None:
            return []
        ranked = []
        for window, estimate in self._hot.top(limit):
            letters = [self._alphabet.letter(code) for code in window]
            ranked.append((letters, int(estimate)))
        return ranked
