"""Background compaction for :class:`~repro.ingest.live.LiveIndex`.

One worker thread polls the live index; when the active memtable
crosses its size/age threshold the compactor seals it, rebuilds the
sealed text into a cold USI shard *outside* every lock (queries keep
being served by the frozen memtable meanwhile), and atomically
installs the shard.  If a registry is attached, the new generation is
published with :meth:`~repro.service.registry.IndexRegistry.replace`
— the zero-downtime hot-swap — and the fresh query engine is warmed
with the sealed memtable's hot substrings (the SpaceSaving compaction
hints), so the first queries after a swap hit a non-empty cache.
"""

from __future__ import annotations

import threading

from repro.ingest.live import LiveIndex


class Compactor:
    """Drives seal → build → install cycles for one live index.

    Parameters
    ----------
    live:
        The index to compact.
    registry / name:
        Optional :class:`~repro.service.registry.IndexRegistry` and
        the name the index is registered under; each installed shard
        then publishes a new generation via ``registry.replace`` and
        warms the new engine's cache.
    index:
        The exact object registered under *name* (usually the
        protocol adapter wrapping *live*); defaults to *live*.
    interval:
        Poll period in seconds for the background thread.
    """

    def __init__(
        self,
        live: LiveIndex,
        *,
        registry=None,
        name: "str | None" = None,
        index=None,
        interval: float = 0.25,
        warm_limit: int = 8,
    ) -> None:
        self._live = live
        self._registry = registry
        self._name = name
        self._index = index if index is not None else live
        self._interval = float(interval)
        self._warm_limit = int(warm_limit)
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None
        self.cycles = 0
        self.compactions = 0
        self.last_error: "Exception | None" = None

    # ------------------------------------------------------------------
    # One cycle (also the synchronous entry point for tests / CLI)
    # ------------------------------------------------------------------
    def run_once(self, force: bool = False) -> bool:
        """Seal/build/install one generation if due; True if it ran."""
        self.cycles += 1
        if not force and not self._live.should_seal():
            return False
        sealed = self._live.seal()
        if sealed is None:
            return False
        hot = sealed.hot_patterns(self._warm_limit)
        shard = self._live.build_shard(sealed)  # expensive, lock-free
        self._live.install_shard(sealed, shard)
        self.compactions += 1
        self._publish(hot)
        return True

    def _publish(self, hot: list) -> None:
        if self._registry is None or self._name is None:
            return
        self._registry.replace(self._name, self._index)
        if not hot:
            return
        patterns = []
        for letters, _ in hot:
            if letters and isinstance(letters[0], str):
                patterns.append("".join(letters))
            else:
                patterns.append(list(letters))
        try:
            engine = self._registry.get(self._name)
            engine.query_batch(patterns)
        except Exception as exc:  # warming is best-effort, never fatal
            self.last_error = exc

    # ------------------------------------------------------------------
    # Background thread
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="usi-compactor", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self.run_once()
            except Exception as exc:  # keep compacting on later cycles
                self.last_error = exc

    def stop(self) -> None:
        """Stop the background thread (waits for an in-flight cycle)."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join()
            self._thread = None

    def __enter__(self) -> "Compactor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
