"""Background compaction for :class:`~repro.ingest.live.LiveIndex`.

One worker thread polls the live index; when the active memtable
crosses its size/age threshold the compactor seals it, rebuilds the
sealed text into a cold USI shard *outside* every lock (queries keep
being served by the frozen memtable meanwhile), and atomically
installs the shard.  If a registry is attached, the new generation is
published with :meth:`~repro.service.registry.IndexRegistry.replace`
— the zero-downtime hot-swap — and the fresh query engine is warmed
with the sealed memtable's hot substrings (the SpaceSaving compaction
hints), so the first queries after a swap hit a non-empty cache.

Failure containment: a build that blows up never interrupts serving —
the sealed memtable keeps answering queries while the build is
retried with capped exponential backoff, and after
``max_build_attempts`` failures the memtable is quarantined
(:meth:`LiveIndex.quarantine`: still queryable, never compacted
again) so one poison generation cannot wedge the compactor forever.
Only the *build* is retried; installs are not, because re-running an
install after a partial success could register the same shard twice
and change answers.
"""

from __future__ import annotations

import threading
import time

from repro import faults
from repro.ingest.live import LiveIndex
from repro.service.resilience import Backoff


class Compactor:
    """Drives seal → build → install cycles for one live index.

    Parameters
    ----------
    live:
        The index to compact.
    registry / name:
        Optional :class:`~repro.service.registry.IndexRegistry` and
        the name the index is registered under; each installed shard
        then publishes a new generation via ``registry.replace`` and
        warms the new engine's cache.
    index:
        The exact object registered under *name* (usually the
        protocol adapter wrapping *live*); defaults to *live*.
    interval:
        Poll period in seconds for the background thread.
    max_build_attempts:
        Build failures tolerated per sealed memtable before it is
        quarantined.
    backoff:
        Injectable :class:`~repro.service.resilience.Backoff` pacing
        build retries (tests pass a fast one).
    clock:
        Injectable monotonic clock for retry scheduling (tests).
    """

    def __init__(
        self,
        live: LiveIndex,
        *,
        registry=None,
        name: "str | None" = None,
        index=None,
        interval: float = 0.25,
        warm_limit: int = 8,
        max_build_attempts: int = 3,
        backoff: "Backoff | None" = None,
        clock=time.monotonic,
    ) -> None:
        self._live = live
        self._registry = registry
        self._name = name
        self._index = index if index is not None else live
        self._interval = float(interval)
        self._warm_limit = int(warm_limit)
        self._max_build_attempts = max(1, int(max_build_attempts))
        self._backoff = (
            backoff if backoff is not None else Backoff(base=0.1, max_delay=5.0)
        )
        self._clock = clock
        # Sealed memtables whose build failed and is awaiting retry:
        # [sealed, hot, attempts, not_before] rows, oldest first.
        self._pending: list[list] = []
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None
        self.cycles = 0
        self.compactions = 0
        self.build_failures = 0
        self.retries = 0
        self.quarantines = 0
        self.last_error: "Exception | None" = None

    # ------------------------------------------------------------------
    # One cycle (also the synchronous entry point for tests / CLI)
    # ------------------------------------------------------------------
    def run_once(self, force: bool = False) -> bool:
        """Seal/build/install one generation if due; True if any ran.

        Retries due pending builds first, so a recovered fault drains
        the backlog before new generations pile on.
        """
        self.cycles += 1
        progressed = self._retry_pending()
        if not force and not self._live.should_seal():
            return progressed
        sealed = self._live.seal()
        if sealed is None:
            return progressed
        hot = sealed.hot_patterns(self._warm_limit)
        return self._attempt([sealed, hot, 0, 0.0]) or progressed

    def _retry_pending(self) -> bool:
        progressed = False
        now = self._clock()
        for row in list(self._pending):
            if row[3] > now:
                continue
            self.retries += 1
            progressed = self._attempt(row) or progressed
        return progressed

    def _attempt(self, row: list) -> bool:
        """Build+install one sealed memtable; contain a build failure."""
        sealed, hot = row[0], row[1]
        try:
            faults.fire("compactor.build")
            shard = self._live.build_shard(sealed)  # expensive, lock-free
        except Exception as exc:
            self.build_failures += 1
            self.last_error = exc
            row[2] += 1
            if row[2] >= self._max_build_attempts:
                if row in self._pending:
                    self._pending.remove(row)
                self._live.quarantine(sealed)
                self.quarantines += 1
            else:
                row[3] = self._clock() + self._backoff.next_delay()
                if row not in self._pending:
                    self._pending.append(row)
            return False
        if row in self._pending:
            self._pending.remove(row)
        self._backoff.reset()
        self._live.install_shard(sealed, shard)
        self.compactions += 1
        self._publish(hot)
        return True

    def _publish(self, hot: list) -> None:
        if self._registry is None or self._name is None:
            return
        self._registry.replace(self._name, self._index)
        if not hot:
            return
        patterns = []
        for letters, _ in hot:
            if letters and isinstance(letters[0], str):
                patterns.append("".join(letters))
            else:
                patterns.append(list(letters))
        try:
            engine = self._registry.get(self._name)
            engine.query_batch(patterns)
        except Exception as exc:  # warming is best-effort, never fatal
            self.last_error = exc

    # ------------------------------------------------------------------
    # Background thread
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="usi-compactor", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self.run_once()
            except Exception as exc:  # keep compacting on later cycles
                self.last_error = exc

    def stop(self) -> None:
        """Stop the background thread (waits for an in-flight cycle)."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join()
            self._thread = None

    def stats(self) -> dict:
        return {
            "cycles": self.cycles,
            "compactions": self.compactions,
            "build_failures": self.build_failures,
            "retries": self.retries,
            "quarantines": self.quarantines,
            "pending_builds": len(self._pending),
            "last_error": (
                None if self.last_error is None else str(self.last_error)
            ),
        }

    def __enter__(self) -> "Compactor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
