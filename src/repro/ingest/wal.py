"""A segmented, fsync-able write-ahead log for ingested documents.

The durability half of the live-ingest subsystem: every appended
document is written here *before* it is applied to the in-memory
memtable, so a crashed ingester replays the log and reaches exactly
the pre-crash state (:meth:`replay`).

Format
------
One record per line::

    crc32hex {"q": seq, "c": [codes...], "u": [utilities...] | null}

* ``q`` — the document's monotonically increasing sequence number;
* ``c`` — the document as alphabet codes (empty for empty documents,
  which carry a sequence number but no text);
* ``u`` — per-position utilities, or ``null`` for uniform 1.0.

The CRC covers the JSON payload bytes, so a torn final write (the
only corruption a crashed-but-sane filesystem produces on an
append-only file) is detected and truncated away on replay; a bad
record anywhere *else* is real corruption and raises.

Segments
--------
The log is a directory of ``wal-NNNNNNNN.log`` files.  The compactor
calls :meth:`rotate` when it seals a memtable, so each segment holds
the documents of (at most) one memtable generation; once those
documents are safely rebuilt into a cold shard, :meth:`prune` deletes
every closed segment whose records are all covered by the shards.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro import faults
from repro.errors import ParameterError

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"


class WalRecord:
    """One replayed document: ``(seq, codes, utilities-or-None)``."""

    __slots__ = ("seq", "codes", "utilities")

    def __init__(self, seq: int, codes: np.ndarray, utilities: "np.ndarray | None"):
        self.seq = seq
        self.codes = codes
        self.utilities = utilities


def _segment_name(number: int) -> str:
    return f"{_SEGMENT_PREFIX}{number:08d}{_SEGMENT_SUFFIX}"


def _segment_number(path: Path) -> int:
    return int(path.name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)])


def _encode_record(seq: int, codes, utilities) -> bytes:
    payload = json.dumps(
        {
            "q": int(seq),
            "c": [int(c) for c in codes],
            "u": None if utilities is None else [float(u) for u in utilities],
        },
        separators=(",", ":"),
    ).encode()
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return b"%08x " % crc + payload + b"\n"


def _decode_line(line: bytes) -> "WalRecord | None":
    """Parse one record line; ``None`` means malformed (torn or corrupt)."""
    if not line.endswith(b"\n") or len(line) < 10 or line[8:9] != b" ":
        return None
    payload = line[9:-1]
    try:
        crc = int(line[:8], 16)
    except ValueError:
        return None
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        return None
    try:
        record = json.loads(payload)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict) or "q" not in record or "c" not in record:
        return None
    codes = np.asarray(record["c"], dtype=np.int32)
    utilities = record.get("u")
    if utilities is not None:
        utilities = np.asarray(utilities, dtype=np.float64)
        if len(utilities) != len(codes):
            return None
    return WalRecord(int(record["q"]), codes, utilities)


class WriteAheadLog:
    """Append-only segmented document log under one directory.

    Parameters
    ----------
    directory:
        Where segments live; created if missing.
    sync:
        ``fsync`` after every append.  Off by default (flush-only):
        an OS crash may then lose the last few documents, but a mere
        process crash never loses an acknowledged append.
    """

    def __init__(self, directory: "str | Path", sync: bool = False) -> None:
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._sync = bool(sync)
        self._handle = None
        self._active_path: "Path | None" = None
        # Set after a failed write: (segment, last clean offset); the
        # next append or rotation truncates the suspect tail away.
        self._repair: "tuple[Path, int] | None" = None
        # Last sequence number seen per closed segment (known for
        # replayed and rotated segments; needed by prune).
        self._last_seq: dict[Path, int] = {}
        existing = self.segments()
        self._next_number = (
            _segment_number(existing[-1]) + 1 if existing else 1
        )

    @property
    def directory(self) -> Path:
        return self._dir

    def segments(self) -> list[Path]:
        """All segment files, oldest first."""
        return sorted(
            p
            for p in self._dir.iterdir()
            if p.name.startswith(_SEGMENT_PREFIX)
            and p.name.endswith(_SEGMENT_SUFFIX)
        )

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, seq: int, codes, utilities=None) -> None:
        """Durably record one document before it is applied.

        Raises :class:`OSError` when the write fails (disk full, torn
        write); the record is then *not* acknowledged — ``_last_seq``
        is untouched, and callers must not apply the document.  The
        segment tail is suspect after a failure (a partial record may
        have reached the disk): the next append repairs it by
        truncating back to the last clean offset, and if the process
        dies first, :meth:`replay` truncates the torn line on
        recovery.  Either way no later record can merge into the torn
        bytes.
        """
        # Chaos site: an "error" fault (e.g. ENOSPC) raises before any
        # byte lands; a "torn" fault is handled below — half the record
        # reaches the file and the append still fails, exactly the
        # state a mid-write crash leaves behind.
        fault = faults.fire("wal.append")
        if self._handle is None:
            self._open_segment()
        data = _encode_record(seq, codes, utilities)
        clean_offset = self._handle.tell()
        try:
            if fault is not None and fault.kind == "torn":
                self._handle.write(data[: max(len(data) // 2, 1)])
                self._handle.flush()
                raise OSError(
                    f"short write to {self._active_path.name}"
                    " (injected torn tail)"
                )
            self._handle.write(data)
            self._handle.flush()
            if self._sync:
                os.fsync(self._handle.fileno())
        except OSError:
            self._repair = (self._active_path, clean_offset)
            try:
                self._handle.close()
            except OSError:  # pragma: no cover - double-fault close
                pass
            self._handle = None
            self._active_path = None
            raise
        self._last_seq[self._active_path] = int(seq)

    def _open_segment(self) -> None:
        if self._repair is not None:
            path, offset = self._repair
            self._repair = None
            with open(path, "r+b") as handle:
                handle.truncate(offset)
            self._active_path = path
        else:
            self._active_path = self._dir / _segment_name(self._next_number)
            self._next_number += 1
        self._handle = open(self._active_path, "ab")

    def rotate(self) -> None:
        """Close the active segment; the next append opens a fresh one.

        Called at memtable seal time so one segment maps to one sealed
        memtable and becomes prunable the moment its shard lands.
        """
        if self._repair is not None:
            path, offset = self._repair
            self._repair = None
            try:
                with open(path, "r+b") as handle:
                    handle.truncate(offset)
            except OSError:  # pragma: no cover - replay will repair it
                pass
        if self._handle is not None:
            if self._sync:
                os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None
            self._active_path = None

    def prune(self, upto_seq: int) -> int:
        """Delete closed segments whose every record has ``seq <= upto_seq``.

        Returns the number of segments removed.  The active segment is
        never touched; segments whose last sequence number is unknown
        (not replayed, not written by this process) are kept.
        """
        removed = 0
        for path in self.segments():
            if path == self._active_path:
                continue
            last = self._last_seq.get(path)
            if last is None or last > upto_seq:
                continue
            path.unlink(missing_ok=True)
            self._last_seq.pop(path, None)
            removed += 1
        return removed

    def close(self) -> None:
        self.rotate()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def replay(self) -> Iterator[WalRecord]:
        """Yield every logged document, oldest first.

        A malformed record at the very end of the *last* segment is a
        torn final write: it is truncated away and replay ends
        cleanly.  A malformed record anywhere else is corruption and
        raises :class:`~repro.errors.ParameterError`.
        """
        segments = self.segments()
        for index, path in enumerate(segments):
            is_last_segment = index == len(segments) - 1
            with open(path, "rb") as handle:
                lines = handle.readlines()
            offset = 0
            for line_index, line in enumerate(lines):
                record = _decode_line(line)
                if record is None:
                    if is_last_segment and line_index == len(lines) - 1:
                        # Torn final write: drop it and stop.
                        with open(path, "ab") as handle:
                            handle.truncate(offset)
                        return
                    raise ParameterError(
                        f"corrupt WAL record in {path.name} "
                        f"(line {line_index + 1})"
                    )
                offset += len(line)
                self._last_seq[path] = record.seq
                yield record

    def last_sequence(self) -> int:
        """Highest sequence number known to the log (0 when empty)."""
        return max(self._last_seq.values(), default=0)


def replay_all(log: WriteAheadLog) -> "list[WalRecord]":
    """Materialise :meth:`WriteAheadLog.replay` (small logs, tests)."""
    return list(log.replay())
