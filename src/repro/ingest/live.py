"""`LiveIndex`: exact answers while the corpus grows (LSM-of-shards).

The write path is a miniature LSM tree over whole documents::

    append ──> WAL ──> active memtable ──seal──> frozen memtable
                                                    │  (background build)
                                                    ▼
                                              cold USI shard
                                                    │  (atomic install)
                                                    ▼
                                              shard list + manifest

Reads fan out over *every* level — cold shards, frozen memtables
awaiting compaction, and the active memtable — and merge with
:func:`~repro.utility.functions.merge_partial_answers`.  The merge is
exact because documents are joined around the fresh separator letter
of ``strings/collection.py``: a pattern encoded through the original
alphabet can never contain the separator, so no occurrence spans two
documents, and the global occurrence multiset is the disjoint union
of the per-level multisets.  Answers also do not depend on document
*order* within a level (only on the multiset of documents), which is
what makes crash recovery free to replay documents in WAL order.

Durability: an append is WAL-logged before it is applied;
:meth:`LiveIndex.open` replays the log (and an optional v4 delta
checkpoint, which lets it skip most of the replay) back to the exact
pre-crash answer state.  Compaction never changes answers — it only
moves documents from a memtable into a cold shard — so installing a
shard does not bump :meth:`data_version` and never invalidates query
caches.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Sequence

import numpy as np

import repro.io as repro_io
from repro.core.usi import UsiIndex
from repro.errors import ParameterError
from repro.ingest.memtable import MemtableDelta
from repro.ingest.wal import WriteAheadLog
from repro.strings.alphabet import Alphabet
from repro.utility.functions import (
    AggregatorName,
    make_global_utility,
    merge_partial_answers,
)

MANIFEST_NAME = "MANIFEST.json"
CHECKPOINT_NAME = "checkpoint.npz"
DEFAULT_SEAL_CHARS = 1 << 16


def _alphabet_meta(alphabet: Alphabet) -> dict:
    letters = alphabet.letters
    kind = "str" if letters and isinstance(letters[0], str) else "int"
    return {"letters_kind": kind, "letters": [str(letter) for letter in letters]}


def _alphabet_from_meta(meta: dict) -> Alphabet:
    if meta["letters_kind"] == "int":
        return Alphabet([int(letter) for letter in meta["letters"]])
    return Alphabet(list(meta["letters"]))


class LiveIndex:
    """A continuously-ingesting utility index with exact answers.

    Construct in-memory with the constructor, durable with
    :meth:`create`, and recover a durable one with :meth:`open`.
    Thread-safe: appends, queries, and compaction steps may interleave
    freely; queries see every acknowledged append and are never
    blocked by a compaction build (which runs outside the lock).
    """

    def __init__(
        self,
        alphabet: Alphabet,
        *,
        k: int,
        aggregator: "AggregatorName" = "sum",
        miner: str = "exact",
        seed: int = 0,
        seal_chars: int = DEFAULT_SEAL_CHARS,
        seal_age: "float | None" = None,
        hot_capacity: int = 64,
        hot_window: int = 4,
    ) -> None:
        if seal_chars < 1:
            raise ParameterError("seal_chars must be positive")
        self._alphabet = alphabet
        self._k = int(k)
        self._utility = make_global_utility(aggregator)
        self._miner = miner
        self._seed = int(seed)
        self._seal_chars = int(seal_chars)
        self._seal_age = seal_age
        self._hot_capacity = int(hot_capacity)
        self._hot_window = int(hot_window)

        self._lock = threading.RLock()
        self._memtable = self._new_memtable()
        self._frozen: list[MemtableDelta] = []
        # Sealed memtables whose shard build keeps failing; still
        # queryable (answers stay exact), just never compacted again.
        self._quarantined: list[MemtableDelta] = []
        # Sequence ranges [first, last] that later compactions pushed
        # ``compacted_seq`` past but that live in NO installed shard
        # (quarantined memtables, including ones from before a
        # restart).  WAL pruning never crosses a hole and replay
        # re-applies records inside one.
        self._holes: "list[list[int]]" = []
        self._shards: list[UsiIndex] = []
        self._shard_files: list[str] = []
        self._next_shard_number = 1
        self._seq = 0
        self._compacted_seq = 0
        self._appends = 0
        self._generation = 1
        self._seals = 0
        self._compactions = 0
        self._checkpoint_meta: "dict | None" = None

        self._directory: "Path | None" = None
        self._wal: "WriteAheadLog | None" = None
        self._wal_sync = False

    def _new_memtable(self) -> MemtableDelta:
        return MemtableDelta(
            self._alphabet,
            k=self._k,
            aggregator=self._utility.name,
            miner=self._miner,
            seed=self._seed,
            hot_capacity=self._hot_capacity,
            hot_window=self._hot_window,
        )

    # ------------------------------------------------------------------
    # Durable construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: "str | Path",
        alphabet: Alphabet,
        *,
        wal_sync: bool = False,
        **options,
    ) -> "LiveIndex":
        """Create a new durable live index rooted at *directory*."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        if (directory / MANIFEST_NAME).exists():
            raise ParameterError(
                f"{directory} already holds a live index; use LiveIndex.open"
            )
        self = cls(alphabet, **options)
        self._directory = directory
        self._wal_sync = bool(wal_sync)
        self._wal = WriteAheadLog(directory / "wal", sync=wal_sync)
        self._write_manifest()
        return self

    @classmethod
    def open(
        cls, directory: "str | Path", *, wal_sync: bool = False
    ) -> "LiveIndex":
        """Recover a durable live index to its exact pre-crash state.

        Cold shards load from their ``.npz`` files; the memtable comes
        back from the v4 delta checkpoint when one is fresh (its
        sequence range not yet covered by shards), and the WAL fills
        in everything else — documents already restored by the
        checkpoint or already compacted into shards are skipped by
        sequence number.
        """
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise ParameterError(f"{directory} holds no live index manifest")
        manifest = json.loads(manifest_path.read_text())
        alphabet = _alphabet_from_meta(manifest["alphabet"])
        self = cls(
            alphabet,
            k=manifest["k"],
            aggregator=manifest["aggregator"],
            miner=manifest["miner"],
            seed=manifest["seed"],
            seal_chars=manifest["seal_chars"],
            seal_age=manifest.get("seal_age"),
            hot_capacity=manifest.get("hot_capacity", 64),
            hot_window=manifest.get("hot_window", 4),
        )
        self._directory = directory
        self._wal_sync = bool(wal_sync)
        self._compacted_seq = int(manifest["compacted_seq"])
        self._holes = [
            [int(first), int(last)]
            for first, last in manifest.get("quarantined_holes", [])
        ]
        self._generation = int(manifest["generation"])
        self._seals = int(manifest["seals"])
        self._compactions = int(manifest["compactions"])
        self._next_shard_number = int(manifest["next_shard_number"])
        for filename in manifest["shards"]:
            shard = repro_io.load_index(directory / filename)
            self._shards.append(shard)
            self._shard_files.append(filename)

        # Fresh checkpoint? Restore the memtable from it and remember
        # its contiguous sequence range so replay can skip it.  A seal
        # always takes the whole memtable, so a checkpoint is either
        # fully covered by shards (stale) or fully fresh.
        checkpoint_range: "tuple[int, int] | None" = None
        checkpoint_meta = manifest.get("checkpoint")
        if checkpoint_meta:
            checkpoint_path = directory / checkpoint_meta["file"]
            if checkpoint_path.exists():
                delta, extra = repro_io.load_dynamic_index(checkpoint_path)
                if extra and int(extra["last_seq"]) > self._compacted_seq:
                    self._memtable = MemtableDelta.from_restore(
                        delta,
                        alphabet,
                        first_seq=int(extra["first_seq"]),
                        last_seq=int(extra["last_seq"]),
                        documents=int(extra["documents"]),
                        chars=int(extra["chars"]),
                        hot_capacity=self._hot_capacity,
                        hot_window=self._hot_window,
                    )
                    self._checkpoint_meta = checkpoint_meta
                    checkpoint_range = (
                        int(extra["first_seq"]),
                        int(extra["last_seq"]),
                    )

        self._wal = WriteAheadLog(directory / "wal", sync=wal_sync)
        last_seq = self._compacted_seq
        if checkpoint_range is not None:
            last_seq = max(last_seq, checkpoint_range[1])
        for record in self._wal.replay():
            last_seq = max(last_seq, record.seq)
            in_hole = any(
                first <= record.seq <= last for first, last in self._holes
            )
            if record.seq <= self._compacted_seq and not in_hole:
                continue  # already in a cold shard
            if (
                checkpoint_range is not None
                and checkpoint_range[0] <= record.seq <= checkpoint_range[1]
            ):
                continue  # already restored from the checkpoint
            self._memtable.add_document(record.seq, record.codes, record.utilities)
        self._seq = last_seq
        return self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def alphabet(self) -> Alphabet:
        """The original (query-side) alphabet."""
        return self._alphabet

    @property
    def utility_name(self) -> str:
        return self._utility.name

    @property
    def k(self) -> int:
        return self._k

    @property
    def directory(self) -> "Path | None":
        return self._directory

    @property
    def generation(self) -> int:
        return self._generation

    @property
    def last_seq(self) -> int:
        return self._seq

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def data_version(self) -> int:
        """Monotone counter that moves exactly when answers may change.

        Appends bump it; compactions do not (they relocate documents
        without changing any answer), so engine-level query caches
        survive generation swaps.
        """
        return self._appends

    def ingest_stats(self) -> dict:
        with self._lock:
            memtable = self._memtable
            hot = []
            for letters, estimate in memtable.hot_patterns(8):
                if letters and isinstance(letters[0], str):
                    pattern = "".join(letters)
                else:
                    pattern = list(letters)
                hot.append({"pattern": pattern, "estimate": estimate})
            return {
                "last_seq": self._seq,
                "appends": self._appends,
                "compacted_seq": self._compacted_seq,
                "generation": self._generation,
                "seals": self._seals,
                "compactions": self._compactions,
                "shards": len(self._shards),
                "frozen_memtables": len(self._frozen),
                "quarantined": len(self._quarantined),
                "memtable": {
                    "documents": memtable.documents,
                    "chars": memtable.chars,
                    "first_seq": memtable.first_seq,
                    "last_seq": memtable.last_seq,
                },
                "wal_segments": (
                    len(self._wal.segments()) if self._wal is not None else 0
                ),
                "hot_patterns": hot,
            }

    def hot_patterns(self, limit: int = 8) -> list:
        """Current hot substrings (query-ready), hottest first."""
        with self._lock:
            ranked = self._memtable.hot_patterns(limit)
        patterns = []
        for letters, _ in ranked:
            if letters and isinstance(letters[0], str):
                patterns.append("".join(letters))
            else:
                patterns.append(list(letters))
        return patterns

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def append_document(
        self,
        text: "str | bytes | Sequence[int] | np.ndarray",
        utilities: "Sequence[float] | np.ndarray | None" = None,
    ) -> int:
        """Ingest one document; returns its sequence number.

        The document is WAL-logged before it is applied, so an
        acknowledged append survives a process crash.  Letters must
        belong to the index's alphabet (fixed at creation); utilities
        default to uniform 1.0.  Integer ndarrays pass through as
        already-encoded codes (the usual passthrough idiom).
        """
        if isinstance(text, np.ndarray) and np.issubdtype(text.dtype, np.integer):
            codes = text.astype(np.int32, copy=False)
            if codes.size and (
                int(codes.min()) < 0 or int(codes.max()) >= self._alphabet.size
            ):
                raise ParameterError("document codes outside the alphabet")
        else:
            codes = self._alphabet.encode(text)
        if utilities is not None and len(utilities) != len(codes):
            raise ParameterError(
                "document utilities must match the document length"
            )
        with self._lock:
            seq = self._seq + 1
            if self._wal is not None:
                self._wal.append(seq, codes, utilities)
            self._memtable.add_document(seq, codes, utilities)
            self._seq = seq
            self._appends += 1
        return seq

    # ------------------------------------------------------------------
    # Read fan-out
    # ------------------------------------------------------------------
    def _encode(self, pattern) -> "np.ndarray | None":
        return self._alphabet.try_encode_pattern(pattern)

    def _parts(self) -> list:
        """Snapshot every queryable level (cheap; under the lock)."""
        with self._lock:
            return [
                *self._shards,
                *[frozen.delta for frozen in self._frozen],
                *[poisoned.delta for poisoned in self._quarantined],
                self._memtable.delta,
            ]

    def query(self, pattern) -> float:
        """The global utility ``U(pattern)`` over the live corpus."""
        codes = self._encode(pattern)
        if codes is None:
            return self._utility.identity
        parts = self._parts()
        values = [part.query(codes) for part in parts]
        if self._utility.name == "sum":
            return float(sum(values))
        counts = [part.count(codes) for part in parts]
        return merge_partial_answers(self._utility, values, counts)

    def query_batch(self, patterns: Sequence) -> list[float]:
        """Batch query; identical answers to per-pattern :meth:`query`."""
        encoded = [self._encode(pattern) for pattern in patterns]
        results = [self._utility.identity] * len(patterns)
        slots = [i for i, codes in enumerate(encoded) if codes is not None]
        if not slots:
            return results
        live = [encoded[i] for i in slots]
        parts = self._parts()
        per_part = [part.query_batch(live) for part in parts]
        if self._utility.name == "sum":
            merged = np.asarray(per_part, dtype=np.float64).sum(axis=0)
            for slot, value in zip(slots, merged.tolist()):
                results[slot] = float(value)
            return results
        for j, slot in enumerate(slots):
            values = [answers[j] for answers in per_part]
            counts = [part.count(live[j]) for part in parts]
            results[slot] = merge_partial_answers(self._utility, values, counts)
        return results

    def count(self, pattern) -> int:
        """``|occ(pattern)|`` over the live corpus (exact)."""
        codes = self._encode(pattern)
        if codes is None:
            return 0
        return sum(part.count(codes) for part in self._parts())

    # ------------------------------------------------------------------
    # Compaction steps (driven by repro.ingest.compactor or tests)
    # ------------------------------------------------------------------
    def should_seal(self) -> bool:
        with self._lock:
            memtable = self._memtable
            if memtable.is_empty and memtable.chars == 0:
                return False
            if memtable.chars >= self._seal_chars:
                return True
            if (
                self._seal_age is not None
                and memtable.age() >= self._seal_age
            ):
                return True
            return False

    def seal(self) -> "MemtableDelta | None":
        """Freeze the active memtable and open a fresh one.

        The frozen memtable stays fully queryable while its cold
        shard is built in the background.  Returns ``None`` when
        there is nothing to seal.
        """
        with self._lock:
            memtable = self._memtable
            if memtable.is_empty and memtable.chars == 0:
                return None
            self._memtable = self._new_memtable()
            self._frozen.append(memtable)
            self._seals += 1
            if self._wal is not None:
                self._wal.rotate()
            return memtable

    def build_shard(self, sealed: MemtableDelta) -> "UsiIndex | None":
        """Rebuild a sealed memtable into a cold shard (no locks held).

        This is the expensive step; it runs on the compactor's worker
        thread while queries keep being served from the frozen
        memtable.  Returns ``None`` for all-empty-document memtables.
        """
        if sealed.chars == 0:
            return None
        return UsiIndex.build(
            sealed.to_weighted_string(),
            k=self._k,
            miner=self._miner,
            aggregator=self._utility.name,
            seed=self._seed,
        )

    def install_shard(
        self, sealed: MemtableDelta, shard: "UsiIndex | None"
    ) -> None:
        """Atomically swap a frozen memtable for its cold shard.

        Answers are unchanged by construction (the shard indexes
        exactly the sealed memtable's text), so the swap is invisible
        to queries and never invalidates caches.  Durability order:
        shard file first, then the manifest that references it, then
        WAL pruning — a crash between any two steps recovers exactly.
        """
        filename = None
        if shard is not None and self._directory is not None:
            filename = f"shard-{self._next_shard_number:06d}.npz"
            repro_io.save_index(shard, self._directory / filename)
        with self._lock:
            if sealed in self._frozen:
                self._frozen.remove(sealed)
            if shard is not None:
                self._shards.append(shard)
                self._next_shard_number += 1
                if filename is not None:
                    self._shard_files.append(filename)
            if sealed.last_seq is not None:
                self._compacted_seq = max(self._compacted_seq, sealed.last_seq)
            if sealed.first_seq is not None:
                # Holes inside the installed range are durable now
                # (post-restart, replayed quarantined documents live in
                # the memtable that just became this shard).
                self._holes = [
                    hole
                    for hole in self._holes
                    if not (
                        sealed.first_seq <= hole[0]
                        and hole[1] <= sealed.last_seq
                    )
                ]
            self._generation += 1
            self._compactions += 1
            # Pruning never crosses a hole: a quarantined memtable's
            # documents exist only in RAM and its WAL records.
            upto = self._compacted_seq
            for hole in self._holes:
                upto = min(upto, hole[0] - 1)
        if self._directory is not None:
            self._write_manifest()
            if self._wal is not None:
                self._wal.prune(upto)

    def quarantine(self, sealed: MemtableDelta) -> None:
        """Set aside a sealed memtable whose shard build keeps failing.

        The memtable stays in the read fan-out, so every answer is
        still exact — the only cost is that its documents are served
        from the delta structure instead of a cold shard.  Its
        sequence range is recorded as a manifest *hole*: WAL pruning
        never crosses it and replay re-applies it, so a restart brings
        its documents back into the active memtable with answers
        unchanged.
        """
        with self._lock:
            if sealed in self._frozen:
                self._frozen.remove(sealed)
            if sealed in self._quarantined:
                return
            self._quarantined.append(sealed)
            if sealed.first_seq is not None:
                self._holes.append([sealed.first_seq, sealed.last_seq])
        self._write_manifest()

    def compact(self) -> bool:
        """Seal + build + install synchronously; True if anything moved."""
        sealed = self.seal()
        if sealed is None:
            return False
        shard = self.build_shard(sealed)
        self.install_shard(sealed, shard)
        return True

    # ------------------------------------------------------------------
    # Checkpoint & manifest
    # ------------------------------------------------------------------
    def checkpoint(self) -> "Path | None":
        """Write a v4 delta checkpoint of the active memtable.

        Restart then skips WAL replay for the checkpointed range.
        Returns the checkpoint path, or ``None`` when the memtable has
        seen no documents yet.
        """
        if self._directory is None:
            raise ParameterError("checkpoint requires a durable live index")
        with self._lock:
            memtable = self._memtable
            if memtable.first_seq is None:
                return None
            extra = {
                "first_seq": memtable.first_seq,
                "last_seq": memtable.last_seq,
                "documents": memtable.documents,
                "chars": memtable.chars,
            }
            path = self._directory / CHECKPOINT_NAME
            tmp = self._directory / (CHECKPOINT_NAME + ".tmp.npz")
            repro_io.save_dynamic_index(memtable.delta, tmp, extra=extra)
            os.replace(tmp, path)
            self._checkpoint_meta = {"file": CHECKPOINT_NAME}
        self._write_manifest()
        return path

    def _write_manifest(self) -> None:
        if self._directory is None:
            return
        with self._lock:
            manifest = {
                "version": 1,
                "alphabet": _alphabet_meta(self._alphabet),
                "k": self._k,
                "aggregator": self._utility.name,
                "miner": self._miner,
                "seed": self._seed,
                "seal_chars": self._seal_chars,
                "seal_age": self._seal_age,
                "hot_capacity": self._hot_capacity,
                "hot_window": self._hot_window,
                "compacted_seq": self._compacted_seq,
                "quarantined_holes": [list(hole) for hole in self._holes],
                "generation": self._generation,
                "seals": self._seals,
                "compactions": self._compactions,
                "next_shard_number": self._next_shard_number,
                "shards": list(self._shard_files),
                "checkpoint": self._checkpoint_meta,
            }
        tmp = self._directory / (MANIFEST_NAME + ".tmp")
        tmp.write_text(json.dumps(manifest, indent=2))
        os.replace(tmp, self._directory / MANIFEST_NAME)

    def close(self) -> None:
        """Flush and close the WAL (the index stays queryable)."""
        if self._wal is not None:
            self._wal.close()

    # ------------------------------------------------------------------
    # Pickling (v2 tagged container support): durable attachments are
    # process-local and do not travel — the unpickled index is a fully
    # functional in-memory copy with identical answers.
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_lock"] = None
        state["_wal"] = None
        state["_directory"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.__dict__.setdefault("_quarantined", [])
        self.__dict__.setdefault("_holes", [])
        self._lock = threading.RLock()
