"""``repro.ingest`` — live ingestion: WAL → memtable → shards.

An LSM-style write path over the existing serving stack:

* :class:`WriteAheadLog` makes every append durable before it is
  applied (crash replay reaches the exact pre-crash state);
* :class:`MemtableDelta` is the in-memory delta — a dynamic USI index
  over separator-joined documents plus a SpaceSaving hot-substring
  sketch;
* :class:`LiveIndex` fans reads out over cold shards + frozen
  memtables + the active memtable and merges them exactly;
* :class:`Compactor` seals, rebuilds, and atomically installs
  generations in the background with zero query downtime;
* :class:`LiveBackend` (registered as ``"live"``) plugs the whole
  thing into ``repro.build`` / the registry / the HTTP server.
"""

from repro.ingest.compactor import Compactor
from repro.ingest.live import LiveIndex
from repro.ingest.memtable import MemtableDelta
from repro.ingest.wal import WalRecord, WriteAheadLog

__all__ = [
    "Compactor",
    "LiveIndex",
    "MemtableDelta",
    "WalRecord",
    "WriteAheadLog",
]
