"""BSL2: least-recently-used query caching.

Like the USI index it keeps a hash table of at most K precomputed
global utilities, but instead of the top-K *frequent-in-S* substrings
it holds the K most *recently queried* ones, evicting LRU.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

import numpy as np

from repro.baselines.base import SaPswCountMixin, SaPswEngine
from repro.errors import ParameterError
from repro.strings.weighted import WeightedString
from repro.utility.functions import AggregatorName


class Bsl2LruCache(SaPswCountMixin):
    """The LRU-caching baseline."""

    name = "BSL2"

    def __init__(
        self,
        ws: WeightedString,
        capacity: int,
        aggregator: AggregatorName = "sum",
        seed: int = 0,
    ) -> None:
        if capacity < 1:
            raise ParameterError("cache capacity must be positive")
        self._engine = SaPswEngine(ws, aggregator=aggregator, seed=seed)
        self._capacity = capacity
        self._cache: "OrderedDict[int, float]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def query(self, pattern: "str | bytes | Sequence[int] | np.ndarray") -> float:
        codes = self._engine.encode(pattern)
        if codes is None:
            return self._engine.utility.identity
        key = self._engine.fingerprint(codes)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.hits += 1
            return cached
        self.misses += 1
        value = self._engine.compute(codes)
        self._cache[key] = value
        if len(self._cache) > self._capacity:
            self._cache.popitem(last=False)
        return value

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    def reset_cache(self) -> None:
        """Forget cached utilities and counters (fresh-workload runs)."""
        self._cache.clear()
        self.hits = 0
        self.misses = 0

    def nbytes(self) -> int:
        return self._engine.nbytes() + 32 * len(self._cache)
