"""BSL2: least-recently-used query caching.

Like the USI index it keeps a hash table of at most K precomputed
global utilities, but instead of the top-K *frequent-in-S* substrings
it holds the K most *recently queried* ones, evicting LRU.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

import numpy as np

from repro.baselines.base import BatchQueryMixin, SaPswCountMixin, SaPswEngine
from repro.errors import ParameterError
from repro.kernel import TextKernel
from repro.strings.weighted import WeightedString
from repro.utility.functions import AggregatorName


class Bsl2LruCache(BatchQueryMixin, SaPswCountMixin):
    """The LRU-caching baseline."""

    name = "BSL2"

    def __init__(
        self,
        ws: WeightedString,
        capacity: int,
        aggregator: AggregatorName = "sum",
        seed: int = 0,
        kernel: "TextKernel | None" = None,
    ) -> None:
        if capacity < 1:
            raise ParameterError("cache capacity must be positive")
        if kernel is None:
            kernel = TextKernel(ws, seed=seed)
        else:
            kernel.require_match(ws)
        self._engine = SaPswEngine(kernel, aggregator=aggregator)
        self._capacity = capacity
        self._cache: "OrderedDict[int, float]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def _query_with(self, codes: np.ndarray, key: int, value: "float | None") -> float:
        """The LRU policy, with the miss utility optionally precomputed."""
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.hits += 1
            return cached
        self.misses += 1
        if value is None:
            value = self._engine.compute(codes)
        self._cache[key] = value
        if len(self._cache) > self._capacity:
            self._cache.popitem(last=False)
        return value

    def query(self, pattern: "str | bytes | Sequence[int] | np.ndarray") -> float:
        codes = self._engine.encode(pattern)
        if codes is None:
            return self._engine.utility.identity
        return self._query_with(codes, self._engine.fingerprint(codes), None)

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    def reset_cache(self) -> None:
        """Forget cached utilities and counters (fresh-workload runs)."""
        self._cache.clear()
        self.hits = 0
        self.misses = 0

    def nbytes(self) -> int:
        return self._engine.nbytes() + 32 * len(self._cache)
