"""BSL3: cache the top-K most frequently *queried* substrings.

Replaces BSL2's recency policy with a frequency policy: the cache
holds the K patterns queried most often so far, maintained with an
auxiliary structure offering min-heap-on-frequency plus hash-table
lookups (exactly as described in Section IX-C).
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from repro.baselines.base import BatchQueryMixin, SaPswCountMixin, SaPswEngine
from repro.errors import ParameterError
from repro.kernel import TextKernel
from repro.strings.weighted import WeightedString
from repro.utility.functions import AggregatorName


class Bsl3TopKSeen(BatchQueryMixin, SaPswCountMixin):
    """The top-K-seen-so-far caching baseline (exact query counts)."""

    name = "BSL3"

    def __init__(
        self,
        ws: WeightedString,
        capacity: int,
        aggregator: AggregatorName = "sum",
        seed: int = 0,
        kernel: "TextKernel | None" = None,
    ) -> None:
        if capacity < 1:
            raise ParameterError("cache capacity must be positive")
        if kernel is None:
            kernel = TextKernel(ws, seed=seed)
        else:
            kernel.require_match(ws)
        self._engine = SaPswEngine(kernel, aggregator=aggregator)
        self._capacity = capacity
        self._cache: dict[int, float] = {}
        self._query_counts: dict[int, int] = {}
        # Lazy min-heap of (count_at_push, key) over cached keys.
        self._heap: list[tuple[int, int]] = []
        self.hits = 0
        self.misses = 0

    def _evict_least_frequent(self) -> None:
        while self._heap:
            count, key = heapq.heappop(self._heap)
            if key in self._cache and self._query_counts.get(key, 0) == count:
                del self._cache[key]
                return
            # Stale: either evicted already or its count grew; in the
            # latter case a fresher entry exists further in the heap.

    def _query_with(self, codes: np.ndarray, key: int, value: "float | None") -> float:
        """The frequency-admission policy, miss utility optionally given."""
        count = self._query_counts.get(key, 0) + 1
        self._query_counts[key] = count

        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            heapq.heappush(self._heap, (count, key))
            return cached
        self.misses += 1
        if value is None:
            value = self._engine.compute(codes)
        if len(self._cache) >= self._capacity:
            # Admit only if this pattern is now queried at least as
            # often as the cache's least-frequent member.
            while self._heap and (
                self._heap[0][1] not in self._cache
                or self._query_counts.get(self._heap[0][1], 0) != self._heap[0][0]
            ):
                heapq.heappop(self._heap)
            weakest = self._heap[0][0] if self._heap else 0
            if count >= weakest:
                self._evict_least_frequent()
            else:
                return value
        self._cache[key] = value
        heapq.heappush(self._heap, (count, key))
        return value

    def query(self, pattern: "str | bytes | Sequence[int] | np.ndarray") -> float:
        codes = self._engine.encode(pattern)
        if codes is None:
            return self._engine.utility.identity
        return self._query_with(codes, self._engine.fingerprint(codes), None)

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    def reset_cache(self) -> None:
        """Forget cached utilities and query counts (fresh-workload runs)."""
        self._cache.clear()
        self._query_counts.clear()
        self._heap.clear()
        self.hits = 0
        self.misses = 0

    def nbytes(self) -> int:
        return (
            self._engine.nbytes()
            + 32 * len(self._cache)
            + 24 * len(self._query_counts)
        )
