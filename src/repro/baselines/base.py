"""Shared query engine for the baselines: suffix array + PSW.

All four baselines answer uncached queries the same way (the
"Why is USI Challenging?" approach of Section I): locate the pattern's
occurrences with the suffix array and aggregate per-occurrence local
utilities read from the prefix-sum array.  They differ only in *what
they cache*, which each ``BslN`` class layers on top of this engine.

Since the kernel refactor the engine is a thin shell over a
:class:`~repro.kernel.TextKernel` — the canonical constructor takes a
kernel, so the four baselines built over one text share one substrate
with every other backend.  Constructing an engine directly from a
:class:`~repro.strings.weighted.WeightedString` still works (a private
kernel is built internally) but is deprecated.
"""

from __future__ import annotations

import warnings
from typing import Sequence

import numpy as np

from repro.errors import ParameterError
from repro.kernel import TextKernel
from repro.strings.weighted import WeightedString
from repro.utility.functions import AggregatorName, GlobalUtility, make_global_utility


class SaPswEngine:
    """SA + PSW global-utility computation (exact, no caching).

    Parameters
    ----------
    source:
        A :class:`~repro.kernel.TextKernel` (canonical since the
        kernel refactor), or a weighted string (deprecated: builds a
        private kernel, re-encoding a text other backends may already
        have encoded).
    """

    def __init__(
        self,
        source: "TextKernel | WeightedString",
        aggregator: "AggregatorName | GlobalUtility" = "sum",
        sa_algorithm: str = "doubling",
        seed: int = 0,
    ) -> None:
        if isinstance(source, TextKernel):
            kernel = source
        elif isinstance(source, WeightedString):
            warnings.warn(
                "constructing SaPswEngine from a WeightedString builds a "
                "private suffix array; build a repro.kernel.TextKernel once "
                "and pass it instead",
                DeprecationWarning,
                stacklevel=2,
            )
            kernel = TextKernel(source, sa_algorithm=sa_algorithm, seed=seed)
        else:
            raise ParameterError(
                f"cannot build an engine over {type(source).__name__}"
            )
        self._kernel = kernel
        self._ws = kernel.ws
        self._sa = kernel.suffix
        self._psw = kernel.psw("sum")
        self._utility = make_global_utility(aggregator)

    @property
    def weighted_string(self) -> WeightedString:
        return self._ws

    @property
    def kernel(self) -> TextKernel:
        """The shared substrate behind this engine."""
        return self._kernel

    @property
    def utility(self) -> GlobalUtility:
        return self._utility

    def encode(self, pattern: "str | bytes | Sequence[int] | np.ndarray") -> "np.ndarray | None":
        """Encode a pattern; ``None`` means it cannot occur in S."""
        return self._ws.alphabet.try_encode_pattern(pattern)

    def fingerprint(self, codes: np.ndarray) -> int:
        """The cache key the caching baselines agree on (O(m))."""
        return self._kernel.fingerprinter.of_codes(codes)

    def fingerprint_many(self, codes_list: "Sequence[np.ndarray]") -> list[int]:
        """Cache keys for many encoded patterns, vectorised per length."""
        from repro.kernel import iter_length_buckets

        keys: list[int] = [0] * len(codes_list)
        fp = self._kernel.fingerprinter
        for _, slots, matrix in iter_length_buckets(codes_list):
            for slot, key in zip(slots, fp.of_code_matrix(matrix).tolist()):
                keys[slot] = int(key)
        return keys

    def count(self, codes: np.ndarray) -> int:
        """``|occ(P)|`` through the suffix array (always exact)."""
        return int(self._sa.count(codes))

    def compute(self, codes: np.ndarray) -> float:
        """``U(P)`` from scratch: SA locate + PSW aggregation."""
        occurrences = self._sa.occurrences(codes)
        if occurrences.size == 0:
            return self._utility.identity
        locals_ = self._psw.local_utilities(occurrences, len(codes))
        return self._utility.aggregate(locals_)

    def compute_many(self, codes_list: "Sequence[np.ndarray | None]") -> list[float]:
        """Batch ``U(P)`` through the kernel's vectorised locate path."""
        return self._kernel.batch_utilities(
            codes_list, self._utility, psw=self._psw
        )

    def nbytes(self) -> int:
        """SA + PSW size (the bulk of every baseline's index)."""
        return self._sa.nbytes() + self._psw.nbytes()


class SaPswCountMixin:
    """Exact ``count`` for baselines composing a :class:`SaPswEngine`.

    Expects the engine at ``self._engine`` (the convention all four
    baselines follow); counting bypasses every cache, so it is always
    exact regardless of the baseline's caching policy.
    """

    def count(self, pattern: "str | bytes | Sequence[int] | np.ndarray") -> int:
        codes = self._engine.encode(pattern)
        if codes is None:
            return 0
        return self._engine.count(codes)


class BatchQueryMixin:
    """Vectorised ``query_batch`` for the caching baselines.

    Answers match calling ``query`` per pattern, in order — including
    the cache/counter side effects: the per-pattern admission logic
    runs unchanged, but every pattern *not cached when the batch
    arrives* has its utility precomputed in one vectorised kernel
    pass, so the sequential loop only does dict work.  (Sums over many
    occurrences may differ from the scalar path in the last float ULP
    because the batch aggregation accumulates in a different order.)

    Requires ``self._engine`` plus a ``_query_with(codes, key, value)``
    method running the baseline's normal policy with the utility
    supplied (``None`` = compute from scratch).
    """

    def query_batch(self, patterns: "Sequence") -> list[float]:
        engine: SaPswEngine = self._engine
        encoded = [engine.encode(p) for p in patterns]
        results = [engine.utility.identity] * len(patterns)
        live = [i for i, codes in enumerate(encoded) if codes is not None]
        if not live:
            return results
        keys = engine.fingerprint_many([encoded[i] for i in live])
        key_of = dict(zip(live, keys))
        # Precompute every key that is a miss *right now*; duplicates
        # inside the batch are computed once.
        cache = getattr(self, "_cache", {})
        need: dict[int, int] = {}
        for slot in live:
            key = key_of[slot]
            if key not in cache and key not in need:
                need[key] = slot
        values = engine.compute_many([encoded[s] for s in need.values()])
        precomputed = dict(zip(need.keys(), values))
        for slot in live:
            key = key_of[slot]
            results[slot] = self._query_with(
                encoded[slot], key, precomputed.get(key)
            )
        return results
