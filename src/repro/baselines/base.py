"""Shared query engine for the baselines: suffix array + PSW.

All four baselines answer uncached queries the same way (the
"Why is USI Challenging?" approach of Section I): locate the pattern's
occurrences with the suffix array and aggregate per-occurrence local
utilities read from the prefix-sum array.  They differ only in *what
they cache*, which each ``BslN`` class layers on top of this engine.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import AlphabetError, PatternError
from repro.hashing.karp_rabin import KarpRabinFingerprinter
from repro.strings.weighted import WeightedString
from repro.suffix.suffix_array import SuffixArray
from repro.utility.functions import AggregatorName, GlobalUtility, make_global_utility
from repro.utility.functions import PrefixSumLocalUtility


class SaPswEngine:
    """SA + PSW global-utility computation (exact, no caching)."""

    def __init__(
        self,
        ws: WeightedString,
        aggregator: "AggregatorName | GlobalUtility" = "sum",
        sa_algorithm: str = "doubling",
        seed: int = 0,
    ) -> None:
        self._ws = ws
        self._sa = SuffixArray(ws.codes, algorithm=sa_algorithm, with_lcp=False)  # type: ignore[arg-type]
        self._psw = PrefixSumLocalUtility(ws.utilities)
        self._utility = make_global_utility(aggregator)
        self._fp = KarpRabinFingerprinter(ws.codes, seed=seed)

    @property
    def weighted_string(self) -> WeightedString:
        return self._ws

    @property
    def utility(self) -> GlobalUtility:
        return self._utility

    def encode(self, pattern: "str | bytes | Sequence[int] | np.ndarray") -> "np.ndarray | None":
        """Encode a pattern; ``None`` means it cannot occur in S."""
        if isinstance(pattern, np.ndarray):
            if len(pattern) == 0:
                raise PatternError("query patterns must be non-empty")
            return pattern.astype(np.int64, copy=False)
        try:
            return self._ws.alphabet.encode_pattern(pattern).astype(np.int64)
        except AlphabetError:
            return None

    def fingerprint(self, codes: np.ndarray) -> int:
        """The cache key the caching baselines agree on (O(m))."""
        return self._fp.of_codes(codes)

    def count(self, codes: np.ndarray) -> int:
        """``|occ(P)|`` through the suffix array (always exact)."""
        return int(self._sa.count(codes))

    def compute(self, codes: np.ndarray) -> float:
        """``U(P)`` from scratch: SA locate + PSW aggregation."""
        occurrences = self._sa.occurrences(codes)
        if occurrences.size == 0:
            return self._utility.identity
        locals_ = self._psw.local_utilities(occurrences, len(codes))
        return self._utility.aggregate(locals_)

    def nbytes(self) -> int:
        """SA + PSW size (the bulk of every baseline's index)."""
        return self._sa.nbytes() + self._psw.nbytes()


class SaPswCountMixin:
    """Exact ``count`` for baselines composing a :class:`SaPswEngine`.

    Expects the engine at ``self._engine`` (the convention all four
    baselines follow); counting bypasses every cache, so it is always
    exact regardless of the baseline's caching policy.
    """

    def count(self, pattern: "str | bytes | Sequence[int] | np.ndarray") -> int:
        codes = self._engine.encode(pattern)
        if codes is None:
            return 0
        return self._engine.count(codes)
