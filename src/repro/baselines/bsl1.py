"""BSL1: no query caching.

Every query is answered from scratch with the suffix array and PSW —
the straightforward approach from Section I whose query time is a
function of ``|occ(P)|`` and therefore suffers on frequent patterns.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.base import SaPswCountMixin, SaPswEngine
from repro.kernel import TextKernel
from repro.strings.weighted import WeightedString
from repro.utility.functions import AggregatorName


class Bsl1NoCache(SaPswCountMixin):
    """The no-caching baseline."""

    name = "BSL1"

    def __init__(
        self,
        ws: WeightedString,
        aggregator: AggregatorName = "sum",
        seed: int = 0,
        kernel: "TextKernel | None" = None,
    ) -> None:
        if kernel is None:
            kernel = TextKernel(ws, seed=seed)
        else:
            kernel.require_match(ws)
        self._engine = SaPswEngine(kernel, aggregator=aggregator)

    def query(self, pattern: "str | bytes | Sequence[int] | np.ndarray") -> float:
        codes = self._engine.encode(pattern)
        if codes is None:
            return self._engine.utility.identity
        return self._engine.compute(codes)

    def query_batch(self, patterns: "Sequence") -> list[float]:
        """Batch query through the kernel's vectorised locate path."""
        return self._engine.compute_many(
            [self._engine.encode(p) for p in patterns]
        )

    def nbytes(self) -> int:
        return self._engine.nbytes()
