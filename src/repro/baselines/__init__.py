"""The four nontrivial baselines of Section IX-C (BSL1-BSL4)."""

from repro.baselines.base import SaPswEngine
from repro.baselines.bsl1 import Bsl1NoCache
from repro.baselines.bsl2 import Bsl2LruCache
from repro.baselines.bsl3 import Bsl3TopKSeen
from repro.baselines.bsl4 import Bsl4SketchTopKSeen

__all__ = [
    "Bsl1NoCache",
    "Bsl2LruCache",
    "Bsl3TopKSeen",
    "Bsl4SketchTopKSeen",
    "SaPswEngine",
]
