"""BSL4: space-efficient top-K-seen-so-far caching.

BSL3 with the exact per-pattern query counts replaced by a count-min
sketch (as in HeavyKeeper's usage [24]), trading a little admission
accuracy for O(1) auxiliary space — the space-efficient variant the
paper describes.
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from repro.baselines.base import BatchQueryMixin, SaPswCountMixin, SaPswEngine
from repro.errors import ParameterError
from repro.kernel import TextKernel
from repro.streaming.count_min import CountMinSketch
from repro.strings.weighted import WeightedString
from repro.utility.functions import AggregatorName


class Bsl4SketchTopKSeen(BatchQueryMixin, SaPswCountMixin):
    """The sketch-based top-K-seen-so-far caching baseline."""

    name = "BSL4"

    def __init__(
        self,
        ws: WeightedString,
        capacity: int,
        aggregator: AggregatorName = "sum",
        sketch_width: int = 2048,
        sketch_depth: int = 4,
        seed: int = 0,
        kernel: "TextKernel | None" = None,
    ) -> None:
        if capacity < 1:
            raise ParameterError("cache capacity must be positive")
        if kernel is None:
            kernel = TextKernel(ws, seed=seed)
        else:
            kernel.require_match(ws)
        self._engine = SaPswEngine(kernel, aggregator=aggregator)
        self._capacity = capacity
        self._cache: dict[int, float] = {}
        self._sketch = CountMinSketch(width=sketch_width, depth=sketch_depth, seed=seed)
        # Lazy min-heap of (estimate_at_push, key) over cached keys.
        self._heap: list[tuple[int, int]] = []
        self.hits = 0
        self.misses = 0

    def _query_with(self, codes: np.ndarray, key: int, value: "float | None") -> float:
        """The sketch-admission policy, miss utility optionally given."""
        self._sketch.add(key)
        estimate = self._sketch.estimate(key)

        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            heapq.heappush(self._heap, (estimate, key))
            return cached
        self.misses += 1
        if value is None:
            value = self._engine.compute(codes)
        if len(self._cache) >= self._capacity:
            while self._heap and self._heap[0][1] not in self._cache:
                heapq.heappop(self._heap)
            weakest = self._heap[0][0] if self._heap else 0
            if estimate >= weakest:
                while self._heap:
                    _, evict_key = heapq.heappop(self._heap)
                    if evict_key in self._cache:
                        del self._cache[evict_key]
                        break
            else:
                return value
        self._cache[key] = value
        heapq.heappush(self._heap, (estimate, key))
        return value

    def query(self, pattern: "str | bytes | Sequence[int] | np.ndarray") -> float:
        codes = self._engine.encode(pattern)
        if codes is None:
            return self._engine.utility.identity
        return self._query_with(codes, self._engine.fingerprint(codes), None)

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    def reset_cache(self) -> None:
        """Forget cached utilities and sketch counts (fresh-workload runs)."""
        self._cache.clear()
        self._heap.clear()
        self._sketch.reset()
        self.hits = 0
        self.misses = 0

    def nbytes(self) -> int:
        return self._engine.nbytes() + 32 * len(self._cache) + self._sketch.nbytes()
