"""Wavelet tree over an integer sequence.

Supports ``access``, ``rank(c, i)`` and ``select(c, k)`` in
O(log sigma) bitvector operations — the symbol-rank engine of the
FM-index's backward search.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ParameterError
from repro.succinct.bitvector import RankSelectBitVector


class _Node:
    __slots__ = ("lo", "hi", "bits", "left", "right")

    def __init__(self, lo: int, hi: int) -> None:
        self.lo = lo  # symbol range [lo, hi] handled by this node
        self.hi = hi
        self.bits: "RankSelectBitVector | None" = None
        self.left: "_Node | None" = None
        self.right: "_Node | None" = None


class WaveletTree:
    """A balanced wavelet tree on symbols ``0 .. sigma - 1``.

    Parameters
    ----------
    values:
        The integer sequence.
    sigma:
        Alphabet size; inferred from the data when omitted.
    """

    def __init__(self, values: "Sequence[int] | np.ndarray", sigma: "int | None" = None) -> None:
        arr = np.asarray(values, dtype=np.int64)
        if arr.ndim != 1:
            raise ParameterError("wavelet tree input must be 1-D")
        if arr.size and int(arr.min()) < 0:
            raise ParameterError("symbols must be non-negative")
        if sigma is None:
            sigma = int(arr.max()) + 1 if arr.size else 1
        elif arr.size and int(arr.max()) >= sigma:
            raise ParameterError("a symbol exceeds the declared alphabet")
        self._n = len(arr)
        self._sigma = max(1, sigma)
        self._root = self._build(arr, 0, self._sigma - 1)

    def _build(self, arr: np.ndarray, lo: int, hi: int) -> "_Node | None":
        node = _Node(lo, hi)
        if lo == hi or len(arr) == 0:
            return node
        mid = (lo + hi) // 2
        goes_right = arr > mid
        node.bits = RankSelectBitVector(goes_right)
        node.left = self._build(arr[~goes_right], lo, mid)
        node.right = self._build(arr[goes_right], mid + 1, hi)
        return node

    @property
    def length(self) -> int:
        return self._n

    @property
    def sigma(self) -> int:
        return self._sigma

    def __len__(self) -> int:
        return self._n

    def access(self, i: int) -> int:
        """The symbol at position *i*."""
        if not 0 <= i < self._n:
            raise ParameterError(f"position {i} out of [0, {self._n})")
        node = self._root
        while node.lo != node.hi:
            if node.bits[i]:
                i = node.bits.rank1(i)
                node = node.right
            else:
                i = node.bits.rank0(i)
                node = node.left
        return node.lo

    def rank(self, symbol: int, i: int) -> int:
        """Occurrences of *symbol* in ``values[0 .. i - 1]``."""
        if not 0 <= i <= self._n:
            raise ParameterError(f"rank position {i} out of [0, {self._n}]")
        if not 0 <= symbol < self._sigma:
            return 0
        node = self._root
        while node.lo != node.hi:
            if node.bits is None:
                return 0
            mid = (node.lo + node.hi) // 2
            if symbol > mid:
                i = node.bits.rank1(i)
                node = node.right
            else:
                i = node.bits.rank0(i)
                node = node.left
            if node is None:  # pragma: no cover - defensive
                return 0
        return i

    def select(self, symbol: int, k: int) -> int:
        """Position of the k-th occurrence of *symbol* (1-based)."""
        if not 0 <= symbol < self._sigma:
            raise ParameterError(f"symbol {symbol} outside alphabet")
        total = self.rank(symbol, self._n)
        if not 1 <= k <= total:
            raise ParameterError(f"select index {k} out of [1, {total}]")
        # Walk down to the leaf, then climb back translating positions.
        path: list[tuple[_Node, bool]] = []
        node = self._root
        while node.lo != node.hi:
            mid = (node.lo + node.hi) // 2
            right = symbol > mid
            path.append((node, right))
            node = node.right if right else node.left
        position = k - 1
        for parent, right in reversed(path):
            if right:
                position = parent.bits.select1(position + 1)
            else:
                position = parent.bits.select0(position + 1)
        return position

    def nbytes(self) -> int:
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node is None or node.bits is None:
                continue
            total += node.bits.nbytes()
            stack.append(node.left)
            stack.append(node.right)
        return total
