"""FM-index: backward search + sampled-SA locate over the BWT.

The compressed counterpart of the suffix-array text index: ``count``
in O(m log sigma), ``locate`` in O((m + occ * t) log sigma) for a
sample rate ``t``.  Exposes the same ``interval`` / ``occurrences`` /
``count`` surface as :class:`repro.suffix.suffix_array.SuffixArray`,
so the USI index can use either backend interchangeably.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConstructionError, ParameterError, PatternError
from repro.succinct.bwt import bwt_from_sa
from repro.succinct.wavelet import WaveletTree
from repro.suffix.suffix_array import build_suffix_array


class FmIndex:
    """An FM-index over an integer-coded text.

    Parameters
    ----------
    codes:
        The text as non-negative integer codes.
    sample_rate:
        Every ``sample_rate``-th text position is stored in the SA
        sample; locate walks LF until it hits a sampled row.  Smaller
        is faster but bigger.
    """

    def __init__(
        self,
        codes: "Sequence[int] | np.ndarray",
        sample_rate: int = 16,
        sa: "np.ndarray | None" = None,
    ) -> None:
        codes = np.asarray(codes, dtype=np.int64)
        if codes.ndim != 1 or len(codes) == 0:
            raise ConstructionError("FM-index requires a non-empty 1-D text")
        if sample_rate < 1:
            raise ParameterError("sample_rate must be positive")
        self._n = len(codes)
        self._sigma = int(codes.max()) + 1
        if sa is None:
            sa = build_suffix_array(codes)
        else:
            # A kernel-shared suffix array: the BWT derives from it
            # directly, so construction skips the suffix sort.
            sa = np.asarray(sa, dtype=np.int64)
            if len(sa) != self._n:
                raise ConstructionError("suffix array length mismatch")
        bwt = bwt_from_sa(codes, sa)
        # Shifted alphabet: sentinel 0 plus symbols 1 .. sigma.
        self._wavelet = WaveletTree(bwt, sigma=self._sigma + 1)
        # C[c] = number of BWT symbols strictly smaller than c.
        counts = np.bincount(bwt, minlength=self._sigma + 1)
        self._c = np.concatenate(([0], np.cumsum(counts)))[: self._sigma + 2]
        # SA sample: BWT row -> text position for sampled positions.
        self._sample_rate = sample_rate
        self._samples: dict[int, int] = {}
        # Row 0 is the sentinel suffix (text position n, exclusive).
        for rank, position in enumerate(sa.tolist()):
            if position % sample_rate == 0:
                self._samples[rank + 1] = position  # +1 for the sentinel row

    # ------------------------------------------------------------------
    # Core FM operations
    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        return self._n

    def __len__(self) -> int:
        return self._n

    def _lf(self, row: int) -> int:
        """The LF mapping: row of this row's preceding text symbol."""
        symbol = self._wavelet.access(row)
        return int(self._c[symbol]) + self._wavelet.rank(symbol, row)

    def _backward_search(self, pattern: np.ndarray) -> tuple[int, int]:
        """Half-open BWT row range [lo, hi) of suffixes starting with *pattern*."""
        lo, hi = 0, self._n + 1
        for symbol in pattern[::-1].tolist():
            shifted = int(symbol) + 1
            if not 1 <= shifted <= self._sigma:
                return (0, 0)
            base = int(self._c[shifted])
            lo = base + self._wavelet.rank(shifted, lo)
            hi = base + self._wavelet.rank(shifted, hi)
            if lo >= hi:
                return (0, 0)
        return (lo, hi)

    def _locate_row(self, row: int) -> int:
        """Text position of the suffix in BWT *row*, via LF-walking."""
        steps = 0
        while row not in self._samples:
            row = self._lf(row)
            steps += 1
        return (self._samples[row] + steps) % (self._n + 1)

    # ------------------------------------------------------------------
    # SuffixArray-compatible surface
    # ------------------------------------------------------------------
    def interval(self, pattern: "Sequence[int] | np.ndarray") -> tuple[int, int]:
        """Closed interval ``[lb, rb]`` of matching rows; ``(0, -1)`` if none."""
        pattern = np.asarray(pattern, dtype=np.int64)
        if len(pattern) == 0:
            raise PatternError("patterns must be non-empty")
        lo, hi = self._backward_search(pattern)
        if lo >= hi:
            return (0, -1)
        return (lo, hi - 1)

    def count(self, pattern: "Sequence[int] | np.ndarray") -> int:
        """``|occ(pattern)|`` in O(m log sigma)."""
        lb, rb = self.interval(pattern)
        return max(0, rb - lb + 1)

    def occurrences(self, pattern: "Sequence[int] | np.ndarray") -> np.ndarray:
        """All starting positions of *pattern* (unsorted)."""
        lb, rb = self.interval(pattern)
        if rb < lb:
            return np.empty(0, dtype=np.int64)
        return np.asarray(
            [self._locate_row(row) for row in range(lb, rb + 1)], dtype=np.int64
        )

    def nbytes(self) -> int:
        """Wavelet tree + C array + SA sample."""
        return self._wavelet.nbytes() + int(self._c.nbytes) + 16 * len(self._samples)
