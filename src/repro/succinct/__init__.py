"""Succinct text-index substrate: bitvectors, wavelet trees, BWT, FM-index.

The paper indexes ``S`` with a suffix tree / suffix array; production
string-indexing systems usually also offer a *compressed* backend.
This package provides one: a classical FM-index (Burrows-Wheeler
transform + wavelet tree + rank/select bitvectors) with backward
search and sampled-SA locate, pluggable into the USI index as
``text_index="fm"``.
"""

from repro.succinct.bitvector import RankSelectBitVector
from repro.succinct.bwt import bwt_from_sa, bwt_transform
from repro.succinct.fm_index import FmIndex
from repro.succinct.wavelet import WaveletTree

__all__ = [
    "FmIndex",
    "RankSelectBitVector",
    "WaveletTree",
    "bwt_from_sa",
    "bwt_transform",
]
