"""Bitvector with O(1) rank and O(log n) select.

The building block of the wavelet tree.  Python-scale succinctness:
the bits live in a numpy bool array and rank uses a precomputed
block-prefix table — constant work per query, ~1.03 n bits + o(n)
words of directory, which is the classic rank-directory layout.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ParameterError

_BLOCK = 64


class RankSelectBitVector:
    """A static bitvector supporting ``rank1/rank0`` and ``select1/select0``.

    Parameters
    ----------
    bits:
        Anything coercible to a 1-D boolean numpy array.
    """

    def __init__(self, bits: "Sequence[bool] | np.ndarray") -> None:
        arr = np.asarray(bits, dtype=bool)
        if arr.ndim != 1:
            raise ParameterError("bitvectors are 1-D")
        self._bits = arr
        self._n = len(arr)
        # _block_ranks[b] = number of ones strictly before block b.
        block_count = (self._n + _BLOCK - 1) // _BLOCK + 1
        sums = np.zeros(block_count, dtype=np.int64)
        if self._n:
            per_block = np.add.reduceat(
                arr.astype(np.int64), np.arange(0, self._n, _BLOCK)
            )
            sums[1 : 1 + len(per_block)] = np.cumsum(per_block)
        self._block_ranks = sums

    @property
    def length(self) -> int:
        return self._n

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, i: int) -> bool:
        return bool(self._bits[i])

    @property
    def ones(self) -> int:
        """Total number of set bits."""
        return int(self._block_ranks[-1]) if self._n else 0

    def rank1(self, i: int) -> int:
        """Number of ones in ``bits[0 .. i - 1]`` (i.e. before *i*)."""
        if not 0 <= i <= self._n:
            raise ParameterError(f"rank position {i} out of [0, {self._n}]")
        block, offset = divmod(i, _BLOCK)
        partial = int(self._bits[block * _BLOCK : block * _BLOCK + offset].sum())
        return int(self._block_ranks[block]) + partial

    def rank0(self, i: int) -> int:
        """Number of zeros before *i*."""
        return i - self.rank1(i)

    def _select(self, k: int, ones: bool) -> int:
        total = self.ones if ones else self._n - self.ones
        if not 1 <= k <= total:
            raise ParameterError(f"select index {k} out of [1, {total}]")
        # Binary search on rank over positions.
        lo, hi = 0, self._n  # answer in [lo, hi)
        rank = self.rank1 if ones else self.rank0
        while lo < hi:
            mid = (lo + hi) // 2
            if rank(mid + 1) >= k:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def select1(self, k: int) -> int:
        """Position of the k-th one (1-based k)."""
        return self._select(k, ones=True)

    def select0(self, k: int) -> int:
        """Position of the k-th zero (1-based k)."""
        return self._select(k, ones=False)

    def nbytes(self) -> int:
        return int(self._bits.nbytes + self._block_ranks.nbytes)
