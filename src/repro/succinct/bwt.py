"""Burrows-Wheeler transform via the suffix array.

Internally the text is shifted by +1 so that symbol 0 can serve as the
unique terminating sentinel; the BWT is then defined over the
sentinel-extended text of length n + 1, the layout the FM-index
expects.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ParameterError
from repro.suffix.suffix_array import build_suffix_array

SENTINEL = 0


def bwt_from_sa(codes: np.ndarray, sa: np.ndarray) -> np.ndarray:
    """BWT of the sentinel-extended text, given the plain-text SA.

    ``codes`` are original symbols in ``[0, sigma)``; the result uses
    shifted symbols (original + 1) with 0 as the sentinel, and has
    length ``n + 1``.
    """
    codes = np.asarray(codes, dtype=np.int64)
    sa = np.asarray(sa, dtype=np.int64)
    n = len(codes)
    if len(sa) != n:
        raise ParameterError("suffix array does not match the text")
    shifted = codes + 1
    bwt = np.empty(n + 1, dtype=np.int64)
    # The sentinel suffix (just "$") is lexicographically smallest, so
    # it occupies row 0; its preceding symbol is the text's last one.
    bwt[0] = shifted[n - 1] if n else SENTINEL
    # Row i+1 corresponds to suffix SA[i]; its preceding symbol is
    # shifted[SA[i] - 1], or the sentinel when SA[i] == 0.
    prev = sa - 1
    values = np.where(prev >= 0, shifted[np.maximum(prev, 0)], SENTINEL)
    bwt[1:] = values
    return bwt


def bwt_transform(codes: "Sequence[int] | np.ndarray") -> tuple[np.ndarray, np.ndarray]:
    """Convenience: build the SA and return ``(bwt, sa)``."""
    codes = np.asarray(codes, dtype=np.int64)
    if codes.ndim != 1 or len(codes) == 0:
        raise ParameterError("BWT requires a non-empty 1-D text")
    sa = build_suffix_array(codes)
    return bwt_from_sa(codes, sa), sa


def inverse_bwt(bwt: "Sequence[int] | np.ndarray") -> np.ndarray:
    """Recover the original (unshifted) text from a sentinel BWT.

    Used as a correctness oracle in tests: inverting the transform must
    reproduce the input text exactly.
    """
    bwt = np.asarray(bwt, dtype=np.int64)
    n = len(bwt)
    if n == 0:
        raise ParameterError("empty BWT")
    # LF mapping via stable counting sort of the BWT symbols.
    order = np.argsort(bwt, kind="stable")
    lf = np.empty(n, dtype=np.int64)
    lf[order] = np.arange(n, dtype=np.int64)
    # Walk backwards from the sentinel row (row of '$' in F is 0).
    out = np.empty(n - 1, dtype=np.int64)
    row = 0
    for k in range(n - 1, 0, -1):
        symbol = bwt[row]
        out[k - 1] = symbol - 1  # unshift
        row = lf[row]
    return out
