"""Tests for the naive string oracles themselves."""

from collections import Counter

from hypothesis import given
from hypothesis import strategies as st

from repro.strings.occurrences import (
    all_distinct_substrings,
    naive_occurrences,
    naive_substring_frequencies,
    naive_top_k_frequent,
    tie_threshold_frequency,
)

from tests.conftest import texts


class TestNaiveOccurrences:
    def test_simple(self):
        assert naive_occurrences("ABABAB", "AB") == [0, 2, 4]

    def test_overlapping(self):
        assert naive_occurrences("AAAA", "AA") == [0, 1, 2]

    def test_absent(self):
        assert naive_occurrences("ABAB", "BB") == []

    def test_pattern_longer_than_text(self):
        assert naive_occurrences("AB", "ABC") == []

    def test_empty_pattern(self):
        assert naive_occurrences("AB", "") == []

    def test_whole_text(self):
        assert naive_occurrences("ABC", "ABC") == [0]

    def test_accepts_arrays(self):
        import numpy as np

        text = np.asarray([0, 1, 0, 1], dtype=np.int64)
        assert naive_occurrences(text, np.asarray([0, 1])) == [0, 2]


class TestNaiveFrequencies:
    def test_counts(self):
        counts = naive_substring_frequencies("ABAB")
        assert counts[("A",)] == 2
        assert counts[("A", "B")] == 2
        assert counts[("A", "B", "A", "B")] == 1

    def test_max_length_cap(self):
        counts = naive_substring_frequencies("ABCD", max_length=2)
        assert max(len(k) for k in counts) == 2

    def test_total_occurrences(self):
        counts = naive_substring_frequencies("ABC")
        # n(n+1)/2 substring occurrences in total.
        assert sum(counts.values()) == 6

    @given(texts("AB", max_size=20))
    def test_single_letter_counts_match_counter(self, text):
        counts = naive_substring_frequencies(text, max_length=1)
        direct = Counter(text)
        for letter, freq in direct.items():
            assert counts[(letter,)] == freq


class TestTopK:
    def test_order_and_tiebreak(self):
        ranked = naive_top_k_frequent("ABABAB", 3)
        # Frequency 3: 'A', 'B', 'AB'; singles first (shorter).
        assert [freq for _, freq in ranked] == [3, 3, 3]
        assert ranked[0][0] in (("A",), ("B",))
        assert len(ranked[2][0]) == 2

    def test_k_larger_than_substring_count(self):
        ranked = naive_top_k_frequent("AB", 100)
        assert len(ranked) == 3  # 'A', 'B', 'AB'

    def test_threshold(self):
        assert tie_threshold_frequency("ABABAB", 3) == 3
        assert tie_threshold_frequency("ABABAB", 4) == 2

    def test_distinct_substrings(self):
        assert all_distinct_substrings("AAB") == {
            ("A",), ("B",), ("A", "A"), ("A", "B"), ("A", "A", "B")
        }
