"""Tests for repro.strings.alphabet."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AlphabetError, PatternError
from repro.strings.alphabet import Alphabet, as_code_array


class TestConstruction:
    def test_letters_sorted_and_deduped(self):
        alpha = Alphabet("banana")
        assert alpha.letters == ["a", "b", "n"]
        assert alpha.size == 3

    def test_empty_alphabet_rejected(self):
        with pytest.raises(AlphabetError):
            Alphabet("")

    def test_from_text_str(self):
        assert Alphabet.from_text("CGAT") == Alphabet.dna()

    def test_from_text_bytes(self):
        alpha = Alphabet.from_text(b"ab")
        assert alpha.size == 2
        assert alpha.letters == [97, 98]

    def test_integer_letters(self):
        alpha = Alphabet([5, 1, 3])
        assert alpha.letters == [1, 3, 5]
        assert alpha.code(3) == 1

    def test_len_and_contains(self):
        alpha = Alphabet("xyz")
        assert len(alpha) == 3
        assert "x" in alpha
        assert "w" not in alpha

    def test_repr_mentions_size(self):
        assert "size=4" in repr(Alphabet.dna())


class TestCoding:
    def test_code_roundtrip(self):
        alpha = Alphabet("ACGT")
        for i, letter in enumerate("ACGT"):
            assert alpha.code(letter) == i
            assert alpha.letter(i) == letter

    def test_unknown_letter_raises(self):
        with pytest.raises(AlphabetError):
            Alphabet("AB").code("C")

    def test_bad_code_raises(self):
        with pytest.raises(AlphabetError):
            Alphabet("AB").letter(2)
        with pytest.raises(AlphabetError):
            Alphabet("AB").letter(-1)

    def test_encode_dtype_and_values(self):
        codes = Alphabet("ACGT").encode("GATT")
        assert codes.dtype == np.int32
        assert codes.tolist() == [2, 0, 3, 3]

    def test_encode_unknown_letter_raises(self):
        with pytest.raises(AlphabetError):
            Alphabet("AB").encode("ABC")

    def test_encode_pattern_rejects_empty(self):
        with pytest.raises(PatternError):
            Alphabet("AB").encode_pattern("")

    def test_decode_roundtrip(self):
        alpha = Alphabet("ACGT")
        assert alpha.decode(alpha.encode("TTAGC")) == "TTAGC"

    @given(st.text(alphabet="ACGT", min_size=1, max_size=50))
    def test_encode_decode_roundtrip_property(self, text):
        alpha = Alphabet.dna()
        assert alpha.decode(alpha.encode(text)) == text

    def test_lexicographic_order_preserved(self):
        alpha = Alphabet("ACGT")
        a = alpha.encode("ACG").tolist()
        b = alpha.encode("ACT").tolist()
        assert (a < b) == ("ACG" < "ACT")


class TestAsCodeArray:
    def test_infers_alphabet(self):
        codes, alpha = as_code_array("CABA")
        assert alpha.letters == ["A", "B", "C"]
        assert codes.tolist() == [2, 0, 1, 0]

    def test_ndarray_identity_alphabet(self):
        arr = np.asarray([3, 0, 2], dtype=np.int64)
        codes, alpha = as_code_array(arr)
        assert codes.tolist() == [3, 0, 2]
        assert alpha.size == 4

    def test_ndarray_negative_rejected(self):
        with pytest.raises(AlphabetError):
            as_code_array(np.asarray([-1, 0]))

    def test_ndarray_2d_rejected(self):
        with pytest.raises(AlphabetError):
            as_code_array(np.zeros((2, 2), dtype=np.int64))

    def test_explicit_alphabet_used(self):
        alpha = Alphabet("ABCD")
        codes, got = as_code_array("BAD", alpha)
        assert got is alpha
        assert codes.tolist() == [1, 0, 3]
