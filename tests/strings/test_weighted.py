"""Tests for repro.strings.weighted."""

import numpy as np
import pytest
from hypothesis import given

from repro.errors import WeightedStringError
from repro.strings.weighted import WeightedString

from tests.conftest import weighted_strings


class TestValidation:
    def test_length_mismatch_rejected(self):
        with pytest.raises(WeightedStringError):
            WeightedString("ABC", [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(WeightedStringError):
            WeightedString("", [])

    def test_nan_utilities_rejected(self):
        with pytest.raises(WeightedStringError):
            WeightedString("AB", [1.0, float("nan")])

    def test_inf_utilities_rejected(self):
        with pytest.raises(WeightedStringError):
            WeightedString("AB", [1.0, float("inf")])

    def test_2d_utilities_rejected(self):
        with pytest.raises(WeightedStringError):
            WeightedString("AB", np.ones((2, 1)))


class TestAccessors:
    def test_basic_properties(self, paper_example):
        assert paper_example.length == 20
        assert len(paper_example) == 20
        assert paper_example.alphabet.size == 4
        assert paper_example.letter(0) == "A"
        assert paper_example.letter(1) == "T"

    def test_codes_readonly(self, paper_example):
        with pytest.raises(ValueError):
            paper_example.codes[0] = 3

    def test_utilities_readonly(self, paper_example):
        with pytest.raises(ValueError):
            paper_example.utilities[0] = 9.0

    def test_text_roundtrip(self, paper_example):
        assert paper_example.text() == "ATACCCCGATAATACCCCAG"

    def test_text_decoded_when_built_from_codes(self):
        ws = WeightedString(np.asarray([0, 1, 0], dtype=np.int32), [1, 2, 3])
        assert ws.text() == "010"

    def test_repr(self, paper_example):
        assert "n=20" in repr(paper_example)


class TestFragments:
    def test_fragment_contents(self, paper_example):
        assert paper_example.fragment_text(1, 6) == "TACCCC"

    def test_fragment_utilities(self, paper_example):
        np.testing.assert_allclose(
            paper_example.fragment_utilities(1, 6), [1, 3, 2, 0.7, 1, 1]
        )

    @pytest.mark.parametrize("start,length", [(-1, 2), (0, 0), (19, 2), (0, 21)])
    def test_fragment_out_of_range(self, paper_example, start, length):
        with pytest.raises(WeightedStringError):
            paper_example.fragment(start, length)

    def test_prefix_sums_match_cumsum(self, paper_example):
        np.testing.assert_allclose(
            paper_example.prefix_sums(), np.cumsum(paper_example.utilities)
        )


class TestUniform:
    def test_uniform_sets_constant_utility(self):
        ws = WeightedString.uniform("ABCA", 2.5)
        np.testing.assert_allclose(ws.utilities, [2.5] * 4)

    def test_uniform_default_is_one(self):
        ws = WeightedString.uniform("AB")
        np.testing.assert_allclose(ws.utilities, [1.0, 1.0])


@given(weighted_strings())
def test_fragment_utilities_always_match_slice(ws):
    mid = ws.length // 2 + 1
    length = min(3, ws.length - 0)
    if length >= 1:
        np.testing.assert_allclose(
            ws.fragment_utilities(0, length), ws.utilities[:length]
        )
