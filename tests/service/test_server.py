"""End-to-end HTTP tests for the serving front-end (ephemeral port)."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.core.usi import UsiIndex
from repro.service.registry import IndexRegistry
from repro.service.server import UsiServer
from repro.strings.weighted import WeightedString


def _post(url: str, payload: dict, path: str = "/query") -> tuple[int, dict]:
    request = urllib.request.Request(
        url + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get(url: str, path: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url + path, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture(scope="module")
def server():
    registry = IndexRegistry(cache_size=64)
    registry.register(
        "abra", UsiIndex.build(WeightedString.uniform("ABRACADABRAABRACADABRA"), k=10)
    )
    with UsiServer(registry, port=0) as running:
        yield running


class TestQuery:
    def test_single_pattern(self, server):
        status, body = _post(server.url, {"pattern": "ABRA"})
        assert status == 200
        assert body["index"] == "abra"
        assert body["results"] == [{"pattern": "ABRA", "utility": 16.0}]

    def test_batch_with_counts(self, server):
        status, body = _post(
            server.url, {"patterns": ["ABRA", "ZZZ"], "count": True}
        )
        assert status == 200
        assert body["results"][0] == {"pattern": "ABRA", "utility": 16.0, "count": 4}
        assert body["results"][1] == {"pattern": "ZZZ", "utility": 0.0, "count": 0}

    def test_named_index(self, server):
        status, body = _post(server.url, {"index": "abra", "pattern": "CAD"})
        assert status == 200
        assert body["results"][0]["utility"] > 0

    def test_unknown_index_404(self, server):
        status, body = _post(server.url, {"index": "ghost", "pattern": "A"})
        assert status == 404
        assert "ghost" in body["error"]

    @pytest.mark.parametrize(
        "payload",
        [
            {},                                   # neither pattern nor patterns
            {"pattern": "A", "patterns": ["B"]},  # both
            {"patterns": []},                     # empty batch
            {"patterns": ["A", 5]},               # non-string pattern
            {"pattern": ""},                      # empty pattern
        ],
    )
    def test_bad_requests_400(self, server, payload):
        status, body = _post(server.url, payload)
        assert status == 400
        assert "error" in body

    def test_malformed_json_400(self, server):
        request = urllib.request.Request(
            server.url + "/query", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400


class TestIntrospection:
    def test_healthz(self, server):
        status, body = _get(server.url, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["breaker"] == "closed"
        assert body["reasons"] == []

    def test_indexes_listing(self, server):
        status, body = _get(server.url, "/indexes")
        assert status == 200
        assert body["indexes"][0]["name"] == "abra"
        assert body["indexes"][0]["resident"] is True

    def test_stats_reflect_traffic(self, server):
        for _ in range(3):
            _post(server.url, {"pattern": "ABRA"})
        status, body = _get(server.url, "/stats")
        assert status == 200
        assert body["server"]["total_queries"] >= 3
        engine = body["engines"]["abra"]
        assert engine["cache_hits"] >= 2
        assert engine["latency"]["p99_ms"] >= 0.0
        assert body["registry"]["indexes"] == 1

    def test_unknown_get_path_404(self, server):
        status, body = _get(server.url, "/nope")
        assert status == 404
        assert "error" in body
        assert "/nope" in body["error"]

    def test_unknown_post_path_404(self, server):
        status, body = _post(server.url, {"pattern": "ABRA"}, path="/nope")
        assert status == 404
        assert "error" in body
        assert "/nope" in body["error"]

    def test_ingest_on_a_static_index_400(self, server):
        # /ingest is routed (not a 404), but a static USI index is not
        # a dynamic backend, so the server refuses the append.
        status, body = _post(server.url, {"doc": "ABRA"}, path="/ingest")
        assert status == 400
        assert "does not ingest" in body["error"]


class TestKeepAliveHygiene:
    def test_error_without_draining_body_closes_connection(self, server):
        """A rejected request with an unread body must not desync
        keep-alive: the server advertises and performs a close."""
        import socket

        with socket.create_connection((server.host, server.port), timeout=10) as sock:
            sock.sendall(
                b"POST /query HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: 9000000\r\n\r\n"
                b'{"pattern":"ABRA"}'
            )
            sock.settimeout(5)
            response = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:  # server closed: no desynced second request
                    break
                response += chunk
        status_line = response.split(b"\r\n", 1)[0]
        assert b"400" in status_line
        assert b"connection: close" in response.lower()

    def test_happy_path_keeps_connection_alive(self, server):
        import socket

        body = b'{"pattern": "ABRA"}'
        request = (
            b"POST /query HTTP/1.1\r\nHost: t\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n" + body
        )
        with socket.create_connection((server.host, server.port), timeout=10) as sock:
            sock.settimeout(5)
            for _ in range(2):  # two requests on one connection
                sock.sendall(request)
                response = b""
                while b"16.0" not in response:
                    chunk = sock.recv(65536)
                    assert chunk, f"connection closed early: {response!r}"
                    response += chunk
                assert response.startswith(b"HTTP/1.1 200")
