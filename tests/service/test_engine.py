"""QueryEngine: caching semantics and thread-safety under hammering."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.usi import UsiIndex
from repro.errors import ParameterError
from repro.service.engine import QueryEngine
from repro.service.metrics import LatencyRecorder
from repro.strings.weighted import WeightedString


@pytest.fixture(scope="module")
def index() -> UsiIndex:
    rng = np.random.default_rng(7)
    codes = rng.integers(0, 4, size=600, dtype=np.int32)
    utilities = rng.integers(0, 8, size=600) * 0.25
    return UsiIndex.build(WeightedString(codes, utilities), k=20)


PATTERN_POOL = [
    np.asarray(p, dtype=np.int64)
    for p in ([0], [1], [2], [3], [0, 1], [1, 2], [2, 3], [0, 1, 2],
              [3, 3, 3, 3, 3, 3], [1, 0], [2, 2], [0, 0, 0])
]


class TestCaching:
    def test_answers_match_index(self, index):
        engine = QueryEngine(index, cache_size=64)
        expected = [index.query(p) for p in PATTERN_POOL]
        assert [engine.query(p) for p in PATTERN_POOL] == expected
        # Second pass: all hits, same answers.
        assert [engine.query(p) for p in PATTERN_POOL] == expected
        stats = engine.stats()
        assert stats["cache_hits"] == len(PATTERN_POOL)
        assert stats["cache_misses"] == len(PATTERN_POOL)
        assert stats["hit_rate"] == pytest.approx(0.5)

    def test_batch_matches_scalar_and_dedupes(self, index):
        engine = QueryEngine(index, cache_size=64)
        patterns = PATTERN_POOL + PATTERN_POOL[:3]
        values = engine.query_batch(patterns)
        assert values == [index.query(p) for p in patterns]
        # Duplicates inside one batch miss only once.
        assert engine.stats()["cache_misses"] == len(PATTERN_POOL)

    def test_eviction_is_lru(self, index):
        engine = QueryEngine(index, cache_size=2)
        a, b, c = PATTERN_POOL[:3]
        engine.query(a)
        engine.query(b)
        engine.query(a)   # refresh a; b is now coldest
        engine.query(c)   # evicts b
        assert engine.stats()["cache_evictions"] == 1
        engine.query(a)   # still cached
        assert engine.stats()["cache_hits"] == 2

    def test_zero_cache_disables_caching(self, index):
        engine = QueryEngine(index, cache_size=0)
        engine.query(PATTERN_POOL[0])
        engine.query(PATTERN_POOL[0])
        stats = engine.stats()
        assert stats["cache_hits"] == 0
        assert stats["cache_misses"] == 2
        assert stats["cache_entries"] == 0

    def test_key_distinguishes_types(self, index):
        engine = QueryEngine(index, cache_size=8)
        engine.query("01")            # unencodable text -> 0.0 cached
        engine.query(np.asarray([0, 1], dtype=np.int64))
        assert engine.stats()["cache_misses"] == 2

    def test_rejects_negative_cache(self, index):
        with pytest.raises(ParameterError):
            QueryEngine(index, cache_size=-1)


class TestConcurrency:
    def test_hammer_from_many_threads(self, index):
        engine = QueryEngine(index, cache_size=8)  # small: forces evictions
        expected = {id(p): index.query(p) for p in PATTERN_POOL}
        rounds = 60
        workers = 8
        errors: list[str] = []
        barrier = threading.Barrier(workers)

        def hammer(seed: int) -> None:
            rng = np.random.default_rng(seed)
            barrier.wait()
            for _ in range(rounds):
                if rng.random() < 0.5:
                    pattern = PATTERN_POOL[int(rng.integers(len(PATTERN_POOL)))]
                    if engine.query(pattern) != expected[id(pattern)]:
                        errors.append("scalar mismatch")
                else:
                    picks = [
                        PATTERN_POOL[int(i)]
                        for i in rng.integers(len(PATTERN_POOL), size=4)
                    ]
                    values = engine.query_batch(picks)
                    if values != [expected[id(p)] for p in picks]:
                        errors.append("batch mismatch")

        threads = [
            threading.Thread(target=hammer, args=(seed,)) for seed in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        stats = engine.stats()
        assert stats["cache_hits"] + stats["cache_misses"] > 0
        assert stats["cache_entries"] <= 8

    def test_shared_metrics_aggregates(self, index):
        recorder = LatencyRecorder(capacity=128)
        first = QueryEngine(index, cache_size=8, metrics=recorder)
        second = QueryEngine(index, cache_size=8, metrics=recorder)
        first.query(PATTERN_POOL[0])
        second.query_batch(PATTERN_POOL[:5])
        snapshot = recorder.snapshot()
        assert snapshot.total_queries == 6
        assert snapshot.total_calls == 2
        assert snapshot.p99_ms >= snapshot.p50_ms >= 0.0
