"""QueryEngine: caching semantics and thread-safety under hammering."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.api.protocol import Capabilities, UtilityIndexBase
from repro.core.usi import UsiIndex
from repro.errors import ParameterError
from repro.service.engine import QueryEngine
from repro.service.metrics import LatencyRecorder
from repro.strings.weighted import WeightedString


@pytest.fixture(scope="module")
def index() -> UsiIndex:
    rng = np.random.default_rng(7)
    codes = rng.integers(0, 4, size=600, dtype=np.int32)
    utilities = rng.integers(0, 8, size=600) * 0.25
    return UsiIndex.build(WeightedString(codes, utilities), k=20)


PATTERN_POOL = [
    np.asarray(p, dtype=np.int64)
    for p in ([0], [1], [2], [3], [0, 1], [1, 2], [2, 3], [0, 1, 2],
              [3, 3, 3, 3, 3, 3], [1, 0], [2, 2], [0, 0, 0])
]


class TestCaching:
    def test_answers_match_index(self, index):
        engine = QueryEngine(index, cache_size=64)
        expected = [index.query(p) for p in PATTERN_POOL]
        assert [engine.query(p) for p in PATTERN_POOL] == expected
        # Second pass: all hits, same answers.
        assert [engine.query(p) for p in PATTERN_POOL] == expected
        stats = engine.stats()
        assert stats["cache_hits"] == len(PATTERN_POOL)
        assert stats["cache_misses"] == len(PATTERN_POOL)
        assert stats["hit_rate"] == pytest.approx(0.5)

    def test_batch_matches_scalar_and_dedupes(self, index):
        engine = QueryEngine(index, cache_size=64)
        patterns = PATTERN_POOL + PATTERN_POOL[:3]
        values = engine.query_batch(patterns)
        assert values == [index.query(p) for p in patterns]
        # Duplicates inside one batch miss only once.
        assert engine.stats()["cache_misses"] == len(PATTERN_POOL)

    def test_eviction_is_lru(self, index):
        engine = QueryEngine(index, cache_size=2)
        a, b, c = PATTERN_POOL[:3]
        engine.query(a)
        engine.query(b)
        engine.query(a)   # refresh a; b is now coldest
        engine.query(c)   # evicts b
        assert engine.stats()["cache_evictions"] == 1
        engine.query(a)   # still cached
        assert engine.stats()["cache_hits"] == 2

    def test_zero_cache_disables_caching(self, index):
        engine = QueryEngine(index, cache_size=0)
        engine.query(PATTERN_POOL[0])
        engine.query(PATTERN_POOL[0])
        stats = engine.stats()
        assert stats["cache_hits"] == 0
        assert stats["cache_misses"] == 2
        assert stats["cache_entries"] == 0

    def test_key_distinguishes_types(self, index):
        engine = QueryEngine(index, cache_size=8)
        engine.query("01")            # unencodable text -> 0.0 cached
        engine.query(np.asarray([0, 1], dtype=np.int64))
        assert engine.stats()["cache_misses"] == 2

    def test_rejects_negative_cache(self, index):
        with pytest.raises(ParameterError):
            QueryEngine(index, cache_size=-1)


class TestConcurrency:
    def test_hammer_from_many_threads(self, index):
        engine = QueryEngine(index, cache_size=8)  # small: forces evictions
        expected = {id(p): index.query(p) for p in PATTERN_POOL}
        rounds = 60
        workers = 8
        errors: list[str] = []
        barrier = threading.Barrier(workers)

        def hammer(seed: int) -> None:
            rng = np.random.default_rng(seed)
            barrier.wait()
            for _ in range(rounds):
                if rng.random() < 0.5:
                    pattern = PATTERN_POOL[int(rng.integers(len(PATTERN_POOL)))]
                    if engine.query(pattern) != expected[id(pattern)]:
                        errors.append("scalar mismatch")
                else:
                    picks = [
                        PATTERN_POOL[int(i)]
                        for i in rng.integers(len(PATTERN_POOL), size=4)
                    ]
                    values = engine.query_batch(picks)
                    if values != [expected[id(p)] for p in picks]:
                        errors.append("batch mismatch")

        threads = [
            threading.Thread(target=hammer, args=(seed,)) for seed in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        stats = engine.stats()
        assert stats["cache_hits"] + stats["cache_misses"] > 0
        assert stats["cache_entries"] <= 8

    def test_shared_metrics_aggregates(self, index):
        recorder = LatencyRecorder(capacity=128)
        first = QueryEngine(index, cache_size=8, metrics=recorder)
        second = QueryEngine(index, cache_size=8, metrics=recorder)
        first.query(PATTERN_POOL[0])
        second.query_batch(PATTERN_POOL[:5])
        snapshot = recorder.snapshot()
        assert snapshot.total_queries == 6
        assert snapshot.total_calls == 2
        assert snapshot.p99_ms >= snapshot.p50_ms >= 0.0


class _CountingBackend(UtilityIndexBase):
    """Fake batch backend that records exactly what reaches the index."""

    backend_name = "counting"
    capabilities = Capabilities(batch=True)

    def __init__(self) -> None:
        self.batch_calls: list[list[str]] = []

    def query(self, pattern) -> float:
        return float(len(pattern))

    def query_batch(self, patterns) -> list[float]:
        self.batch_calls.append(list(patterns))
        return [float(len(p)) for p in patterns]


class _VersionedBackend(UtilityIndexBase):
    """Fake dynamic backend whose answers move with ``data_version``."""

    backend_name = "versioned"
    capabilities = Capabilities(batch=True, dynamic=True)

    def __init__(self) -> None:
        self._version = 0
        self._answer = 1.0
        self.bump_mid_flight = False

    def bump(self) -> None:
        self._version += 1
        self._answer += 1.0

    def data_version(self) -> int:
        return self._version

    def query(self, pattern) -> float:
        if self.bump_mid_flight:
            self.bump()
        return self._answer

    def query_batch(self, patterns) -> list[float]:
        if self.bump_mid_flight:
            self.bump()
        return [self._answer for _ in patterns]


class TestBatchAdmission:
    def test_backend_sees_unique_patterns_only(self):
        backend = _CountingBackend()
        engine = QueryEngine(backend, cache_size=64)
        values = engine.query_batch(["aa", "b", "aa", "ccc", "b", "aa"])
        assert values == [2.0, 1.0, 2.0, 3.0, 1.0, 2.0]
        # One backend call, first-seen order, duplicates stripped.
        assert backend.batch_calls == [["aa", "b", "ccc"]]
        stats = engine.stats()
        assert stats["cache_misses"] == 3
        # Duplicates folded in the admission pass are neither hits nor
        # misses — the cache was empty; they share the one probe.
        assert stats["cache_hits"] == 0

    def test_cached_patterns_never_reach_backend(self):
        backend = _CountingBackend()
        engine = QueryEngine(backend, cache_size=64)
        engine.query_batch(["aa", "b"])
        engine.query_batch(["b", "ccc", "aa"])
        assert backend.batch_calls == [["aa", "b"], ["ccc"]]


class TestDynamicVersion:
    def test_version_bump_between_calls_invalidates(self):
        backend = _VersionedBackend()
        engine = QueryEngine(backend, cache_size=64)
        assert engine.query("p") == 1.0
        assert engine.query("p") == 1.0  # cached
        backend.bump()
        assert engine.query("p") == 2.0  # cache dropped, fresh answer
        stats = engine.stats()
        assert stats["cache_invalidations"] == 1
        assert stats["data_version"] == 1

    def test_mid_flight_bump_serves_but_never_caches_scalar(self):
        backend = _VersionedBackend()
        engine = QueryEngine(backend, cache_size=64)
        backend.bump_mid_flight = True
        # The answer computed mid-bump is served (it was true when
        # computed) but must not be cached against the new version.
        assert engine.query("p") == 2.0
        backend.bump_mid_flight = False
        assert engine.query("p") == 2.0  # recomputed, not a stale hit
        assert engine.stats()["cache_misses"] == 2
        assert engine.query("p") == 2.0  # now cached
        assert engine.stats()["cache_hits"] == 1

    def test_mid_flight_bump_serves_but_never_caches_batch(self):
        backend = _VersionedBackend()
        engine = QueryEngine(backend, cache_size=64)
        backend.bump_mid_flight = True
        assert engine.query_batch(["p", "q", "p"]) == [2.0, 2.0, 2.0]
        backend.bump_mid_flight = False
        # Nothing was cached against the moved version: both unique
        # patterns miss again and get the current (identical) answer.
        assert engine.query_batch(["p", "q"]) == [2.0, 2.0]
        stats = engine.stats()
        assert stats["cache_misses"] == 4
        assert stats["cache_entries"] == 2  # second batch cached cleanly
