"""POSTs with missing, invalid, or lying ``Content-Length`` headers.

Before the fix these could pin a handler thread forever: the stdlib
handler would block on ``rfile.read`` waiting for body bytes a client
never sends.  Now the server answers with JSON ``411``/``400`` and the
read is bounded by the connection timeout.
"""

from __future__ import annotations

import json
import socket

import pytest

from repro import WeightedString
from repro.core.usi import UsiIndex
from repro.service.registry import IndexRegistry
from repro.service.server import UsiServer


@pytest.fixture(scope="module")
def server():
    registry = IndexRegistry(cache_size=64)
    registry.register(
        "abra", UsiIndex.build(WeightedString.uniform("ABRACADABRAABRACADABRA"), k=10)
    )
    # A short request timeout keeps the short-read test fast; the
    # connection budget only caps how long a promised body may dawdle.
    with UsiServer(registry, port=0, request_timeout=0.5) as running:
        yield running


def _raw_request(server, head: str, body: bytes = b"") -> "tuple[int, dict]":
    with socket.create_connection(
        ("127.0.0.1", server.port), timeout=10
    ) as connection:
        connection.sendall(head.encode() + body)
        response = b""
        connection.settimeout(10)
        try:
            while b"\r\n\r\n" not in response:
                chunk = connection.recv(65536)
                if not chunk:
                    break
                response += chunk
            head_part, _, rest = response.partition(b"\r\n\r\n")
            length = 0
            for line in head_part.split(b"\r\n"):
                if line.lower().startswith(b"content-length:"):
                    length = int(line.split(b":")[1])
            while len(rest) < length:
                chunk = connection.recv(65536)
                if not chunk:
                    break
                rest += chunk
        except TimeoutError:
            pytest.fail("server never answered (handler thread hung)")
        status = int(head_part.split(b" ")[1])
        return status, json.loads(rest)


def test_missing_content_length_is_411(server):
    status, body = _raw_request(
        server, "POST /query HTTP/1.1\r\nHost: x\r\n\r\n"
    )
    assert status == 411
    assert body == {"error": "Content-Length required on POST"}


def test_non_integer_content_length_is_400(server):
    status, body = _raw_request(
        server,
        "POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: banana\r\n\r\n",
    )
    assert status == 400
    assert body == {"error": "bad Content-Length"}


def test_zero_and_negative_content_length_are_400(server):
    for value in ("0", "-5"):
        status, body = _raw_request(
            server,
            f"POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: {value}\r\n\r\n",
        )
        assert status == 400
        assert body == {"error": "request body required (JSON)"}


def test_short_body_times_out_with_400_instead_of_hanging(server):
    # Promise 100 bytes, send 10, keep the socket open: the handler
    # must give up at the connection timeout and answer, not block.
    status, body = _raw_request(
        server,
        "POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 100\r\n\r\n",
        body=b'{"pattern"',
    )
    assert status == 400
    assert body == {"error": "request body shorter than Content-Length"}


def test_wellformed_post_still_works_under_the_timeout(server):
    payload = json.dumps({"pattern": "ABRA"}).encode()
    status, body = _raw_request(
        server,
        "POST /query HTTP/1.1\r\nHost: x\r\n"
        f"Content-Length: {len(payload)}\r\n\r\n",
        body=payload,
    )
    assert status == 200
    assert body["results"][0]["utility"] == 16.0
