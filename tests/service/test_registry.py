"""IndexRegistry: lazy loading through repro.io, eviction, pinning."""

from __future__ import annotations

import pickle

import pytest

from repro.core.usi import UsiIndex
from repro.errors import ParameterError
from repro.io import save_index
from repro.service.registry import IndexRegistry
from repro.service.sharding import ShardedUsiIndex
from repro.strings.weighted import WeightedString


@pytest.fixture(scope="module")
def built_index() -> UsiIndex:
    return UsiIndex.build(WeightedString.uniform("ABRACADABRAABRACADABRA"), k=10)


class TestLazyLoading:
    def test_npz_round_trip(self, built_index, tmp_path):
        path = tmp_path / "corpus.npz"
        save_index(built_index, path)
        registry = IndexRegistry()
        registry.register_path("corpus", path)
        assert registry.describe()[0]["resident"] is False
        engine = registry.get("corpus")
        assert engine.query("ABRA") == built_index.query("ABRA")
        assert engine.query("ZZZ") == 0.0
        assert registry.describe()[0]["resident"] is True
        assert registry.stats()["loads"] == 1
        # Second get reuses the resident engine (and its cache).
        assert registry.get("corpus") is engine
        assert registry.stats()["loads"] == 1

    def test_pickle_round_trip_sharded(self, tmp_path):
        from repro.strings.alphabet import Alphabet
        from repro.strings.collection import WeightedStringCollection

        alphabet = Alphabet.from_text("ABRACADABRA")
        documents = [
            WeightedString.uniform(t, alphabet=alphabet)
            for t in ["ABRA", "CADABRA"]
        ]
        sharded = ShardedUsiIndex.build(
            WeightedStringCollection(documents), 2, parallel="serial", k=3
        )
        path = tmp_path / "sharded.pkl"
        path.write_bytes(pickle.dumps(sharded))
        registry = IndexRegistry()
        registry.register_path("sharded", path)
        assert registry.get("sharded").query("ABRA") == sharded.utility("ABRA")

    def test_missing_file_rejected(self, tmp_path):
        registry = IndexRegistry()
        with pytest.raises(ParameterError):
            registry.register_path("ghost", tmp_path / "ghost.npz")

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            IndexRegistry().get("nope")


class TestEvictionAndPinning:
    def _saved(self, tmp_path, name: str, text: str):
        index = UsiIndex.build(WeightedString.uniform(text), k=5)
        path = tmp_path / f"{name}.npz"
        save_index(index, path)
        return path

    def test_cold_indexes_unload_and_reload(self, tmp_path):
        registry = IndexRegistry(capacity=1)
        registry.register_path("first", self._saved(tmp_path, "first", "ABAB"))
        registry.register_path("second", self._saved(tmp_path, "second", "BCBC"))
        assert registry.get("first").query("AB") == 4.0
        assert registry.get("second").query("BC") == 4.0  # evicts "first"
        stats = registry.stats()
        assert stats["evictions"] == 1
        assert stats["resident"] == 1
        rows = {row["name"]: row for row in registry.describe()}
        assert rows["first"]["resident"] is False
        # Transparent reload, same answers.
        assert registry.get("first").query("AB") == 4.0
        assert registry.stats()["loads"] == 3

    def test_pinned_indexes_survive_pressure(self, built_index, tmp_path):
        registry = IndexRegistry(capacity=1)
        pinned = registry.register("pinned", built_index)
        registry.register_path("disk", self._saved(tmp_path, "disk", "ABAB"))
        registry.get("disk")
        registry.get("disk")
        # Pinned index was never dropped even though capacity is 1.
        assert registry.get("pinned") is pinned
        rows = {row["name"]: row for row in registry.describe()}
        assert rows["pinned"]["pinned"] is True
        assert rows["pinned"]["resident"] is True

    def test_duplicate_names_rejected(self, built_index):
        registry = IndexRegistry()
        registry.register("x", built_index)
        with pytest.raises(ParameterError):
            registry.register("x", built_index)

    def test_default_name_only_when_single(self, built_index):
        registry = IndexRegistry()
        assert registry.default_name() is None
        registry.register("only", built_index)
        assert registry.default_name() == "only"
        registry.register("another", built_index)
        assert registry.default_name() is None
        registry.unregister("another")
        assert registry.default_name() == "only"


class TestReloadRaces:
    def test_reregister_during_load_discards_stale_engine(self, tmp_path):
        """An index swapped out mid-load must not serve stale data."""
        from repro.service import registry as registry_module

        stale_path = tmp_path / "stale.npz"
        fresh_path = tmp_path / "fresh.npz"
        save_index(UsiIndex.build(WeightedString.uniform("ABAB"), k=3), stale_path)
        save_index(UsiIndex.build(WeightedString.uniform("CDCD"), k=3), fresh_path)

        registry = IndexRegistry()
        calls: list = []

        def loader(path):
            calls.append(path)
            if len(calls) == 1:
                # Simulate a concurrent swap while the load is in flight.
                registry.unregister("idx")
                registry.register_path("idx", fresh_path)
            return registry_module._default_loader(path)

        registry._loader = loader
        registry.register_path("idx", stale_path)
        engine = registry.get("idx")
        assert calls == [stale_path, fresh_path]
        assert engine.query("CD") == 4.0   # answers come from fresh.npz
        assert engine.query("AB") == 0.0   # not from the superseded file


class TestReplace:
    def test_replace_swaps_answers_and_bumps_generation(self, built_index):
        registry = IndexRegistry()
        registry.register("corpus", built_index)
        assert registry.describe()[0]["generation"] == 1
        replacement = UsiIndex.build(WeightedString.uniform("CDCD"), k=3)
        engine = registry.replace("corpus", replacement)
        assert registry.get("corpus") is engine
        assert engine.query("CD") == 4.0
        assert registry.describe()[0]["generation"] == 2
        assert registry.stats()["replacements"] == 1

    def test_replace_unknown_name_raises(self, built_index):
        registry = IndexRegistry()
        with pytest.raises(KeyError):
            registry.replace("ghost", built_index)

    def test_replace_closes_a_different_underlying_index(self, built_index):
        class Closeable:
            closed = False

            def query(self, pattern):
                return 0.0

            def close(self):
                self.closed = True

        old = Closeable()
        registry = IndexRegistry()
        registry.register("corpus", old)
        registry.replace("corpus", built_index)
        assert old.closed is True

    def test_republishing_the_same_index_never_closes_it(self):
        """The compactor's pattern: replace(name, same_object) is a
        cache-refresh + generation bump, not a teardown."""

        class Closeable:
            closed = False

            def query(self, pattern):
                return 0.0

            def close(self):
                self.closed = True

        index = Closeable()
        registry = IndexRegistry()
        registry.register("corpus", index)
        registry.replace("corpus", index)
        registry.replace("corpus", index)
        assert index.closed is False
        assert registry.describe()[0]["generation"] == 3

    def test_replace_pins_a_path_backed_entry(self, built_index, tmp_path):
        path = tmp_path / "corpus.npz"
        save_index(built_index, path)
        registry = IndexRegistry()
        registry.register_path("corpus", path)
        registry.get("corpus")
        replacement = UsiIndex.build(WeightedString.uniform("CDCD"), k=3)
        registry.replace("corpus", replacement)
        row = registry.describe()[0]
        assert row["pinned"] is True
        assert row["path"] is None
        assert registry.get("corpus").query("CD") == 4.0

    def test_replace_on_a_closed_registry_raises(self, built_index):
        registry = IndexRegistry()
        registry.register("corpus", built_index)
        registry.close()
        with pytest.raises(ParameterError, match="closed"):
            registry.replace("corpus", built_index)
