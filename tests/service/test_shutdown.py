"""Graceful shutdown: in-flight requests finish, new ones are refused."""

from __future__ import annotations

import json
import signal
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import WeightedString
from repro.core.usi import UsiIndex
from repro.service.registry import IndexRegistry
from repro.service.server import UsiServer


class SlowIndex:
    """An index whose queries take a controlled amount of time."""

    def __init__(self, delay: float) -> None:
        self.delay = delay
        self.started = threading.Event()
        self.completed = 0

    def query(self, pattern) -> float:
        self.started.set()
        time.sleep(self.delay)
        self.completed += 1
        return float(len(pattern))


def _post_query(url: str, pattern: str) -> dict:
    request = urllib.request.Request(
        url + "/query",
        data=json.dumps({"pattern": pattern}).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


def test_graceful_shutdown_finishes_inflight_and_closes_registry():
    slow = SlowIndex(delay=0.4)
    registry = IndexRegistry(cache_size=0)
    registry.register("slow", slow)
    server = UsiServer(registry, port=0).start()
    url = server.url

    result: dict = {}

    def run_request():
        result.update(_post_query(url, "ABCD"))

    worker = threading.Thread(target=run_request)
    worker.start()
    assert slow.started.wait(timeout=5)  # the request is now in flight

    t0 = time.perf_counter()
    server.graceful_shutdown(timeout=10)
    elapsed = time.perf_counter() - t0

    worker.join(timeout=10)
    # The in-flight request completed with a real answer...
    assert result["results"][0]["utility"] == pytest.approx(4.0)
    assert slow.completed == 1
    # ...the drain actually waited for it...
    assert elapsed >= 0.1
    # ...and the registry is closed afterwards.
    assert registry.closed
    with pytest.raises(KeyError):
        registry.get("slow")


def test_draining_server_refuses_new_requests():
    slow = SlowIndex(delay=0.6)
    registry = IndexRegistry(cache_size=0)
    registry.register("slow", slow)
    server = UsiServer(registry, port=0).start()
    url = server.url

    worker = threading.Thread(target=lambda: _post_query(url, "AB"))
    worker.start()
    assert slow.started.wait(timeout=5)

    drainer = threading.Thread(target=server.graceful_shutdown)
    drainer.start()
    # Wait until the drain flag is up, then try a new request.
    for _ in range(100):
        if server._http.draining:
            break
        time.sleep(0.01)
    with pytest.raises(OSError):
        # Refused with 503 (HTTPError), listener closed (URLError), or
        # the connection torn down mid-read (ConnectionResetError) —
        # all OSError subclasses, and all mean "no new work".
        _post_query(url, "REFUSED")
    worker.join(timeout=10)
    drainer.join(timeout=10)
    assert slow.completed == 1  # only the in-flight request ran


def test_graceful_shutdown_is_idempotent():
    registry = IndexRegistry()
    registry.register("idx", UsiIndex.build(WeightedString.uniform("ABAB"), k=2))
    server = UsiServer(registry, port=0).start()
    server.graceful_shutdown(timeout=5)
    server.graceful_shutdown(timeout=5)  # second call is a no-op
    assert registry.closed


def test_signal_handler_installation_requires_main_thread():
    registry = IndexRegistry()
    server = UsiServer(registry, port=0)
    outcome: dict = {}

    def install_off_main():
        server.install_signal_handlers()
        outcome["handlers"] = dict(server._previous_handlers)

    thread = threading.Thread(target=install_off_main)
    thread.start()
    thread.join()
    assert outcome["handlers"] == {}  # no-op off the main thread

    # On the main thread the handlers install and restore cleanly.
    before = signal.getsignal(signal.SIGTERM)
    server.install_signal_handlers()
    assert signal.getsignal(signal.SIGTERM) == server._handle_signal
    server._restore_signal_handlers()
    assert signal.getsignal(signal.SIGTERM) == before
    server.shutdown()
