"""Multi-core shard fan-out: pooled answers bitwise equal serial ones.

The pool only changes *where* each shard's batch runs (a forked worker
process instead of the calling thread); replies are reassembled in
shard order and feed the same exact merge.  These tests pin that:
pooled ``query_batch`` must equal the serial path ``==``, across
worker counts and aggregators.  Platforms where a pool cannot start
(no fork, sandboxed process creation) skip the pooled assertions —
``start_query_pool`` returning ``False`` with serial answers intact
is itself the documented degraded mode.

Utilities are multiples of 0.25 (exactly representable), matching the
conventions of ``test_sharding.py``.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.service.shard_pool import ShardPoolError, ShardQueryPool
from repro.service.sharding import ShardedUsiIndex
from repro.strings.alphabet import Alphabet
from repro.strings.collection import WeightedStringCollection
from repro.strings.weighted import WeightedString


def _collection(doc_count: int = 6, seed: int = 13) -> WeightedStringCollection:
    rng = np.random.default_rng(seed)
    alphabet = Alphabet("AB")
    documents = []
    for _ in range(doc_count):
        length = int(rng.integers(8, 40))
        text = "".join("AB"[int(b)] for b in rng.integers(0, 2, size=length))
        quarters = rng.integers(0, 16, size=length).astype(np.float64) * 0.25
        documents.append(WeightedString(text, quarters, alphabet))
    return WeightedStringCollection(documents)


PATTERNS = [
    "A", "B", "AB", "BA", "AAB", "ABB", "ABAB", "BABA",
    "AAAA", "BBBBBBBBBB", "Z", "A!",
]


def _pool_or_skip(sharded: ShardedUsiIndex, workers: "int | None" = None) -> None:
    if not sharded.start_query_pool(workers=workers):
        pytest.skip("process pool unavailable on this platform")


class TestPooledEqualsSerial:
    @pytest.mark.parametrize("aggregator", ["sum", "min", "max", "avg"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_bitwise_identical_across_workers(self, aggregator, workers):
        sharded = ShardedUsiIndex.build(
            _collection(), 4, parallel="serial", k=6, aggregator=aggregator
        )
        serial = sharded.query_batch(PATTERNS)
        serial_counts = sharded.count_batch(PATTERNS)
        _pool_or_skip(sharded, workers=workers)
        try:
            assert sharded.query_pool_workers >= 1
            pooled = sharded.query_batch(PATTERNS)
            assert pooled == serial  # bitwise: same floats, not approx
            assert sharded.count_batch(PATTERNS) == serial_counts
        finally:
            sharded.stop_query_pool()
        assert sharded.query_pool_workers == 0
        # After shutdown the serial path answers identically again.
        assert sharded.query_batch(PATTERNS) == serial

    @pytest.mark.parametrize("workers", [1, 2, 3, 4])
    def test_pooled_matches_monolithic(self, workers):
        """Pooled fan-out == one monolithic index over the combined text.

        The full chain: shard answers merged across forked workers
        must exactly equal a single `UsiIndex` over the whole
        collection (sum partials of 0.25-multiples are exactly
        representable, so `==`, not approx).
        """
        from repro.core.usi import UsiIndex

        collection = _collection(5, seed=workers)
        mono = UsiIndex.build(collection.combined, k=6)
        sharded = ShardedUsiIndex.build(collection, 4, parallel="serial", k=6)
        _pool_or_skip(sharded, workers=workers)
        try:
            pooled = sharded.query_batch(PATTERNS)
        finally:
            sharded.stop_query_pool()
        expected = []
        for pattern in PATTERNS:
            try:
                codes = collection.encode_pattern(pattern)
            except Exception:
                expected.append(0.0)
                continue
            expected.append(mono.query(codes))
        assert pooled == expected

    def test_pool_restart_is_idempotent(self):
        sharded = ShardedUsiIndex.build(
            _collection(4), 4, parallel="serial", k=4
        )
        serial = sharded.query_batch(PATTERNS)
        _pool_or_skip(sharded)
        try:
            assert sharded.start_query_pool() is True  # already running
            assert sharded.query_batch(PATTERNS) == serial
        finally:
            sharded.stop_query_pool()
            sharded.stop_query_pool()  # idempotent


class TestDegradedModes:
    def test_single_shard_never_pools(self):
        sharded = ShardedUsiIndex.build(
            WeightedStringCollection(
                [WeightedString.uniform("ABRACADABRA")]
            ),
            1, parallel="serial", k=4,
        )
        assert sharded.start_query_pool() is False
        assert sharded.query_pool_workers == 0
        assert sharded.utility("ABRA") == 8.0

    def test_dead_worker_falls_back_to_serial(self):
        sharded = ShardedUsiIndex.build(
            _collection(4), 4, parallel="serial", k=4
        )
        serial = sharded.query_batch(PATTERNS)
        _pool_or_skip(sharded)
        # Kill the workers behind the index's back: the next pooled
        # query hits a broken pipe and must fall back to serial.
        sharded._query_pool._processes[0].terminate()
        for process in sharded._query_pool._processes:
            process.join(timeout=5)
        assert sharded.query_batch(PATTERNS) == serial
        assert sharded.query_pool_workers == 0  # pool was torn down

    def test_pickle_round_trip_drops_pool(self):
        sharded = ShardedUsiIndex.build(
            _collection(4), 2, parallel="serial", k=4
        )
        serial = sharded.query_batch(PATTERNS)
        started = sharded.start_query_pool()
        try:
            clone = pickle.loads(pickle.dumps(sharded))
            assert clone.query_pool_workers == 0  # pools never travel
            assert clone.query_batch(PATTERNS) == serial
        finally:
            if started:
                sharded.stop_query_pool()


class TestPoolInternals:
    def test_worker_clamp_and_stats(self):
        sharded = ShardedUsiIndex.build(
            _collection(4), 4, parallel="serial", k=4
        )
        try:
            pool = ShardQueryPool(sharded.shards, workers=64)
        except ShardPoolError:
            pytest.skip("process pool unavailable on this platform")
        try:
            assert pool.workers <= 4  # clamped to the shard count
            assert pool.ping()
            stats = pool.stats()
            assert stats["workers"] == pool.workers
            assert stats["broken"] is False
        finally:
            pool.close()
