"""Sharded-index correctness: shard answers == monolithic answers.

The load-bearing property: because shards are document-aligned and
patterns cannot contain the separator letter, the occurrence multiset
of any pattern is the disjoint union of the per-shard multisets — so
the merged utility and count must *exactly* equal the monolithic
index's.  Utilities are drawn as multiples of 0.25 so every partial
sum is exactly representable and the equality assertions are ``==``,
not approx.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.usi import UsiIndex
from repro.errors import ParameterError
from repro.service.sharding import ShardedUsiIndex
from repro.strings.alphabet import Alphabet
from repro.strings.collection import WeightedStringCollection
from repro.strings.weighted import WeightedString


def _documents(*texts: str) -> list[WeightedString]:
    """Uniform-weight documents over one shared alphabet."""
    alphabet = Alphabet.from_text("".join(texts))
    return [WeightedString.uniform(text, alphabet=alphabet) for text in texts]


@st.composite
def collections(draw, alphabet: str = "AB", max_documents: int = 6):
    """Random collections with exactly-representable utilities."""
    count = draw(st.integers(min_value=1, max_value=max_documents))
    shared = Alphabet(alphabet)
    documents = []
    for _ in range(count):
        text = draw(st.text(alphabet=alphabet, min_size=1, max_size=25))
        quarters = draw(
            st.lists(
                st.integers(min_value=0, max_value=16),
                min_size=len(text),
                max_size=len(text),
            )
        )
        documents.append(
            WeightedString(
                text, np.asarray(quarters, dtype=np.float64) * 0.25, shared
            )
        )
    return WeightedStringCollection(documents)


def _query_patterns(collection: WeightedStringCollection) -> list[str]:
    """Substrings that do occur, plus some that do not."""
    patterns = {"A", "B", "AB", "BA", "AAB", "ABAB", "BBBBBBBB"}
    for doc in collection.documents[:4]:
        text = doc.text()
        for length in (1, 2, 3):
            if len(text) >= length:
                patterns.add(text[:length])
                patterns.add(text[-length:])
    return sorted(patterns)


def _monolithic(collection: WeightedStringCollection, **kwargs) -> UsiIndex:
    return UsiIndex.build(collection.combined, **kwargs)


class TestExactEquality:
    @settings(max_examples=30, deadline=None)
    @given(collection=collections(), num_shards=st.integers(1, 4), data=st.data())
    def test_matches_monolithic_sum(self, collection, num_shards, data):
        mono = _monolithic(collection, k=8)
        sharded = ShardedUsiIndex.build(
            collection, num_shards, parallel="serial", k=8
        )
        assert sharded.shard_count == min(num_shards, collection.document_count)
        for pattern in _query_patterns(collection):
            codes = collection.encode_pattern(pattern)
            assert sharded.count(pattern) == mono.count(codes)
            assert sharded.utility(pattern) == mono.query(codes)

    @settings(max_examples=15, deadline=None)
    @given(collection=collections(), aggregator=st.sampled_from(["min", "max"]))
    def test_matches_monolithic_min_max(self, collection, aggregator):
        mono = _monolithic(collection, k=5, aggregator=aggregator)
        sharded = ShardedUsiIndex.build(
            collection, 3, parallel="serial", k=5, aggregator=aggregator
        )
        for pattern in _query_patterns(collection):
            codes = collection.encode_pattern(pattern)
            assert sharded.count(pattern) == mono.count(codes)
            assert sharded.utility(pattern) == mono.query(codes)

    @settings(max_examples=15, deadline=None)
    @given(collection=collections())
    def test_matches_monolithic_avg(self, collection):
        """avg re-divides at merge time: exact up to one float rounding."""
        mono = _monolithic(collection, k=5, aggregator="avg")
        sharded = ShardedUsiIndex.build(
            collection, 3, parallel="serial", k=5, aggregator="avg"
        )
        for pattern in _query_patterns(collection):
            codes = collection.encode_pattern(pattern)
            assert sharded.utility(pattern) == pytest.approx(
                mono.query(codes), rel=1e-12, abs=1e-12
            )

    @settings(max_examples=20, deadline=None)
    @given(collection=collections())
    def test_batch_equals_scalar(self, collection):
        sharded = ShardedUsiIndex.build(collection, 2, parallel="serial", k=8)
        patterns = _query_patterns(collection) + ["Z", "A!"]
        assert sharded.query_batch(patterns) == [
            sharded.utility(p) for p in patterns
        ]


class TestConstruction:
    def test_single_weighted_string_is_one_document(self):
        ws = WeightedString.uniform("ABRACADABRA")
        sharded = ShardedUsiIndex.build(ws, 4, parallel="serial", k=5)
        assert sharded.shard_count == 1
        assert sharded.utility("ABRA") == 8.0  # 2 occurrences * local utility 4

    def test_parallel_modes_agree(self):
        collection = WeightedStringCollection(
            _documents("ABRA", "CADABRA", "ABRACADABRA", "BANA")
        )
        answers = {}
        for mode in ("serial", "thread", "process"):
            index = ShardedUsiIndex.build(collection, 2, parallel=mode, k=5)
            answers[mode] = [index.utility(p) for p in ["ABRA", "AB", "RA", "Q"]]
        assert answers["serial"] == answers["thread"] == answers["process"]

    def test_shard_documents_partition(self):
        sharded = ShardedUsiIndex.build(
            WeightedStringCollection(_documents(*["AB"] * 5)), 3,
            parallel="serial", k=2,
        )
        flattened = [i for group in sharded.shard_documents for i in group]
        assert flattened == list(range(5))

    def test_document_frequency(self):
        sharded = ShardedUsiIndex.build(
            WeightedStringCollection(_documents("ABAB", "BBBB", "ABBA", "AAAA")),
            2, parallel="serial", k=3,
        )
        assert sharded.document_frequency("AB") == 2
        assert sharded.document_frequency("BB") == 2
        assert sharded.document_frequency("AAAA") == 1
        assert sharded.document_frequency("Q") == 0

    def test_rejects_bad_parameters(self):
        ws = WeightedString.uniform("AB")
        with pytest.raises(ParameterError):
            ShardedUsiIndex.build(ws, 0, parallel="serial", k=2)
        with pytest.raises(ParameterError):
            ShardedUsiIndex.build(ws, 1, parallel="bogus", k=2)  # type: ignore[arg-type]

    def test_unencodable_patterns_report_identity(self):
        ws = WeightedString.uniform("ABAB")
        sharded = ShardedUsiIndex.build(ws, 1, parallel="serial", k=2)
        assert sharded.utility("Z") == 0.0
        assert sharded.count("Z") == 0

    def test_pickle_round_trip(self):
        import pickle

        sharded = ShardedUsiIndex.build(
            WeightedStringCollection(_documents("ABRA", "CADABRA")), 2,
            parallel="serial", k=3,
        )
        clone = pickle.loads(pickle.dumps(sharded))
        for pattern in ["ABRA", "A", "DAB", "Q"]:
            assert clone.utility(pattern) == sharded.utility(pattern)
            assert clone.count(pattern) == sharded.count(pattern)
