"""Tests for the substring adaptations: SubstringHK and TopKTrie.

These are the paper's *negative-result* competitors: tests pin down
both their basic contracts (capacity, witness validity) and their
characteristic failures (missing long frequent substrings; frequency
overestimation, unlike Approximate-Top-K's one-sided error).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact_topk import exact_top_k
from repro.errors import ParameterError
from repro.streaming.substring_hk import SubstringHK
from repro.streaming.topk_trie import TopKTrie
from repro.strings.occurrences import naive_occurrences

from tests.conftest import texts_mixed


class TestSubstringHK:
    def test_reports_at_most_k(self):
        assert len(SubstringHK("ABABABAB", k=3, seed=0).mine()) <= 3

    def test_witnesses_in_range(self):
        text = "ABRACADABRA" * 5
        for mined in SubstringHK(text, k=8, seed=0).mine():
            assert 0 <= mined.position
            assert mined.position + mined.length <= len(text)
            assert mined.length >= 1

    def test_finds_hot_single_letters(self):
        text = "A" * 100 + "BCDEFG"
        mined = SubstringHK(text, k=3, seed=0).mine()
        contents = {text[m.position : m.position + m.length] for m in mined}
        assert any(c.startswith("A") for c in contents)

    def test_work_grows_with_k(self):
        text = "ABAB" * 100
        small = SubstringHK(text, k=2, seed=0)
        small.mine()
        large = SubstringHK(text, k=50, seed=0)
        large.mine()
        assert large.hashed_substrings >= small.hashed_substrings

    def test_misses_long_frequent_substrings(self):
        """The Section VII failure: long repeats are not reached."""
        motif = "QWERTYUIOPASDFGHJKLZXCVBNM" * 4  # length 104
        text = motif * 8
        k = 30
        exact_longest = max(m.length for m in exact_top_k(text, k))
        sh_longest = max(
            (m.length for m in SubstringHK(text, k=k, seed=0).mine()), default=0
        )
        assert sh_longest < exact_longest

    def test_ab_counterexample_quality(self):
        """On (AB)^(n/2) SubstringHK misses much of the true top-K."""
        text = "AB" * 100
        k = 12
        exact_contents = {
            text[m.position : m.position + m.length]
            for m in exact_top_k(text, k)
        }
        sh = SubstringHK(text, k=k, seed=0).mine()
        sh_contents = {text[m.position : m.position + m.length] for m in sh}
        assert len(sh_contents & exact_contents) < k

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            SubstringHK("AB", k=0)
        with pytest.raises(ParameterError):
            SubstringHK("AB", k=1, extension_base=1.0)

    def test_nbytes_independent_of_n(self):
        small = SubstringHK("AB" * 50, k=4, seed=0)
        small.mine()
        large = SubstringHK("AB" * 500, k=4, seed=0)
        large.mine()
        # O(K) space: within a small constant across a 10x text growth.
        assert large.nbytes() < 4 * max(small.nbytes(), 1) + 10_000

    @given(texts_mixed(max_size=60), st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_contract_property(self, text, k):
        mined = SubstringHK(text, k=k, seed=0).mine()
        assert len(mined) <= k
        for m in mined:
            assert 0 <= m.position and m.position + m.length <= len(text)


class TestTopKTrie:
    def test_reports_at_most_k(self):
        assert len(TopKTrie("ABABABAB", k=3).mine()) <= 3

    def test_node_budget_respected(self):
        trie = TopKTrie("ABRACADABRA" * 10, k=7)
        trie.mine()
        assert trie.node_count <= 7

    def test_finds_hot_letters_small_alphabet(self):
        text = "AAAABAAAB" * 10
        mined = TopKTrie(text, k=4).mine()
        contents = {text[m.position : m.position + m.length] for m in mined}
        assert "A" in contents

    def test_counts_can_overestimate(self):
        """Space-saving inheritance inflates counts — unlike AT."""
        rng = np.random.default_rng(0)
        text = "".join(rng.choice(list("ABCDEFGH"), size=400))
        mined = TopKTrie(text, k=5).mine()
        overestimates = 0
        for m in mined:
            substring = text[m.position : m.position + m.length]
            if m.frequency > len(naive_occurrences(text, substring)):
                overestimates += 1
        assert overestimates >= 1

    def test_misses_long_frequent_substrings(self):
        motif = "QWERTYUIOPASDFGHJKLZXCVBNM" * 4
        text = motif * 8
        k = 30
        exact_longest = max(m.length for m in exact_top_k(text, k))
        tt_longest = max(
            (m.length for m in TopKTrie(text, k=k).mine()), default=0
        )
        assert tt_longest < exact_longest

    def test_ab_counterexample_quality(self):
        """On (AB)^(n/2) the trie's inherited counters go wrong.

        The reported *set* can look fine on a two-letter alphabet, but
        the Misra-Gries count inheritance inflates frequencies, so the
        frequency-accuracy measure collapses (the paper's Fig-3 effect).
        """
        from repro.eval.metrics import evaluate_miner
        from repro.strings.alphabet import Alphabet
        from repro.suffix.suffix_array import SuffixArray

        text = "AB" * 100
        k = 12
        index = SuffixArray(Alphabet.from_text(text).encode(text))
        scores = evaluate_miner(TopKTrie(text, k=k).mine(), index, k)
        assert scores.accuracy_percent < 50.0

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            TopKTrie("AB", k=0)

    def test_nbytes_bounded_by_k(self):
        trie = TopKTrie("ABCD" * 200, k=9)
        trie.mine()
        assert trie.nbytes() <= 64 * 9

    @given(texts_mixed(max_size=60), st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_contract_property(self, text, k):
        trie = TopKTrie(text, k=k)
        mined = trie.mine()
        assert len(mined) <= k
        assert trie.node_count <= k
        for m in mined:
            assert 0 <= m.position and m.position + m.length <= len(text)
            assert m.frequency >= 1
