"""Tests for the item-level streaming structures (CMS, SS, HK)."""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.streaming.count_min import CountMinSketch
from repro.streaming.heavy_keeper import HeavyKeeper
from repro.streaming.space_saving import SpaceSaving


class TestCountMin:
    def test_overestimates_only(self):
        cms = CountMinSketch(width=64, depth=3, seed=0)
        stream = [1, 2, 3, 1, 1, 2] * 10
        for item in stream:
            cms.add(item)
        truth = Counter(stream)
        for item, count in truth.items():
            assert cms.estimate(item) >= count

    def test_exact_when_sparse(self):
        cms = CountMinSketch(width=4096, depth=4)
        for item in (10, 20, 30):
            cms.add(item, amount=5)
        assert cms.estimate(10) == 5
        assert cms.estimate(99) == 0

    def test_amount_parameter(self):
        cms = CountMinSketch()
        cms.add(7, amount=42)
        assert cms.estimate(7) >= 42

    def test_invalid_dimensions(self):
        with pytest.raises(ParameterError):
            CountMinSketch(width=0)
        with pytest.raises(ParameterError):
            CountMinSketch(depth=0)

    def test_nbytes(self):
        assert CountMinSketch(width=8, depth=2).nbytes() == 8 * 2 * 8

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=200))
    @settings(max_examples=25)
    def test_one_sided_error_property(self, stream):
        cms = CountMinSketch(width=32, depth=3, seed=1)
        for item in stream:
            cms.add(item)
        truth = Counter(stream)
        for item, count in truth.items():
            assert cms.estimate(item) >= count


class TestSpaceSaving:
    def test_tracks_heavy_hitter(self):
        ss = SpaceSaving(k=2)
        stream = [1] * 50 + [2] * 30 + list(range(100, 120))
        for item in stream:
            ss.offer(item)
        top = [item for item, _ in ss.top()]
        assert 1 in top

    def test_capacity_never_exceeded(self):
        ss = SpaceSaving(k=3)
        for item in range(100):
            ss.offer(item)
        assert len(ss) <= 3

    def test_estimate_overestimates_only(self):
        ss = SpaceSaving(k=4)
        stream = [1, 2, 3, 4, 5, 6, 1, 1, 2] * 5
        truth = Counter(stream)
        for item in stream:
            ss.offer(item)
        for item, _ in ss.top():
            assert ss.estimate(item) >= 0
            # Space-saving guarantee: estimate >= true count for tracked items.
            assert ss.estimate(item) >= truth[item] or ss.estimate(item) > 0

    def test_classic_error_bound(self):
        """estimate - true <= N / k for every tracked item."""
        rng = np.random.default_rng(0)
        stream = rng.zipf(1.5, size=500)
        stream = [int(x) % 40 for x in stream]
        truth = Counter(stream)
        k = 10
        ss = SpaceSaving(k=k)
        for item in stream:
            ss.offer(item)
        for item, estimate in ss.top():
            assert estimate - truth[item] <= len(stream) / k

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            SpaceSaving(0)

    def test_offer_all(self):
        ss = SpaceSaving(k=2)
        ss.offer_all("AAAB")
        assert ss.estimate("A") == 3


class TestHeavyKeeper:
    def test_finds_elephants(self):
        hk = HeavyKeeper(k=3, width=256, depth=2, seed=0)
        stream = [1] * 200 + [2] * 150 + [3] * 100 + list(range(1000, 1100))
        for item in stream:
            hk.offer(item)
        top_keys = [key for key, _ in hk.top(3)]
        assert set(top_keys) >= {1, 2}

    def test_summary_capacity(self):
        hk = HeavyKeeper(k=5, seed=0)
        for item in range(500):
            hk.offer(item)
        assert len(hk) <= 5

    def test_estimates_reasonable_for_hot_keys(self):
        hk = HeavyKeeper(k=2, width=512, depth=2, seed=0)
        for _ in range(300):
            hk.offer(42)
        estimate = dict(hk.top()).get(42, 0)
        assert estimate > 200  # decay may shave a little, never inflate hugely

    def test_contains(self):
        hk = HeavyKeeper(k=2, seed=0)
        for _ in range(10):
            hk.offer(5)
        assert hk.contains(5)
        assert not hk.contains(6)

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            HeavyKeeper(k=0)
        with pytest.raises(ParameterError):
            HeavyKeeper(k=1, decay=1.0)

    def test_deterministic_with_seed(self):
        def run():
            hk = HeavyKeeper(k=3, width=64, depth=2, seed=9)
            rng = np.random.default_rng(1)
            for item in rng.integers(0, 20, size=300).tolist():
                hk.offer(item)
            return hk.top()

        assert run() == run()

    def test_nbytes(self):
        assert HeavyKeeper(k=2, width=16, depth=2).nbytes() > 0
