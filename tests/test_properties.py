"""Cross-cutting property tests: every layer against the naive oracle.

Exhaustive at small scale: for random weighted strings, *every*
distinct substring is queried through every (miner, backend,
aggregator, local-utility) combination and must match the brute-force
definition.  These are the invariants the whole reproduction hangs on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.naive import naive_global_utility
from repro.core.usi import UsiIndex
from repro.strings.alphabet import Alphabet
from repro.strings.occurrences import (
    all_distinct_substrings,
    naive_substring_frequencies,
)
from repro.strings.weighted import WeightedString

from tests.conftest import texts, weighted_strings


@st.composite
def positive_weighted_strings(draw, alphabet="ABC", max_size=16):
    """Weighted strings with strictly positive utilities (for products)."""
    text = draw(texts(alphabet, min_size=1, max_size=max_size))
    utilities = draw(
        st.lists(
            st.floats(min_value=0.125, max_value=2.0, allow_nan=False, width=32),
            min_size=len(text),
            max_size=len(text),
        )
    )
    return WeightedString(text, utilities)


class TestEverySubstringEveryConfiguration:
    @given(weighted_strings(alphabet="AB", max_size=14), st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_exact_miner_all_aggregators(self, ws, k):
        text = ws.text()
        indexes = {
            name: UsiIndex.build(ws, k=k, aggregator=name)
            for name in ("sum", "min", "max", "avg")
        }
        for key in all_distinct_substrings(text):
            pattern = "".join(key)
            for name, index in indexes.items():
                assert index.query(pattern) == pytest.approx(
                    naive_global_utility(ws, pattern, name), abs=1e-6
                ), (name, pattern)

    @given(weighted_strings(alphabet="AB", max_size=12), st.integers(1, 6))
    @settings(max_examples=15, deadline=None)
    def test_approximate_miner_exactness_of_answers(self, ws, k):
        """UAT answers are exact even though its *mining* is approximate."""
        s = min(3, ws.length)
        index = UsiIndex.build(ws, k=k, miner="approximate", s=s)
        for key in all_distinct_substrings(ws.text()):
            pattern = "".join(key)
            assert index.query(pattern) == pytest.approx(
                naive_global_utility(ws, pattern), abs=1e-6
            ), pattern

    @given(weighted_strings(alphabet="AB", max_size=12), st.integers(1, 6))
    @settings(max_examples=15, deadline=None)
    def test_fm_backend_all_substrings(self, ws, k):
        index = UsiIndex.build(ws, k=k, locate_backend="fm")
        for key in all_distinct_substrings(ws.text()):
            pattern = "".join(key)
            assert index.query(pattern) == pytest.approx(
                naive_global_utility(ws, pattern), abs=1e-6
            ), pattern

    @given(positive_weighted_strings(), st.integers(1, 6))
    @settings(max_examples=15, deadline=None)
    def test_product_local_all_substrings(self, ws, k):
        index = UsiIndex.build(ws, k=k, local="product")
        for key in all_distinct_substrings(ws.text()):
            pattern = "".join(key)
            assert index.query(pattern) == pytest.approx(
                naive_global_utility(ws, pattern, "sum", "product"),
                rel=1e-6, abs=1e-9,
            ), pattern


class TestStructuralInvariants:
    @given(texts("AB", max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_total_substring_occurrences(self, text):
        """Sum of top-all frequencies == n(n+1)/2 occurrence slots."""
        from repro.core.exact_topk import exact_top_k

        n = len(text)
        mined = exact_top_k(text, n * (n + 1))
        assert sum(m.frequency for m in mined) == n * (n + 1) // 2

    @given(texts("ABC", max_size=25), st.integers(1, 12))
    @settings(max_examples=25, deadline=None)
    def test_top_k_frequencies_dominate(self, text, k):
        """Reported min frequency >= every unreported substring's frequency."""
        from repro.core.exact_topk import exact_top_k

        mined = exact_top_k(text, k)
        counts = naive_substring_frequencies(text)
        if len(mined) < min(k, len(counts)):
            return
        tau = min(m.frequency for m in mined)
        reported = {tuple(text[m.position : m.position + m.length]) for m in mined}
        unreported_max = max(
            (f for key, f in counts.items() if key not in reported), default=0
        )
        assert tau >= unreported_max

    @given(texts("AB", min_size=2, max_size=40), st.integers(1, 8), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_at_merged_frequency_additivity(self, text, k, s):
        """AT's merged frequency of a substring it reports every round
        equals the full frequency (the rounds partition the text)."""
        from repro.core.approximate import ApproximateTopK

        s = min(s, len(text))
        # With capacity covering all candidates, nothing is ever pruned,
        # so sample counts must add up exactly.
        miner = ApproximateTopK(text, k=k, s=s, round_capacity=64.0)
        counts = naive_substring_frequencies(text)
        for mined in miner.mine():
            key = tuple(text[mined.position : mined.position + mined.length])
            assert mined.frequency <= counts[key]

    @given(weighted_strings(alphabet="AB", max_size=20), st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_hash_table_holds_only_topk(self, ws, k):
        """Everything cached has frequency >= tau_K (exact miner)."""
        index = UsiIndex.build(ws, k=k)
        tau = index.report.tau_k
        text = ws.text()
        for key in all_distinct_substrings(text):
            pattern = "".join(key)
            if index.is_cached(pattern):
                assert index.count(pattern) >= tau

    @given(weighted_strings(alphabet="ABC", max_size=20))
    @settings(max_examples=20, deadline=None)
    def test_utility_of_whole_text(self, ws):
        """U(S) is the single-occurrence aggregate of the whole text."""
        index = UsiIndex.build(ws, k=2)
        assert index.query(ws.codes.astype(np.int64)) == pytest.approx(
            float(ws.utilities.sum()), abs=1e-6
        )

    @given(texts("ABC", min_size=2, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_count_consistency_across_backends(self, text):
        """SA, FM and suffix tree agree on every short pattern's count."""
        from repro.succinct.fm_index import FmIndex
        from repro.suffix.suffix_array import SuffixArray
        from repro.suffix_tree.navigation import SuffixTreeNavigator
        from repro.suffix_tree.ukkonen import SuffixTree

        codes = Alphabet.from_text(text).encode(text)
        sa = SuffixArray(codes)
        fm = FmIndex(codes, sample_rate=4)
        nav = SuffixTreeNavigator(SuffixTree.from_codes(codes))
        for key in all_distinct_substrings(text, max_length=3):
            pattern = np.asarray(
                Alphabet.from_text(text).encode("".join(key)), dtype=np.int64
            )
            want = sa.count(pattern)
            assert fm.count(pattern) == want
            assert nav.count(pattern) == want
